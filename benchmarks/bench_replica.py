"""WAL-shipped read replica: parity, staleness, maintenance, failover.

Four promises from the replication PR, each held by a gate:

1. **Quiesced parity** — after the replica catches up, all five query
   classes (timeslice, window, moving-window, batched and kNN) answer
   bit-identically to the primary over the same committed prefix.

2. **Bounded staleness** — under paced polling (one shipping poll per
   ``POLL_EVERY`` operations) the worst lag any poll observes stays
   within ``STALENESS_BUDGET`` index-clock seconds, the bound DESIGN.md
   §14 derives from the poll cadence and the commit spacing.

3. **Online maintenance** — the primary's log is truncated at least
   ``MIN_TRUNCATIONS`` times *while shipping continues* (spilling
   unshipped batches to archive segments), and the total replication
   footprint (live WAL + archive + replica WAL) stays under
   ``FOOTPRINT_BOUND`` bytes at its high-water mark.

4. **Zero-loss promotion** — killing the primary and promoting the
   replica loses no committed batch: the promoted tree's commit
   sequence equals the dead primary's durable prefix, and its unexpired
   leaf entries are bit-identical to what a plain reopen of that prefix
   reconstructs.

Writes ``BENCH_replica.json`` for CI artifacts.  Scale follows
``REPRO_SCALE`` (default: tiny).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.core.clock import SimulationClock
from repro.core.config import TreeConfig
from repro.core.tree import MovingObjectTree
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.obs import MetricsRegistry
from repro.replication import (
    OnlineMaintainer,
    Replica,
    ReplicaLink,
    ShippingChannel,
    WalShipper,
)
from repro.storage.faults import FaultInjector
from repro.workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp
from repro.workloads.network import NetworkParams, generate_network_workload

SCALE_NAME = os.environ.get("REPRO_SCALE", "tiny")
INSERTIONS = {"tiny": 400, "small": 1200}.get(SCALE_NAME, 2400)
POLL_EVERY = 8
WAL_SOFT_LIMIT = 16 * 1024
#: Index-clock seconds of observed lag a poll may report (gate 2).
STALENESS_BUDGET = 30.0
MIN_TRUNCATIONS = 3
FOOTPRINT_BOUND = 1 << 20
PROBES = 24

_REPORT = Path(__file__).resolve().parent.parent / "BENCH_replica.json"


def _probe_queries(space: float, now: float):
    """A deterministic panel covering the three range-query classes."""
    queries = []
    for i in range(PROBES):
        lo = (space * (i % 5) / 6.0, space * (i % 7) / 8.0)
        hi = (lo[0] + space / 4.0, lo[1] + space / 4.0)
        rect = Rect(lo, hi)
        kind = i % 3
        if kind == 0:
            queries.append(TimesliceQuery(rect, now + i))
        elif kind == 1:
            queries.append(WindowQuery(rect, now, now + 2.0 * i + 1.0))
        else:
            other = Rect(
                (lo[0] + space / 10.0, lo[1] + space / 10.0),
                (hi[0] + space / 10.0, hi[1] + space / 10.0),
            )
            queries.append(MovingQuery(rect, other, now, now + i + 1.0))
    return queries


def _unexpired_entries(tree, now: float):
    return sorted(
        (oid, tuple(p.pos), tuple(p.vel), p.t_ref, p.t_exp)
        for p, oid in tree.snapshot().leaf_entries()
        if not p.t_exp < now
    )


def test_replica_parity_staleness_maintenance_failover():
    params = NetworkParams(
        target_population=max(INSERTIONS // 4, 16),
        insertions=INSERTIONS,
        seed=0,
    )
    workload = generate_network_workload(params)
    config = TreeConfig(page_size=1024, buffer_pages=32)
    registry = MetricsRegistry()
    base = tempfile.mkdtemp(prefix="bench-replica-")
    out_lines = []
    try:
        primary_dir = os.path.join(base, "primary")
        tree = MovingObjectTree.create_durable(
            primary_dir, config, SimulationClock()
        )
        shipper = WalShipper(primary_dir, registry=registry)
        follower = Replica.bootstrap(
            tree.disk, shipper, os.path.join(base, "replica"),
            registry=registry,
        )
        channel = ShippingChannel(
            shipper,
            injector=FaultInjector(
                crash_at_write=9, mode="torn", seed=77,
                transient_writes=(3,),
            ),
            registry=registry,
        )
        maintainer = OnlineMaintainer(
            tree.disk, wal_soft_limit=WAL_SOFT_LIMIT, registry=registry
        )
        link = ReplicaLink(
            channel, follower, maintainer,
            promote_config=config, registry=registry,
            staleness_budget=STALENESS_BUDGET, poll_every=POLL_EVERY,
        )

        footprints = []
        cycles_seen = 0
        start = time.perf_counter()
        for op in workload.ops:
            tree.clock.advance_to(op.time)
            if isinstance(op, InsertOp):
                tree.insert(op.oid, op.point)
            elif isinstance(op, UpdateOp):
                tree.update(op.oid, op.old_point, op.new_point)
            elif isinstance(op, DeleteOp):
                tree.delete(op.oid, op.point)
            link.tick()
            if maintainer.cycles > cycles_seen:
                cycles_seen = maintainer.cycles
                footprints.append(link.wal_footprint())
        link.tick(force=True)
        drive_seconds = time.perf_counter() - start
        writes = sum(
            1 for op in workload.ops if not isinstance(op, QueryOp)
        )

        # Gate 1: quiesced parity across all five query classes.
        now = tree.clock.time
        queries = _probe_queries(params.space, now)
        want = [sorted(tree.query(q)) for q in queries]
        got = [follower.query(q) for q in queries]
        assert got == want, "replica range answers diverge from primary"
        assert follower.query_batch(queries) == want, (
            "replica batched answers diverge from primary"
        )
        centre = (params.space / 2.0, params.space / 2.0)
        knn_want = tree.query_knn(centre, now, 10)
        assert follower.knn(centre, now, 10) == knn_want, (
            "replica kNN answer diverges from primary"
        )
        out_lines.append(
            f"[repro] parity: {len(queries)} probes x "
            f"(query, batch) + kNN identical over "
            f"{tree.disk.op_seq} committed batches"
        )

        # Gate 2: bounded observed staleness under paced polling.
        assert link.polls > 0, "no shipping polls happened"
        assert link.max_staleness <= STALENESS_BUDGET, (
            f"poll observed {link.max_staleness:.2f}s lag, budget "
            f"{STALENESS_BUDGET:.0f}s"
        )
        out_lines.append(
            f"[repro] staleness: max {link.max_staleness:.2f}s over "
            f"{link.polls} polls (budget {STALENESS_BUDGET:.0f}s, "
            f"poll every {POLL_EVERY} ops)"
        )

        # Gate 3: online truncation kept the footprint bounded.
        assert maintainer.cycles >= MIN_TRUNCATIONS, (
            f"only {maintainer.cycles} truncation cycles "
            f"(need >= {MIN_TRUNCATIONS})"
        )
        assert link.footprint_high_water <= FOOTPRINT_BOUND, (
            f"footprint high water {link.footprint_high_water} B over "
            f"bound {FOOTPRINT_BOUND} B"
        )
        out_lines.append(
            f"[repro] maintenance: {maintainer.cycles} truncation cycles, "
            f"{registry.value('replication.spills'):.0f} spills, "
            f"footprint high water {link.footprint_high_water} B "
            f"(bound {FOOTPRINT_BOUND} B)"
        )

        # Gate 4: crash the primary, promote, audit zero loss.
        committed = tree.disk.op_seq
        ground_dir = os.path.join(base, "ground")
        shutil.copytree(primary_dir, ground_dir)
        tree.disk.abandon()
        promoted, _injector = link.failover()
        assert promoted.disk.op_seq == committed, (
            f"promotion lost commits: {promoted.disk.op_seq} != "
            f"{committed}"
        )
        ground = MovingObjectTree.open_from(
            ground_dir, config, SimulationClock()
        )
        now = promoted.clock.time
        assert _unexpired_entries(ground, now) == _unexpired_entries(
            promoted, now
        ), "promoted state differs from the committed prefix"
        promoted_answers = [sorted(promoted.query(q)) for q in queries]
        assert promoted_answers == want, (
            "promoted tree answers diverge from the dead primary's"
        )
        out_lines.append(
            f"[repro] failover: promoted at op_seq {committed}, zero "
            f"committed batches lost, entries bit-identical to a plain "
            f"reopen"
        )
        ground.close()
        promoted.close()

        payload = {
            "scale": SCALE_NAME,
            "ops": len(workload.ops),
            "writes": writes,
            "drive_seconds": round(drive_seconds, 3),
            "writes_per_second": round(writes / max(drive_seconds, 1e-9)),
            "parity_probes": len(queries),
            "poll_every": POLL_EVERY,
            "polls": link.polls,
            "max_staleness_seconds": round(link.max_staleness, 4),
            "staleness_budget_seconds": STALENESS_BUDGET,
            "shipped_batches": registry.value("replication.shipped_batches"),
            "applied_batches": registry.value("replication.applied_batches"),
            "channel_faults": registry.value("replication.channel_faults"),
            "spills": registry.value("replication.spills"),
            "truncation_cycles": maintainer.cycles,
            "truncation_floor": MIN_TRUNCATIONS,
            "footprint_per_cycle_bytes": footprints[:16],
            "footprint_high_water_bytes": link.footprint_high_water,
            "footprint_bound_bytes": FOOTPRINT_BOUND,
            "promoted_op_seq": committed,
            "promotion_lost_batches": 0,
            "oracle": "primary answers on an identical probe panel; "
                      "ground truth for promotion is a plain reopen of "
                      "the dead primary's directory",
        }
        _REPORT.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        out = __import__("sys").__stdout__
        print("", file=out)
        for line in out_lines:
            print(line, file=out)
        print(f"[repro] wrote {_REPORT.name}", file=out)
    finally:
        shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_replica_parity_staleness_maintenance_failover()
