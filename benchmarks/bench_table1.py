"""Table 1: the workload parameters and their values.

The paper's only table.  This benchmark verifies the parameter grid the
other benchmarks sweep, and times a representative workload generation
(the generator itself is part of the reproduced system).
"""

from repro.workloads import (
    FixedPeriod,
    NetworkParams,
    PAPER_PARAMETERS,
    generate_network_workload,
)


def _print_table() -> None:
    print("\nTable 1: Workload Parameters")
    print(f"{'Parameter':<8} {'Description':<52} {'Values (standard in *)'}")
    for spec in PAPER_PARAMETERS:
        values = ", ".join(
            f"*{v:g}*" if v == spec.standard else f"{v:g}"
            for v in spec.values
        )
        print(f"{spec.name:<8} {spec.description:<52} {values}")


def test_table1(benchmark, scale, capsys):
    def generate():
        params = NetworkParams(
            target_population=scale.target_population,
            insertions=scale.insertions,
            update_interval=60.0,
            seed=0,
        )
        return generate_network_workload(params, FixedPeriod(120.0))

    workload = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert workload.insertion_count == scale.insertions
    assert workload.query_count >= scale.insertions // 100 - 1
    with capsys.disabled():
        _print_table()
        print(
            f"generated {len(workload)} operations "
            f"({workload.insertion_count} insertions, "
            f"{workload.query_count} queries) over "
            f"{workload.ops[-1].time:.0f} simulated minutes"
        )
