"""Figure 11: Search I/O on uniform data for varying ExpT — five TPBR types.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure11

from _util import run_figure


def test_figure11(benchmark, scale, capsys):
    run_figure(benchmark, figure11, scale, capsys)
