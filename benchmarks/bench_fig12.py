"""Figure 12: Search I/O for varying expiration distance ExpD — five TPBR types.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure12

from _util import run_figure


def test_figure12(benchmark, scale, capsys):
    run_figure(benchmark, figure12, scale, capsys)
