"""Helpers shared by the figure benchmarks."""

from __future__ import annotations

import contextlib
from typing import List, Tuple

from repro.experiments.figures import FigureResult
from repro.experiments.plotting import ascii_chart
from repro.experiments.report import print_figure, shape_checks
from repro.geometry.kinematics import MovingPoint
from repro.workloads.base import InsertOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload


def initial_population(
    count: int, seed: int = 0, expt: float = 120.0
) -> List[Tuple[int, MovingPoint]]:
    """Each object's first report from a uniform workload.

    The same points an experiment's ramp would insert, so insert-built
    and bulk-loaded trees are compared on identical data.  Unlike
    :func:`repro.experiments.runner.split_initial_population` this scans
    the whole stream — it feeds *build* benchmarks, not a replay.
    """
    workload = generate_uniform_workload(
        UniformParams(
            target_population=count, insertions=2 * count, seed=seed
        ),
        FixedPeriod(expt),
    )
    initial: List[Tuple[int, MovingPoint]] = []
    seen = set()
    for op in workload.ops:
        if isinstance(op, InsertOp) and op.oid not in seen:
            seen.add(op.oid)
            initial.append((op.oid, op.point))
            if len(initial) == count:
                break
    return initial


def run_figure(benchmark, figure_fn, scale, capsys=None) -> FigureResult:
    """Execute one figure sweep once under pytest-benchmark and report it.

    The report is the benchmark's product, so when ``capsys`` is passed
    its capture is disabled around the printing — the tables reach the
    terminal (and tee'd logs) even without ``pytest -s``.
    """
    result = benchmark.pedantic(
        figure_fn, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    guard = capsys.disabled() if capsys is not None else contextlib.nullcontext()
    with guard:
        print_figure(result)
        print(ascii_chart(result))
    assert result.xs, f"{result.figure_id}: empty sweep"
    for label, values in result.series.items():
        assert len(values) == len(result.xs), (
            f"{result.figure_id}: series {label!r} incomplete"
        )
        assert all(v == v for v in values), (
            f"{result.figure_id}: series {label!r} contains NaN"
        )
    return result


def passed_fraction(result: FigureResult) -> float:
    """Fraction of the paper's shape checks that hold for this run."""
    checks = shape_checks(result)
    if not checks:
        return 1.0
    return sum(c.passed for c in checks) / len(checks)
