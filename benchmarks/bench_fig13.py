"""Figure 13: Search I/O for varying ExpD — R^exp vs TPR vs scheduled deletions.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure13

from _util import run_figure


def test_figure13(benchmark, scale, capsys):
    run_figure(benchmark, figure13, scale, capsys)
