"""Cross-query batched traversal vs sequential queries, with identity.

Builds one population (the uniform workload's first reports), answers a
1000-query mixed batch (timeslice / window / moving) both ways on every
index shape, and holds the run to two promises:

1. **Identity** — ``query_batch`` returns *bit-identical* answers (same
   oids, same order) to K sequential ``query`` calls on the single
   tree, the partitioned forest and the process-parallel sharded index.
2. **Throughput** — the batched traversal answers the 1000-query batch
   at least 5x faster than the sequential loop on the single tree at
   the CI scale (tiny); at larger scales the tree gates at 3x and the
   best shape must still clear 5x (see ``MIN_TREE_SPEEDUP``).

The run also profiles a full durable cycle (create → insert →
checkpoint → close → recover → query) twice: once with the zero-copy
``numpy.frombuffer`` page decode and once with the per-entry ``struct``
loop it replaced, recording both cProfile top-10s.  The gate: no
``serial.py`` frame may appear in the zero-copy cycle's top-10 — page
encode/decode must stay off the hot path.

Writes ``BENCH_batch.json`` for CI artifacts.  Scale follows
``REPRO_SCALE`` (default: tiny).
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.core.clock import SimulationClock
from repro.core.forest import PartitionedMovingObjectForest
from repro.core.presets import forest_config, rexp_config
from repro.core.tree import MovingObjectTree
from repro.experiments.runner import split_initial_population
from repro.experiments.scale import SCALES
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.shard import ShardConfig, ShardedForest
from repro.storage import serial
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

SCALE = SCALES[os.environ.get("REPRO_SCALE", "tiny")]
QUERY_COUNT = 1000
#: The 5x gate applies to the single tree at the CI scale (tiny).  At
#: larger scales per-node entry counts grow, so the sequential numpy
#: kernels already amortize more of the per-node cost and the tree's
#: batch advantage shrinks toward the floor below — while the forest
#: and sharded shapes (more Python-level routing per sequential query)
#: keep gaining well past 5x.  The best shape must clear 5x everywhere.
MIN_TREE_SPEEDUP = 5.0 if SCALE.name == "tiny" else 3.0
MIN_BEST_SPEEDUP = 5.0
SPACE = 1000.0
PROFILE_QUERIES = 600

_REPORT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _population():
    workload = generate_uniform_workload(
        UniformParams(
            target_population=SCALE.target_population,
            insertions=SCALE.insertions,
            update_interval=60.0,
            # No queries in the stream (one query per this many
            # insertions): the whole report prefix becomes the
            # bulk-loadable population the batch is measured on.
            queries_per_insertions=SCALE.insertions + 1,
            seed=0,
        ),
        FixedPeriod(120.0),
    )
    initial, _ = split_initial_population(workload)
    return initial


def _queries(t_end, count=QUERY_COUNT, seed=1):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        x, y = rng.uniform(0.0, SPACE - 100.0), rng.uniform(0.0, SPACE - 100.0)
        rect = Rect((x, y), (x + 100.0, y + 100.0))
        kind = rng.randrange(3)
        if kind == 0:
            queries.append(TimesliceQuery(rect, t_end + rng.uniform(0.0, 30.0)))
            continue
        t1 = t_end + rng.uniform(0.0, 20.0)
        if kind == 1:
            queries.append(WindowQuery(rect, t1, t1 + rng.uniform(0.0, 10.0)))
            continue
        x2 = rng.uniform(0.0, SPACE - 100.0)
        y2 = rng.uniform(0.0, SPACE - 100.0)
        rect2 = Rect((x2, y2), (x2 + 100.0, y2 + 100.0))
        queries.append(MovingQuery(rect, rect2, t1, t1 + rng.uniform(0.0, 10.0)))
    return queries


def _sizing():
    return dict(page_size=SCALE.page_size, buffer_pages=SCALE.buffer_pages)


def _timed_pair(index, queries):
    """(sequential answers, batched answers, t_seq, t_batch)."""
    start = time.perf_counter()
    sequential = [index.query(query) for query in queries]
    t_seq = time.perf_counter() - start
    start = time.perf_counter()
    batched = index.query_batch(queries)
    t_batch = time.perf_counter() - start
    return sequential, batched, t_seq, t_batch


def _assert_identical(label, sequential, batched):
    for position, (want, got) in enumerate(zip(sequential, batched)):
        assert got == want, (
            f"{label}: query {position} returned {got}, sequential said "
            f"{want}"
        )


def _profile_durable_cycle(initial, queries, use_numpy_codec):
    """cProfile a create→checkpoint→close→recover→query durable cycle."""
    directory = tempfile.mkdtemp(prefix="bench-batch-prof-")
    config = rexp_config(**_sizing(), default_ui=60.0)
    saved = serial.np
    if not use_numpy_codec:
        serial.np = None  # the pre-zero-copy per-entry struct loop
    profiler = cProfile.Profile()
    try:
        clock = SimulationClock()
        tree = MovingObjectTree.create_durable(directory, config, clock)
        for oid, point in initial:
            clock.advance_to(point.t_ref)
            tree.insert(oid, point)
        tree.checkpoint()
        tree.close()
        # Profile the codec-heavy half: recovery decodes every live
        # page, and the first queries fault them through the buffer.
        profiler.enable()
        reopened = MovingObjectTree.open_from(
            directory, config, SimulationClock()
        )
        for query in queries[:PROFILE_QUERIES]:
            reopened.query(query)
        reopened.close()
        profiler.disable()
    finally:
        serial.np = saved
        shutil.rmtree(directory, ignore_errors=True)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func, (_, calls, _, cumulative, _) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, line, name = func
        if "~" in filename or "cProfile" in filename:
            continue  # profiler bookkeeping frames
        rows.append({
            "function": f"{os.path.basename(filename)}:{line}({name})",
            "file": os.path.basename(filename),
            "calls": calls,
            "cumulative_seconds": round(cumulative, 4),
        })
        if len(rows) >= 10:
            break
    return rows


def test_batched_queries_beat_sequential_with_identical_answers():
    initial = _population()
    assert initial, "workload produced no initial population"
    t_end = max(point.t_ref for _, point in initial)
    queries = _queries(t_end)
    runs = {}
    out_lines = [
        f"[repro] batched traversal: {len(initial)} objects, "
        f"{len(queries)} mixed queries (scale {SCALE.name})",
        f"[repro] {'index':<10} {'seq s':>8} {'batch s':>8} {'speedup':>8}",
    ]

    # Single tree: the 5x gate applies here.
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(**_sizing(), default_ui=60.0), clock)
    clock.advance_to(initial[0][1].t_ref)
    tree.bulk_load([(point, oid) for oid, point in initial])
    clock.advance_to(t_end)
    sequential, batched, t_seq, t_batch = _timed_pair(tree, queries)
    _assert_identical("tree", sequential, batched)
    tree_speedup = t_seq / max(t_batch, 1e-9)
    runs["tree"] = {
        "sequential_seconds": round(t_seq, 4),
        "batched_seconds": round(t_batch, 4),
        "speedup": round(tree_speedup, 2),
    }
    out_lines.append(f"[repro] {'tree':<10} {t_seq:>8.3f} {t_batch:>8.3f} "
                     f"{tree_speedup:>7.1f}x")

    # Partitioned forest: identity (and an honest number).
    clock = SimulationClock()
    forest = PartitionedMovingObjectForest(
        forest_config(partitions=4, **_sizing(), default_ui=60.0), clock
    )
    clock.advance_to(initial[0][1].t_ref)
    forest.insert_batch(initial)
    clock.advance_to(t_end)
    sequential, batched, t_seq, t_batch = _timed_pair(forest, queries)
    _assert_identical("forest", sequential, batched)
    runs["forest"] = {
        "sequential_seconds": round(t_seq, 4),
        "batched_seconds": round(t_batch, 4),
        "speedup": round(t_seq / max(t_batch, 1e-9), 2),
    }
    out_lines.append(f"[repro] {'forest':<10} {t_seq:>8.3f} {t_batch:>8.3f} "
                     f"{runs['forest']['speedup']:>7.1f}x")

    # Sharded index: one wire batch of K queries per reachable shard.
    base = tempfile.mkdtemp(prefix="bench-batch-shards-")
    try:
        sharded = ShardedForest.create(
            os.path.join(base, "s"),
            ShardConfig(
                workers=2,
                tree=rexp_config(**_sizing(), default_ui=60.0),
                space=SPACE,
                batch_ops=256,
            ),
        )
        try:
            sharded.clock.advance_to(initial[0][1].t_ref)
            for oid, point in initial:
                sharded.insert(oid, point)
            sharded.clock.advance_to(t_end)
            sequential, batched, t_seq, t_batch = _timed_pair(
                sharded, queries
            )
            _assert_identical("sharded", sequential, batched)
        finally:
            sharded.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)
    runs["sharded"] = {
        "sequential_seconds": round(t_seq, 4),
        "batched_seconds": round(t_batch, 4),
        "speedup": round(t_seq / max(t_batch, 1e-9), 2),
    }
    out_lines.append(f"[repro] {'sharded':<10} {t_seq:>8.3f} {t_batch:>8.3f} "
                     f"{runs['sharded']['speedup']:>7.1f}x")

    # Profile evidence: page codec off the durable cycle's top-10.
    struct_top = _profile_durable_cycle(initial, queries,
                                        use_numpy_codec=False)
    zero_copy_top = _profile_durable_cycle(initial, queries,
                                           use_numpy_codec=True)
    offenders = [row["function"] for row in zero_copy_top
                 if row["file"] == "serial.py"]

    payload = {
        "scale": SCALE.name,
        "objects": len(initial),
        "queries": len(queries),
        "query_mix": "timeslice / window / moving, uniform thirds",
        "oracle": "K sequential query() calls; every batched answer "
                  "asserted bit-identical (same oids, same order)",
        "gates": {
            "tree_min_speedup": MIN_TREE_SPEEDUP,
            "best_shape_min_speedup": MIN_BEST_SPEEDUP,
            "note": "the single-tree 5x gate applies at the CI scale "
                    "(tiny); larger per-node entry counts let the "
                    "sequential kernels amortize more, so bigger scales "
                    "gate the tree at 3x and require the best shape "
                    "(forest or sharded) to clear 5x",
        },
        "runs": runs,
        "profile_durable_cycle": {
            "workload": f"open_from (WAL recovery) -> {PROFILE_QUERIES} "
                        "queries over a checkpointed store; the "
                        "codec-heavy half of the cycle (the build half "
                        "is identical either way)",
            "before_struct_loop_top10": struct_top,
            "after_zero_copy_top10": zero_copy_top,
        },
    }
    _REPORT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    out = __import__("sys").__stdout__
    print("", file=out)
    for line in out_lines:
        print(line, file=out)
    print(f"[repro] wrote {_REPORT.name}; durable-cycle top-10 serial.py "
          f"frames: {offenders or 'none'}", file=out)

    assert not offenders, (
        "page encode/decode still on the durable cycle's profile top-10: "
        f"{offenders}"
    )
    assert tree_speedup >= MIN_TREE_SPEEDUP, (
        f"batched traversal only {tree_speedup:.2f}x over sequential on "
        f"the {QUERY_COUNT}-query batch (need >= {MIN_TREE_SPEEDUP}x at "
        f"scale {SCALE.name})"
    )
    best = max(run["speedup"] for run in runs.values())
    assert best >= MIN_BEST_SPEEDUP, (
        f"no index shape cleared {MIN_BEST_SPEEDUP}x on the "
        f"{QUERY_COUNT}-query batch (best {best:.2f}x)"
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_batched_queries_beat_sequential_with_identical_answers()
