"""Figure 15: Index size in pages for varying NewOb.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure15

from _util import run_figure


def test_figure15(benchmark, scale, capsys):
    run_figure(benchmark, figure15, scale, capsys)
