"""Bulk-loading vs repeated insertion, and batched vs scalar queries.

Measures real wall time of the two fast paths this reproduction adds on
top of the paper:

* STR bulk loading (``MovingObjectTree.bulk_load``) against building the
  same tree by repeated insertion;
* batched (numpy) query evaluation against the scalar fallback, on the
  same tree and query set, asserting identical answers.

The population size follows ``REPRO_BULK_COUNT`` (default 50000).  The
insertion baseline is run once — it is the slow side being measured.
"""

import os
import random
import sys
import time

import pytest

from repro.core import MovingObjectTree, SimulationClock, rexp_config
from repro.geometry import Rect, TimesliceQuery
from repro.geometry import kernels

from _util import initial_population

COUNT = int(os.environ.get("REPRO_BULK_COUNT", "50000"))


@pytest.fixture(scope="module")
def population():
    return initial_population(COUNT, seed=0)


def _empty_tree():
    clock = SimulationClock()
    return MovingObjectTree(rexp_config(), clock), clock


def _report(label, seconds, tree):
    print(f"\n[repro] {label}: {seconds:.2f}s wall, "
          f"{tree.stats.writes} page writes, {tree.page_count} pages, "
          f"height {tree.height}", file=sys.__stdout__)


def test_build_by_insertion(benchmark, population):
    def build():
        tree, clock = _empty_tree()
        for oid, point in population:
            clock.advance_to(point.t_ref)
            tree.insert(oid, point)
        return tree

    tree = benchmark.pedantic(build, rounds=1, iterations=1, warmup_rounds=0)
    _report(f"insert-built {len(population)} objects",
            benchmark.stats.stats.mean, tree)


def test_build_by_bulk_load(benchmark, population):
    def build():
        tree, clock = _empty_tree()
        clock.advance_to(population[0][1].t_ref)
        tree.bulk_load([(point, oid) for oid, point in population])
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1, warmup_rounds=0)
    tree.check_invariants()
    _report(f"bulk-loaded {len(population)} objects",
            benchmark.stats.stats.mean, tree)


def _query_set(population, n=200, seed=1):
    t_end = max(point.t_ref for _, point in population)
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        x, y = rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)
        queries.append(TimesliceQuery(
            Rect((x, y), (x + 100.0, y + 100.0)),
            t_end + rng.uniform(0.0, 30.0),
        ))
    return t_end, queries


@pytest.fixture(scope="module")
def query_tree(population):
    tree, clock = _empty_tree()
    clock.advance_to(population[0][1].t_ref)
    tree.bulk_load([(point, oid) for oid, point in population])
    t_end, queries = _query_set(population)
    clock.advance_to(t_end)
    return tree, queries


def _run_queries(tree, queries):
    return [sorted(tree.query(q)) for q in queries]


def test_query_scalar(benchmark, query_tree):
    tree, queries = query_tree
    saved = kernels.np
    kernels.np = None
    try:
        answers = benchmark.pedantic(
            _run_queries, args=(tree, queries),
            rounds=3, iterations=1, warmup_rounds=0,
        )
    finally:
        kernels.np = saved
    query_tree[0].__dict__.setdefault("_scalar_answers", answers)
    print(f"\n[repro] scalar queries: "
          f"{benchmark.stats.stats.mean:.3f}s for {len(queries)} queries",
          file=sys.__stdout__)


def test_query_batched(benchmark, query_tree):
    tree, queries = query_tree
    if kernels.np is None:
        pytest.skip("numpy unavailable; no batched path to measure")
    answers = benchmark.pedantic(
        _run_queries, args=(tree, queries),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    scalar = tree.__dict__.get("_scalar_answers")
    if scalar is not None:
        assert answers == scalar, "batched answers differ from scalar"
    print(f"\n[repro] batched queries: "
          f"{benchmark.stats.stats.mean:.3f}s for {len(queries)} queries",
          file=sys.__stdout__)
