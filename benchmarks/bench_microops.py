"""Micro-benchmarks of the core operations.

Unlike the figure sweeps (measured in simulated I/O), these measure real
wall time of the hot paths: TPBR construction, tree insertion, query
evaluation and B+-tree maintenance.
"""

import random

from repro.btree import BPlusTree
from repro.core import MovingObjectTree, SimulationClock, rexp_config
from repro.geometry import (
    BoundingKind,
    MovingPoint,
    Rect,
    TimesliceQuery,
    compute_tpbr,
)


def _random_points(n, rng, t_exp_span=120.0):
    points = []
    for _ in range(n):
        pos = (rng.uniform(0, 1000), rng.uniform(0, 1000))
        vel = (rng.uniform(-3, 3), rng.uniform(-3, 3))
        points.append(MovingPoint(pos, vel, 0.0, rng.uniform(1.0, t_exp_span)))
    return points


def test_tpbr_near_optimal(benchmark):
    rng = random.Random(0)
    points = _random_points(100, rng)
    benchmark(
        compute_tpbr, points, 0.0, BoundingKind.NEAR_OPTIMAL,
        horizon=60.0, rng=rng,
    )


def test_tpbr_optimal(benchmark):
    rng = random.Random(0)
    points = _random_points(100, rng)
    benchmark(
        compute_tpbr, points, 0.0, BoundingKind.OPTIMAL, horizon=60.0
    )


def test_tpbr_conservative(benchmark):
    rng = random.Random(0)
    points = _random_points(100, rng)
    benchmark(compute_tpbr, points, 0.0, BoundingKind.CONSERVATIVE)


def _loaded_tree(n=1500, seed=0):
    rng = random.Random(seed)
    clock = SimulationClock()
    tree = MovingObjectTree(
        rexp_config(page_size=1024, buffer_pages=16, default_ui=60.0), clock
    )
    t = 0.0
    for oid, point in enumerate(_random_points(n, rng)):
        t += 60.0 / n
        clock.advance_to(t)
        tree.insert(
            oid,
            MovingPoint(point.pos, point.vel, t, t + rng.uniform(30.0, 240.0)),
        )
    return tree, clock, rng


def test_tree_insert(benchmark):
    tree, clock, rng = _loaded_tree()
    state = {"oid": 10_000_000, "t": clock.time}

    def insert_one():
        state["oid"] += 1
        state["t"] += 0.001
        clock.advance_to(state["t"])
        pos = (rng.uniform(0, 1000), rng.uniform(0, 1000))
        vel = (rng.uniform(-3, 3), rng.uniform(-3, 3))
        tree.insert(
            state["oid"],
            MovingPoint(pos, vel, state["t"], state["t"] + 120.0),
        )

    benchmark(insert_one)


def test_tree_timeslice_query(benchmark):
    tree, clock, rng = _loaded_tree()

    def query_one():
        x, y = rng.uniform(0, 950), rng.uniform(0, 950)
        q = TimesliceQuery(
            Rect((x, y), (x + 50, y + 50)), clock.time + rng.uniform(0, 30)
        )
        return tree.query(q)

    benchmark(query_one)


def test_btree_insert_delete(benchmark):
    rng = random.Random(1)
    tree = BPlusTree(page_size=1024, buffer_pages=16)
    for i in range(2000):
        tree.insert((rng.uniform(0, 1e6), i), i)
    state = {"i": 10_000_000}

    def churn():
        state["i"] += 1
        key = (rng.uniform(0, 1e6), state["i"])
        tree.insert(key, state["i"])
        tree.delete(key)

    benchmark(churn)
