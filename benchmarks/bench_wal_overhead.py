"""Durability must not distort the paper's I/O accounting.

The durable page store promises that the simulated cost model is
unchanged: a workload replayed on a :class:`FilePageStore` charges page
reads and writes *identically* to a run on the in-memory
``DiskManager``, and every write-ahead-log record is charged separately
as auxiliary I/O (like the deletion queue's B-tree).  This benchmark
holds the store to that promise on a tiny-scale uniform workload:

1. **Exactness** — the durable run must report search and update I/O
   identical *to the last digit* to the simulated run, along with the
   same page count and structural census.
2. **WAL accounting** — log traffic must be visible, non-zero, and
   confined to ``auxiliary_io``.
3. **Wall-clock overhead** — reported (real files cost real time and
   are not meant to be free), with the slowdown factor written to
   ``BENCH_wal.json`` for CI artifacts.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core.presets import rexp_config
from repro.experiments.adapters import TreeAdapter
from repro.experiments.runner import run_workload
from repro.experiments.scale import SCALES
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

SCALE = SCALES["tiny"]

_REPORT = Path(__file__).resolve().parent.parent / "BENCH_wal.json"


def _workload():
    return generate_uniform_workload(
        UniformParams(
            target_population=SCALE.target_population,
            insertions=SCALE.insertions,
            update_interval=60.0,
            seed=0,
        ),
        FixedPeriod(120.0),
    )


def _adapter():
    return TreeAdapter(
        "Rexp-tree",
        rexp_config(
            page_size=SCALE.page_size, buffer_pages=SCALE.buffer_pages
        ),
    )


def _run(workload, durability=None):
    adapter = _adapter()
    t0 = time.perf_counter()
    result = run_workload(adapter, workload, durability=durability)
    return result, time.perf_counter() - t0


def test_wal_overhead_and_exact_accounting():
    workload = _workload()
    ops = len(workload.ops)

    simulated, sim_wall = _run(workload)
    directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        durable, dur_wall = _run(workload, durability=directory)
        store_bytes = sum(
            p.stat().st_size for p in Path(directory).rglob("*")
            if p.is_file()
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    # 1. Exactness: the durable store mirrors the simulated cost model.
    assert durable.avg_search_io == simulated.avg_search_io
    assert durable.avg_update_io == simulated.avg_update_io
    assert durable.search_ops == simulated.search_ops
    assert durable.update_ops == simulated.update_ops
    assert durable.page_count == simulated.page_count
    assert durable.leaf_entries == simulated.leaf_entries
    assert durable.failed_deletes == simulated.failed_deletes

    # 2. WAL accounting: visible, non-zero, and auxiliary only.
    assert simulated.auxiliary_io == 0
    assert durable.auxiliary_io > 0
    assert durable.avg_update_io_with_aux > durable.avg_update_io

    # 3. Wall-clock overhead: report, don't assert — fsync-free file
    #    I/O varies by machine; the artifact records the factor.
    slowdown = dur_wall / sim_wall if sim_wall else float("inf")
    payload = {
        "scale": SCALE.name,
        "operations": ops,
        "simulated_wall_s": round(sim_wall, 4),
        "durable_wall_s": round(dur_wall, 4),
        "durable_slowdown": round(slowdown, 3),
        "avg_search_io": durable.avg_search_io,
        "avg_update_io": durable.avg_update_io,
        "avg_update_io_with_aux": durable.avg_update_io_with_aux,
        "auxiliary_io": durable.auxiliary_io,
        "wal_writes_per_update": round(
            durable.auxiliary_io / max(durable.update_ops, 1), 3
        ),
        "store_bytes": store_bytes,
    }
    _REPORT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[repro] wal overhead: durable {slowdown:.2f}x over {ops} ops, "
          f"aux={durable.auxiliary_io} log writes "
          f"({payload['wal_writes_per_update']}/update), "
          f"store {store_bytes:,} B; wrote {_REPORT.name}",
          file=sys.__stdout__)
