"""Figure 14: Search I/O for varying NewOb — four index architectures.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure14

from _util import run_figure


def test_figure14(benchmark, scale, capsys):
    run_figure(benchmark, figure14, scale, capsys)
