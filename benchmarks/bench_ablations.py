"""Ablations beyond the paper's figures.

These probe design choices the paper argues in prose:

* Section 4.2.2 — dropping the overlap-enlargement heuristic from
  ChooseSubtree does not hurt query performance;
* Section 5.1 — sensitivity to the buffer-pool size;
* Section 5.4 — lazy purging leaves only a very small fraction of
  expired entries in the index.
"""

from repro.experiments.figures import (
    ablation_buffer_size,
    ablation_lazy_purge,
    ablation_overlap_heuristic,
)

from _util import run_figure


def test_overlap_heuristic(benchmark, scale, capsys):
    result = run_figure(benchmark, ablation_overlap_heuristic, scale, capsys)
    with_overlap = sum(result.series["with overlap"])
    without = sum(result.series["without overlap"])
    # The paper: "using overlap enlargement ... does not improve query
    # performance"; allow generous noise at reduced scale.
    assert without <= 1.5 * with_overlap


def test_buffer_size(benchmark, scale, capsys):
    result = run_figure(benchmark, ablation_buffer_size, scale, capsys)
    values = result.series["Rexp-tree"]
    # More buffer can never be much worse.
    assert values[-1] <= values[0] * 1.2


def test_lazy_purge_fraction(benchmark, scale, capsys):
    result = run_figure(benchmark, ablation_lazy_purge, scale, capsys)
    values = result.series["Rexp-tree"]
    assert max(values) < 0.25, f"expired fraction too high: {values}"
