"""Scatter-gather scaling of the process-parallel sharded index.

Replays the Section 5.1 network workload (UI = 60, ExpT = 2 x UI,
100 queries per 100 insertions) through :class:`ShardedForest` at 1, 2,
4 and 8 workers, each worker owning a durable member tree (page file +
WAL) behind a fitted spatial grid, and holds the run to two promises:

1. **Identity** — every scatter-gather answer, at every worker count,
   equals the single-tree oracle's answer exactly.  Sharding must be
   invisible in results.
2. **Scaling** — combined update+query *capacity* throughput grows at
   least 3x from 1 to 8 workers.

Two throughputs are reported, deliberately:

* ``wall`` — operations over end-to-end wall time in this process.  On
  a single-core container the workers time-slice one CPU, so wall
  barely moves with the worker count; reporting it keeps the numbers
  honest.
* ``capacity`` — operations over the *modeled makespan*: the router's
  own critical-path work plus the busiest worker's measured busy time
  (every batch acknowledgement carries the worker's decode+apply
  seconds).  That is the replay's span on a machine with one core per
  worker; on a multi-core host wall converges to it.  The scaling gate
  applies to this metric, and ``cpu_count`` is recorded alongside so
  the context is never lost.

Writes ``BENCH_shards.json`` for CI artifacts.  Scale follows
``REPRO_SCALE`` (default: tiny).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

from repro.core.clock import SimulationClock
from repro.core.partition import GridPartitioner
from repro.core.presets import rexp_config
from repro.core.tree import MovingObjectTree
from repro.experiments.scale import SCALES
from repro.shard import ShardConfig, ShardedForest
from repro.workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp
from repro.workloads.expiration import FixedPeriod
from repro.workloads.network import NetworkParams, generate_network_workload

SCALE = SCALES[os.environ.get("REPRO_SCALE", "tiny")]
WORKER_COUNTS = (1, 2, 4, 8)
UPDATE_INTERVAL = 60.0
EXPT = 2.0 * UPDATE_INTERVAL
MAX_SPEED = 3.0  # fastest network speed group (km/min)
MIN_CAPACITY_SPEEDUP = 3.0

_REPORT = Path(__file__).resolve().parent.parent / "BENCH_shards.json"


def _workload():
    params = NetworkParams(
        target_population=SCALE.target_population,
        insertions=SCALE.insertions,
        update_interval=UPDATE_INTERVAL,
        queries_per_insertions=100,
        seed=0,
    )
    return generate_network_workload(params, FixedPeriod(EXPT)), params


def _tree_config():
    return rexp_config(
        page_size=SCALE.page_size,
        buffer_pages=SCALE.buffer_pages,
        default_ui=UPDATE_INTERVAL,
    )


def _oracle(ops, config):
    """Single-tree fault-free replay: answers by op index + failures."""
    clock = SimulationClock()
    tree = MovingObjectTree(config, clock)
    answers, failed = {}, 0
    for index, op in enumerate(ops):
        clock.advance_to(op.time)
        if isinstance(op, InsertOp):
            tree.insert(op.oid, op.point)
        elif isinstance(op, UpdateOp):
            if not tree.update(op.oid, op.old_point, op.new_point):
                failed += 1
        elif isinstance(op, DeleteOp):
            if not tree.delete(op.oid, op.point):
                failed += 1
        elif isinstance(op, QueryOp):
            answers[index] = sorted(tree.query(op.query))
    return answers, failed


def _position_sample(ops, limit=4000):
    """Reference positions of the stream's first reports (fit sample)."""
    sample = []
    for op in ops:
        if isinstance(op, InsertOp):
            sample.append(op.point.pos)
            if len(sample) >= limit:
                break
    return sample


def _fitted_partitioner(workers, sample, space):
    shape = GridPartitioner.for_partitions(workers, space=space)
    return GridPartitioner.fitted(
        sample, shape.cells_x, shape.cells_y,
        space=space, reach=MAX_SPEED * EXPT,
    )


def test_shard_scaling_with_oracle_identity(tmp_path=None):
    workload, params = _workload()
    config = _tree_config()
    expected, expected_failed = _oracle(workload.ops, config)
    sample = _position_sample(workload.ops)
    base = tempfile.mkdtemp(prefix="bench-shards-")
    out = sys.__stdout__
    print(f"\n[repro] shard scaling: {len(workload.ops)} network ops "
          f"({SCALE.insertions} insertions, population "
          f"{SCALE.target_population}, {len(expected)} queries), "
          f"host cpus={os.cpu_count()}", file=out)
    print(f"[repro] {'workers':>7} {'wall s':>8} {'wall ops/s':>10} "
          f"{'capacity/s':>11} {'speedup':>8} {'busiest s':>9} "
          f"{'balance':>8}", file=out)
    runs = []
    try:
        for workers in WORKER_COUNTS:
            forest = ShardedForest.create(
                os.path.join(base, f"w{workers}"),
                ShardConfig(
                    workers=workers,
                    tree=config,
                    space=params.space,
                    batch_ops=256,
                ),
                partitioner=_fitted_partitioner(
                    workers, sample, params.space
                ),
            )
            try:
                result = forest.apply_ops(workload.ops)
            finally:
                forest.close()

            # Identity: scatter-gather answers must equal the oracle's.
            assert result.failed_deletes == expected_failed
            assert set(result.answers) == set(expected)
            for index, answer in expected.items():
                got = sorted(result.answers[index])
                assert got == answer, (
                    f"{workers} workers: query at op {index} returned "
                    f"{got}, oracle said {answer}"
                )

            capacity = result.ops / max(result.model_makespan_seconds, 1e-9)
            busiest = max(result.shard_busy_seconds)
            total_busy = sum(result.shard_busy_seconds)
            runs.append({
                "workers": workers,
                "ops": result.ops,
                "queries": len(expected),
                "scattered_queries": result.scattered_queries,
                "batches": result.batches,
                "wall_seconds": round(result.wall_seconds, 4),
                "router_seconds": round(result.router_seconds, 4),
                "model_makespan_seconds": round(
                    result.model_makespan_seconds, 4
                ),
                "wall_ops_per_s": round(
                    result.ops / max(result.wall_seconds, 1e-9), 1
                ),
                "capacity_ops_per_s": round(capacity, 1),
                "shard_busy_seconds": [
                    round(b, 4) for b in result.shard_busy_seconds
                ],
                "busy_balance": round(busiest / max(total_busy, 1e-9), 4),
            })
            speedup = (
                capacity / runs[0]["capacity_ops_per_s"]
                if runs else 1.0
            )
            print(f"[repro] {workers:>7} {result.wall_seconds:>8.2f} "
                  f"{runs[-1]['wall_ops_per_s']:>10.0f} "
                  f"{capacity:>11.0f} {speedup:>7.2f}x "
                  f"{busiest:>9.2f} "
                  f"{busiest / max(total_busy, 1e-9):>7.0%}", file=out)
    finally:
        shutil.rmtree(base, ignore_errors=True)

    baseline = runs[0]["capacity_ops_per_s"]
    speedups = {
        run["workers"]: round(run["capacity_ops_per_s"] / baseline, 3)
        for run in runs
    }
    payload = {
        "scale": SCALE.name,
        "cpu_count": os.cpu_count(),
        "workload": {
            "kind": "network (Section 5.1)",
            "insertions": SCALE.insertions,
            "target_population": SCALE.target_population,
            "update_interval": UPDATE_INTERVAL,
            "expiration_period": EXPT,
            "queries_per_insertions": 100,
            "ops": runs[0]["ops"],
        },
        "partitioner": "fitted grid (quantile cells), "
                       f"reach={MAX_SPEED * EXPT:g}",
        "oracle": "single in-memory R^exp-tree replay; every "
                  "scatter-gather answer asserted identical",
        "metric_note": (
            "capacity_ops_per_s = ops / (router CPU seconds + busiest "
            "worker's CPU busy seconds): the replay's span with one core "
            "per worker, measured in scheduler-independent per-process "
            "CPU time.  wall_ops_per_s is the end-to-end wall measurement "
            "on this host; on a single-CPU container the workers "
            "time-slice one core, so wall stays flat while capacity "
            "reflects the parallel structure.  Speedups can exceed the "
            "worker count because sharding also shrinks each member "
            "tree — shallower trees make every insert/delete cheaper, "
            "the same effect the paper's partitioned forest exploits."
        ),
        "runs": runs,
        "capacity_speedup": speedups,
    }
    _REPORT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[repro] wrote {_REPORT.name}; capacity speedups {speedups}",
          file=out)

    top = speedups[WORKER_COUNTS[-1]]
    assert top >= MIN_CAPACITY_SPEEDUP, (
        f"capacity throughput scaled only {top:.2f}x from 1 to "
        f"{WORKER_COUNTS[-1]} workers (need >= {MIN_CAPACITY_SPEEDUP}x)"
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_shard_scaling_with_oracle_identity()
