"""Figure 9: Search I/O for varying ExpT — four flavours of TPBR expiration recording and ChooseSubtree.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure9

from _util import run_figure


def test_figure9(benchmark, scale, capsys):
    run_figure(benchmark, figure9, scale, capsys)
