"""Figure 10: Search I/O for varying update interval UI — same four flavours.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure10

from _util import run_figure


def test_figure10(benchmark, scale, capsys):
    run_figure(benchmark, figure10, scale, capsys)
