"""Shared fixtures for the figure benchmarks.

Each ``bench_fig*.py`` regenerates one figure of the paper at the scale
selected by ``REPRO_SCALE`` (default: tiny).  Runs are cached under
``.repro-cache`` so re-runs (and the three NewOb figures, which share a
sweep) are cheap.  pytest-benchmark measures one full sweep per figure.
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments.scale import current_scale


@pytest.fixture(scope="session")
def scale():
    s = current_scale()
    print(f"\n[repro] benchmark scale: {s.name} "
          f"(population={s.target_population}, insertions={s.insertions}, "
          f"page={s.page_size}B, buffer={s.buffer_pages} pages)",
          file=sys.__stdout__)
    return s


def run_figure_benchmark(benchmark, figure_fn, scale):
    """Run one figure sweep under pytest-benchmark (single round).

    A sweep replays several workloads against several index flavours —
    minutes of work — so it is executed exactly once; pytest-benchmark
    still records the wall time, and the figure's series and shape
    checks are printed for EXPERIMENTS.md.
    """
    result = benchmark.pedantic(
        figure_fn, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    return result
