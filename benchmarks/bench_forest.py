"""Velocity-partitioned forest vs a single R^exp-tree.

Replays the uniform and network workloads (mixed speeds: uniform in
[0, 3 km/min]) against a single R^exp-tree and against 2-, 4- and
8-partition forests of both partitioner kinds, reporting average search
and update I/O per operation and the per-partition page breakdown.  A
dedicated identity test asserts that the 4-partition forest answers
*exactly* the single tree's result set across all three query types.

The two partitioners behave very differently on *isotropic* data: the
uniform workload draws velocity directions uniformly, so a speed
(magnitude) class still contains velocities pointing everywhere and its
TPBRs sweep almost as much dead space as the unpartitioned tree's.
Direction sectors are what shrink the per-dimension velocity spread
(a 90-degree sector halves it), so the acceptance test below pits the
*direction* forest against the single tree; the speed buckets pay off
on skewed speed distributions instead (the Xu et al. setting).

Scale follows ``REPRO_SCALE`` (default: small, so the index does not
fit in the buffer pool and searches pay for misses).
"""

import os
import random
import sys

import pytest

from repro.core import (
    MovingObjectTree,
    PartitionedMovingObjectForest,
    SimulationClock,
    forest_config,
    rexp_config,
)
from repro.experiments.adapters import ForestAdapter, TreeAdapter
from repro.experiments.runner import run_workload
from repro.experiments.scale import SCALES
from repro.geometry import MovingQuery, Rect, TimesliceQuery, WindowQuery
from repro.workloads.expiration import FixedPeriod
from repro.workloads.network import NetworkParams, generate_network_workload
from repro.workloads.uniform import UniformParams, generate_uniform_workload

from _util import initial_population

SCALE = SCALES[os.environ.get("REPRO_SCALE", "small")]
PARTITION_COUNTS = (2, 4, 8)


def _workload(kind):
    if kind == "network":
        return generate_network_workload(
            NetworkParams(
                target_population=SCALE.target_population,
                insertions=SCALE.insertions,
                seed=0,
            ),
            FixedPeriod(120.0),
        )
    return generate_uniform_workload(
        UniformParams(
            target_population=SCALE.target_population,
            insertions=SCALE.insertions,
            seed=0,
        ),
        FixedPeriod(120.0),
    )


@pytest.fixture(scope="module", params=("uniform", "network"))
def workload(request):
    return _workload(request.param)


def _sizing():
    return dict(page_size=SCALE.page_size, buffer_pages=SCALE.buffer_pages)


def _report(result, adapter=None):
    print(f"\n[repro] {result.workload}: {result.summary()}", file=sys.__stdout__)
    if isinstance(adapter, ForestAdapter):
        forest = adapter.forest
        for label, pages, snap in zip(
            forest.partition_labels(),
            forest.partition_page_counts(),
            forest.partition_snapshots(),
        ):
            print(f"[repro]   {label:<24} pages={pages:5d} "
                  f"reads={snap.reads:7d} writes={snap.writes:7d}",
                  file=sys.__stdout__)


def test_single_tree_baseline(benchmark, workload):
    def run():
        adapter = TreeAdapter("Rexp-tree", rexp_config(**_sizing()))
        return run_workload(adapter, workload, prepopulate=True), adapter

    (result, adapter) = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    _report(result, adapter)
    assert result.search_ops > 0


@pytest.mark.parametrize("kind", ("speed", "direction"))
@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
def test_forest(benchmark, workload, partitions, kind):
    def run():
        adapter = ForestAdapter(
            f"forest/{partitions}-{kind}",
            forest_config(partitions=partitions, partitioner=kind, **_sizing()),
        )
        return run_workload(adapter, workload, prepopulate=True), adapter

    (result, adapter) = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    _report(result, adapter)
    assert result.search_ops > 0
    assert len(result.partition_pages) == partitions


def test_forest_reduces_query_io_on_mixed_speeds():
    """Acceptance: the 4-partition forest answers the identical result
    set as the single tree while reducing total query page reads on the
    uniform workload with mixed speeds.

    The uniform workload is isotropic, so the winning split is by
    direction (three 120-degree sectors plus a slow bucket), which
    halves each member's per-dimension velocity spread; magnitude-only
    buckets leave that spread intact (see the module docstring).  The
    forest also needs a buffer budget it can split without degenerating
    to one page per member, so the pool is sized at 3 pages/partition.
    """
    workload = _workload("uniform")
    sizing = _sizing()
    sizing["buffer_pages"] = max(sizing["buffer_pages"], 12)
    tree_adapter = TreeAdapter("Rexp-tree", rexp_config(**sizing))
    forest_adapter = ForestAdapter("forest/4-direction", forest_config(
        partitions=4, partitioner="direction", **sizing,
    ))
    tree_result = run_workload(tree_adapter, workload, prepopulate=True)
    forest_result = run_workload(forest_adapter, workload, prepopulate=True)
    _report(tree_result, tree_adapter)
    _report(forest_result, forest_adapter)
    single = tree_result.avg_search_io * tree_result.search_ops
    forest = forest_result.avg_search_io * forest_result.search_ops
    ratio = single / forest if forest else float("inf")
    print(f"[repro] total query I/O: single-tree={single:.0f} "
          f"forest/4={forest:.0f} ({ratio:.2f}x lower)",
          file=sys.__stdout__)
    assert forest < single


@pytest.mark.parametrize("kind", ("speed", "direction"))
def test_forest_identical_answers(kind):
    """The 4-partition forest and a single tree return exactly the same
    result sets across timeslice, window and moving queries."""
    count = min(SCALE.target_population, 5000)
    population = initial_population(count, seed=3)
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(**_sizing()), clock)
    forest = PartitionedMovingObjectForest(
        forest_config(partitions=4, partitioner=kind, **_sizing()), clock
    )
    clock.advance_to(population[0][1].t_ref)
    entries = [(point, oid) for oid, point in population]
    tree.bulk_load(entries)
    forest.bulk_load(entries)
    t_end = max(point.t_ref for _, point in population)
    clock.advance_to(t_end)
    rng = random.Random(4)
    mismatches = 0
    for _ in range(100):
        x, y = rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)
        rect = Rect((x, y), (x + 100.0, y + 100.0))
        shifted = Rect((x + 20.0, y + 20.0), (x + 120.0, y + 120.0))
        t1 = t_end + rng.uniform(0.0, 30.0)
        t2 = t1 + rng.uniform(0.0, 30.0)
        for query in (
            TimesliceQuery(rect, t1),
            WindowQuery(rect, t1, t2),
            MovingQuery(rect, shifted, t1, t2),
        ):
            if sorted(tree.query(query)) != sorted(forest.query(query)):
                mismatches += 1
    print(f"\n[repro] identity check: 300 queries, {mismatches} mismatched",
          file=sys.__stdout__)
    assert mismatches == 0
