"""Figure 16: Update I/O for varying NewOb.

Regenerates the paper's figure at the scale selected by REPRO_SCALE and
prints the series plus the paper's qualitative shape checks.
"""

from repro.experiments.figures import figure16

from _util import run_figure


def test_figure16(benchmark, scale, capsys):
    run_figure(benchmark, figure16, scale, capsys)
