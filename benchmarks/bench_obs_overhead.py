"""Observability must be free when it is off.

The tracing/metrics layer (``repro.obs``) promises a zero-overhead
disabled path: every instrumented hot site is behind a single
``self._obs is None`` / ``self._tracer is None`` attribute check, and
no record, counter, or span object is touched until observability is
explicitly enabled.  This benchmark holds the layer to that promise on
a ~10k-operation uniform workload:

1. **Exactness** — an enabled run must report page I/O identical *to
   the last digit* to a disabled run of the same workload.  The
   instrumentation observes page traffic, it must never cause any.
2. **Disabled-path cost** — the only thing the disabled path pays is
   the guard checks.  The per-check cost is measured directly and
   multiplied by a deliberate *overcount* of guard executions; even
   that bound must stay under 2% of the disabled run's wall time.
3. **Enabled-path cost** — reported (spans, events, and histograms are
   not free and are not meant to be), with the slowdown factor written
   to ``BENCH_obs.json`` alongside the other numbers for CI artifacts.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.presets import rexp_config
from repro.experiments.adapters import TreeAdapter
from repro.experiments.runner import run_workload
from repro.experiments.scale import SCALES
from repro.obs import MetricsRegistry, Tracer
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

SCALE = SCALES["tiny"]
# Wire batches touch a handful of trace guards each (encode flag check,
# decode flags word, extras slot test); a generous overcount.
GUARDS_PER_BATCH = 16
# A deliberate overcount of disabled-path guard checks per operation:
# an op entry touches 2-4 guards and structural events a handful more;
# real counts are well below this.
GUARDS_PER_OP = 24

_REPORT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _merge_report(update: dict) -> None:
    """Fold one test's numbers into ``BENCH_obs.json``.

    Two tests share the report file, so each merges over whatever the
    other (or a previous run) left behind rather than clobbering it.
    """
    existing: dict = {}
    if _REPORT.exists():
        try:
            existing = json.loads(_REPORT.read_text())
        except (ValueError, OSError):
            existing = {}
    existing.update(update)
    _REPORT.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _workload():
    return generate_uniform_workload(
        UniformParams(
            target_population=SCALE.target_population,
            insertions=10_000,  # ~10k ops plus the interleaved queries
            update_interval=60.0,
            seed=0,
        ),
        FixedPeriod(120.0),
    )


def _adapter():
    return TreeAdapter(
        "Rexp-tree",
        rexp_config(
            page_size=SCALE.page_size, buffer_pages=SCALE.buffer_pages
        ),
    )


def _run(workload, registry=None, tracer=None):
    adapter = _adapter()
    t0 = time.perf_counter()
    result = run_workload(
        adapter, workload, registry=registry, tracer=tracer
    )
    return result, time.perf_counter() - t0


def _guard_cost_ns() -> float:
    """Measured cost of one ``self._obs is None`` check, in nanoseconds."""
    tree = _adapter().tree
    n = 1_000_000
    t0 = time.perf_counter()
    for _ in range(n):
        if tree._obs is not None:
            raise AssertionError  # pragma: no cover
    per_iteration = (time.perf_counter() - t0) / n
    # Subtract the loop's own cost so only the guard remains.
    t0 = time.perf_counter()
    for _ in range(n):
        pass
    loop = (time.perf_counter() - t0) / n
    return max(per_iteration - loop, 1e-10) * 1e9


def test_disabled_path_is_exact_and_under_2_percent():
    workload = _workload()
    ops = len(workload.ops)
    assert ops >= 10_000, f"workload too small to be meaningful: {ops} ops"

    plain, plain_wall = _run(workload)
    registry, tracer = MetricsRegistry(), Tracer()
    traced, traced_wall = _run(workload, registry=registry, tracer=tracer)

    # 1. Exactness: observing the run must not change what it does.
    assert traced.avg_search_io == plain.avg_search_io
    assert traced.avg_update_io == plain.avg_update_io
    assert traced.search_ops == plain.search_ops
    assert traced.update_ops == plain.update_ops
    assert traced.page_count == plain.page_count
    assert traced.leaf_entries == plain.leaf_entries
    assert traced.failed_deletes == plain.failed_deletes

    # 2. Disabled-path cost: guard checks only, bounded from above.
    guard_ns = _guard_cost_ns()
    bound = ops * GUARDS_PER_OP * guard_ns * 1e-9
    overhead = bound / plain_wall
    assert overhead < 0.02, (
        f"disabled-path guard bound {bound * 1e3:.2f} ms is "
        f"{overhead:.2%} of the {plain_wall:.2f} s run"
    )

    # 3. Enabled-path cost: report, don't assert — tracing is opt-in.
    slowdown = traced_wall / plain_wall if plain_wall else float("inf")
    payload = {
        "scale": SCALE.name,
        "operations": ops,
        "disabled_wall_s": round(plain_wall, 4),
        "enabled_wall_s": round(traced_wall, 4),
        "enabled_slowdown": round(slowdown, 3),
        "guard_cost_ns": round(guard_ns, 2),
        "guards_per_op_bound": GUARDS_PER_OP,
        "disabled_overhead_bound": round(overhead, 6),
        "trace_records": len(tracer),
        "metric_names": len(registry.names()),
    }
    _merge_report(payload)
    print(f"\n[repro] obs overhead: disabled bound {overhead:.3%} "
          f"(guard {guard_ns:.0f} ns x {GUARDS_PER_OP}/op), "
          f"enabled {slowdown:.2f}x over {ops} ops; wrote {_REPORT.name}",
          file=sys.__stdout__)


def test_sharded_tracing_is_exact_and_disabled_path_under_2_percent():
    """The cross-process path keeps the same promise as the tree path.

    A two-worker scatter-gather replay with distributed tracing on must
    produce answers and per-shard page I/O identical to the last digit
    to a run with observability off entirely; and the disabled path's
    only new cost — the trace guards on the wire hot path — must bound
    under 2% of the plain run's wall time.
    """
    import shutil
    import tempfile

    from repro.shard import ShardConfig, ShardedForest
    from repro.workloads.network import (
        NetworkParams, generate_network_workload,
    )

    params = NetworkParams(
        target_population=400,
        insertions=1_500,
        update_interval=60.0,
        queries_per_insertions=50,
        seed=0,
    )
    workload = generate_network_workload(params, FixedPeriod(120.0))
    config = dict(
        workers=2,
        tree=rexp_config(
            page_size=SCALE.page_size, buffer_pages=SCALE.buffer_pages,
            default_ui=60.0,
        ),
        max_speed=max(params.speed_groups),
        space=params.space,
        reach=max(params.speed_groups) * 120.0,
        batch_ops=128,
    )

    def _replay(observability, registry=None, tracer=None):
        base = tempfile.mkdtemp(prefix="repro-obs-shards-")
        forest = ShardedForest.create(
            base,
            ShardConfig(observability=observability, **config),
            registry=registry,
            tracer=tracer,
        )
        try:
            t0 = time.perf_counter()
            result = forest.apply_ops(workload.ops)
            wall = time.perf_counter() - t0
            stats = forest.stats_payloads()
            merged = forest.live_registry().names() if registry else []
        finally:
            forest.close()
            shutil.rmtree(base, ignore_errors=True)
        return result, wall, [
            {k: p[k] for k in ("io", "pages", "entries", "height")}
            for p in stats
        ], merged

    plain, plain_wall, plain_stats, _ = _replay(observability=False)
    registry, tracer = MetricsRegistry(), Tracer(capacity=1 << 20)
    traced, traced_wall, traced_stats, merged_names = _replay(
        observability=True, registry=registry, tracer=tracer
    )

    # 1. Exactness: tracing observes shard I/O, it must not cause any.
    assert traced.answers == plain.answers
    assert traced.failed_deletes == plain.failed_deletes
    assert traced_stats == plain_stats

    # 2. Disabled-path cost: the wire path's trace guards, bounded.
    guard_ns = _guard_cost_ns()
    bound = plain.batches * GUARDS_PER_BATCH * guard_ns * 1e-9
    overhead = bound / plain_wall
    assert overhead < 0.02, (
        f"sharded disabled-path guard bound {bound * 1e3:.4f} ms is "
        f"{overhead:.2%} of the {plain_wall:.2f} s replay"
    )

    # 3. Enabled-path cost: report alongside the tree-path numbers.
    slowdown = traced_wall / plain_wall if plain_wall else float("inf")
    adopted = sum(
        1 for r in tracer.records()
        if r.get("kind") == "span" and r.get("name") == "worker.batch"
    )
    _merge_report({"sharded": {
        "workers": 2,
        "operations": len(workload.ops),
        "batches": plain.batches,
        "disabled_wall_s": round(plain_wall, 4),
        "enabled_wall_s": round(traced_wall, 4),
        "enabled_slowdown": round(slowdown, 3),
        "disabled_overhead_bound": round(overhead, 6),
        "adopted_worker_spans": adopted,
        "merged_metric_names": len(merged_names),
    }})
    print(f"\n[repro] sharded obs overhead: disabled bound {overhead:.3%}, "
          f"enabled {slowdown:.2f}x over {plain.batches} batches "
          f"({adopted} adopted worker spans)", file=sys.__stdout__)
