"""Best-first kNN vs brute force, and incremental vs naive subscriptions.

Two promises from the query-model PR, each held by a gate:

1. **kNN identity + pruning** — ``knn_entries`` on the tree and the
   partitioned forest returns *bit-identical* ``(distance², oid)``
   lists to :func:`~repro.geometry.knn.brute_force_knn` on every probe,
   and the best-first descent demonstrably prunes: the mean node count
   it visits stays below ``MAX_VISIT_FRACTION`` of the tree's nodes.

2. **Continuous maintenance** — with ``SUBSCRIPTIONS`` (≥10k) standing
   range queries registered, the per-event incremental delta update is
   at least ``MIN_RATIO``× cheaper than naively re-evaluating every
   subscription against the live population after each event.  The
   naive baseline is measured on a handful of events (it is exactly the
   quadratic blow-up the subscription index exists to avoid); answers
   are cross-checked against naive re-evaluation at the end.

Writes ``BENCH_knn.json`` for CI artifacts.  Scale follows
``REPRO_SCALE`` (default: tiny).
"""

from __future__ import annotations

import json
import math
import os
import random
import time
from pathlib import Path

from repro.core.clock import SimulationClock
from repro.core.forest import PartitionedMovingObjectForest
from repro.core.presets import forest_config, rexp_config
from repro.core.tree import MovingObjectTree
from repro.experiments.runner import split_initial_population
from repro.experiments.scale import SCALES
from repro.geometry.intersection import region_matches_point
from repro.geometry.kinematics import MovingPoint
from repro.geometry.knn import brute_force_knn
from repro.geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
from repro.geometry.rect import Rect
from repro.obs import MetricsRegistry
from repro.serve import SubscriptionIndex
from repro.workloads.expiration import FixedPeriod
from repro.workloads.uniform import UniformParams, generate_uniform_workload

SCALE = SCALES[os.environ.get("REPRO_SCALE", "tiny")]
SPACE = 1000.0
PROBES = 200
K = 10
#: Mean nodes visited per kNN must stay below this fraction of the
#: tree's node count — the evidence that the TPBR lower bound prunes.
MAX_VISIT_FRACTION = 0.6
#: The paper's motivation for standing queries: ≥10k of them, where
#: per-event naive re-evaluation is hopeless.
SUBSCRIPTIONS = 10_000
EVENTS = 1_500
NAIVE_EVENTS = 3
MIN_RATIO = 25.0

_REPORT = Path(__file__).resolve().parent.parent / "BENCH_knn.json"


def _population():
    workload = generate_uniform_workload(
        UniformParams(
            target_population=SCALE.target_population,
            insertions=SCALE.insertions,
            update_interval=60.0,
            queries_per_insertions=SCALE.insertions + 1,
            seed=0,
        ),
        FixedPeriod(120.0),
    )
    initial, _ = split_initial_population(workload)
    return initial


def _sizing():
    return dict(page_size=SCALE.page_size, buffer_pages=SCALE.buffer_pages)


def _probes(t_end, count=PROBES, seed=2):
    rng = random.Random(seed)
    return [
        (
            (rng.uniform(0.0, SPACE), rng.uniform(0.0, SPACE)),
            t_end + rng.uniform(0.0, 30.0),
        )
        for _ in range(count)
    ]


def _knn_section(out_lines):
    initial = _population()
    assert initial, "workload produced no initial population"
    entries = [(point, oid) for oid, point in initial]
    t_end = max(point.t_ref for _, point in initial)
    probes = _probes(t_end)

    start = time.perf_counter()
    oracle = [brute_force_knn(entries, x, t, K) for x, t in probes]
    t_brute = time.perf_counter() - start

    registry = MetricsRegistry()
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(**_sizing(), default_ui=60.0), clock)
    tree.enable_observability(registry=registry)
    clock.advance_to(initial[0][1].t_ref)
    tree.bulk_load(entries)
    clock.advance_to(t_end)
    start = time.perf_counter()
    tree_answers = [tree.knn_entries(x, t, K) for x, t in probes]
    t_tree = time.perf_counter() - start
    assert tree_answers == oracle, "tree kNN diverged from brute force"

    clock = SimulationClock()
    forest = PartitionedMovingObjectForest(
        forest_config(partitions=4, **_sizing(), default_ui=60.0), clock
    )
    clock.advance_to(initial[0][1].t_ref)
    forest.insert_batch(initial)
    clock.advance_to(t_end)
    start = time.perf_counter()
    forest_answers = [forest.knn_entries(x, t, K) for x, t in probes]
    t_forest = time.perf_counter() - start
    assert forest_answers == oracle, "forest kNN diverged from brute force"

    nodes = tree.audit().nodes
    visited = registry.histogram("tree.knn_nodes_visited")
    mean_visited = visited.total / max(visited.count, 1)
    visit_fraction = mean_visited / max(nodes, 1)

    out_lines.append(
        f"[repro] kNN: {len(initial)} objects, {len(probes)} probes, "
        f"k={K} (scale {SCALE.name})"
    )
    out_lines.append(
        f"[repro]   brute {t_brute:.3f}s  tree {t_tree:.3f}s  "
        f"forest {t_forest:.3f}s  — all bit-identical"
    )
    out_lines.append(
        f"[repro]   mean nodes visited {mean_visited:.1f} of {nodes} "
        f"({visit_fraction:.0%}, gate < {MAX_VISIT_FRACTION:.0%})"
    )
    assert visit_fraction < MAX_VISIT_FRACTION, (
        f"best-first visited {visit_fraction:.0%} of the tree's nodes on "
        f"average (gate < {MAX_VISIT_FRACTION:.0%}): the lower bound is "
        "not pruning"
    )
    return {
        "objects": len(initial),
        "probes": len(probes),
        "k": K,
        "oracle": "brute_force_knn; tree and forest answers asserted "
                  "bit-identical ((distance², oid) lists)",
        "brute_force_seconds": round(t_brute, 4),
        "tree_seconds": round(t_tree, 4),
        "forest_seconds": round(t_forest, 4),
        "tree_nodes": nodes,
        "mean_nodes_visited": round(mean_visited, 1),
        "visit_fraction": round(visit_fraction, 3),
        "visit_fraction_gate": MAX_VISIT_FRACTION,
    }


def _standing_queries(rng, count):
    queries = []
    for _ in range(count):
        x, y = rng.uniform(0.0, SPACE * 0.9), rng.uniform(0.0, SPACE * 0.9)
        w = rng.uniform(10.0, 60.0)
        rect = Rect((x, y), (x + w, y + w))
        t1 = rng.uniform(0.0, 120.0)
        kind = rng.randrange(3)
        if kind == 0:
            queries.append(TimesliceQuery(rect, t1))
        elif kind == 1:
            queries.append(WindowQuery(rect, t1, t1 + rng.uniform(0, 30)))
        else:
            x2 = rng.uniform(0.0, SPACE * 0.9)
            y2 = rng.uniform(0.0, SPACE * 0.9)
            rect2 = Rect((x2, y2), (x2 + w, y2 + w))
            queries.append(
                MovingQuery(rect, rect2, t1, t1 + rng.uniform(1, 30))
            )
    return queries


def _random_event(rng, now, live):
    if rng.random() < 0.6 or not live:
        oid = rng.randrange(SCALE.target_population * 2)
        t_exp = (
            math.inf if rng.random() < 0.2
            else now + rng.uniform(5.0, 60.0)
        )
        point = MovingPoint(
            (rng.uniform(0, SPACE), rng.uniform(0, SPACE)),
            (rng.uniform(-3, 3), rng.uniform(-3, 3)),
            now,
            t_exp,
        )
        return ("insert", oid, point)
    return ("delete", rng.choice(sorted(live)), None)


def _continuous_section(out_lines):
    rng = random.Random(7)
    subs = SubscriptionIndex(space=SPACE, cells=32, max_pending=8)
    sids = [subs.register(q) for q in _standing_queries(rng, SUBSCRIPTIONS)]

    # Pre-generate the event stream so only maintenance is timed.
    events = []
    live = set()
    now = 0.0
    for _ in range(EVENTS):
        now += rng.uniform(0.0, 0.1)
        kind, oid, point = _random_event(rng, now, live)
        events.append((now, kind, oid, point))
        live.add(oid) if kind == "insert" else live.discard(oid)

    start = time.perf_counter()
    for when, kind, oid, point in events:
        subs.advance_to(when)
        if kind == "insert":
            subs.notify_insert(oid, point)
        else:
            subs.notify_delete(oid)
    t_incremental = time.perf_counter() - start
    per_event_incremental = t_incremental / len(events)

    # Naive baseline: after each event, re-evaluate every subscription
    # against the live population.  Quadratic — a few events suffice.
    regions = [subs._subs[sid].region for sid in sids[:SUBSCRIPTIONS]]
    population = [point for point, _ in subs.live_entries()]
    start = time.perf_counter()
    for _ in range(NAIVE_EVENTS):
        for region in regions:
            for point in population:
                region_matches_point(region, point)
    t_naive = time.perf_counter() - start
    per_event_naive = t_naive / NAIVE_EVENTS
    ratio = per_event_naive / max(per_event_incremental, 1e-12)

    # Spot-check: the incremental answers equal naive re-evaluation.
    check_now = subs.now
    for sid in rng.sample(sids, 50):
        region = subs._subs[sid].region
        want = tuple(sorted(
            oid for point, oid in subs.live_entries()
            if not point.t_exp < check_now
            and region_matches_point(region, point)
        ))
        assert subs.answer(sid) == want, f"subscription {sid} diverged"

    out_lines.append(
        f"[repro] continuous: {SUBSCRIPTIONS} standing queries, "
        f"{len(events)} events, {subs.live_count} live at end"
    )
    out_lines.append(
        f"[repro]   incremental {per_event_incremental * 1e6:.0f}us/event, "
        f"naive {per_event_naive * 1e3:.1f}ms/event — "
        f"{ratio:.0f}x (gate >= {MIN_RATIO:.0f}x)"
    )
    assert ratio >= MIN_RATIO, (
        f"incremental maintenance only {ratio:.1f}x cheaper than naive "
        f"re-evaluation at {SUBSCRIPTIONS} subscriptions "
        f"(gate >= {MIN_RATIO}x)"
    )
    stats = subs.stats()
    return {
        "subscriptions": SUBSCRIPTIONS,
        "events": len(events),
        "live_at_end": subs.live_count,
        "per_event_incremental_seconds": round(per_event_incremental, 8),
        "per_event_naive_seconds": round(per_event_naive, 6),
        "naive_events_measured": NAIVE_EVENTS,
        "speedup_over_naive": round(ratio, 1),
        "speedup_gate": MIN_RATIO,
        "deltas": {
            "adds": stats["adds"],
            "removes": stats["removes"],
            "expirations": stats["expirations"],
        },
        "oracle": "50 sampled subscriptions re-evaluated naively over "
                  "the live population; answers asserted equal",
    }


def test_knn_and_continuous_maintenance():
    out_lines = []
    knn = _knn_section(out_lines)
    continuous = _continuous_section(out_lines)
    payload = {
        "scale": SCALE.name,
        "knn": knn,
        "continuous": continuous,
    }
    _REPORT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    out = __import__("sys").__stdout__
    print("", file=out)
    for line in out_lines:
        print(line, file=out)
    print(f"[repro] wrote {_REPORT.name}", file=out)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    test_knn_and_continuous_maintenance()
