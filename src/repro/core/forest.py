"""A velocity-partitioned forest of R^exp-trees.

One R^exp-tree bounds every subtree by its *extreme* member velocities,
so a population with widely mixed speeds pays for its fastest members
everywhere.  The forest splits the population into velocity classes
(see :mod:`repro.core.partition`), indexes each class in its own
:class:`~repro.core.tree.MovingObjectTree`, routes every insertion and
deletion to its class's tree, and fans queries out across all member
trees, merging the answers.  Because each member's velocity spread is a
fraction of the population's, its TPBRs sweep far less dead space and
queries touch fewer pages — the Xu et al. / Nguyen et al. result, here
layered on the paper's expiration-aware trees.

The forest mirrors the single tree's interface (insert / delete /
update / query / bulk_load / audit / page_count / stats), so it drops
into :class:`repro.core.scheduled.ScheduledDeletionIndex`, the
experiment adapters and the benchmarks unchanged.  I/O is accounted per
member tree and aggregated on demand, so experiments can report both
the total cost and the per-partition breakdown.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..geometry.kinematics import MovingPoint
from ..geometry.queries import SpatioTemporalQuery
from ..obs.metrics import NULL_REGISTRY
from ..storage.pagefile import PersistReport
from ..storage.stats import IOSnapshot
from .clock import SimulationClock
from .config import TreeConfig
from .partition import (
    DirectionPartitioner,
    GridPartitioner,
    Partitioner,
    SpeedPartitioner,
    make_partitioner,
)
from .tree import LeafEntry, MovingObjectTree, TreeAudit, TreeSnapshot

#: File name of the forest manifest inside a durable-forest directory.
MANIFEST_FILENAME = "forest.json"


class ForestSnapshot:
    """Read-only copies of every member tree's committed page set.

    The forest-level counterpart of
    :class:`~repro.core.tree.TreeSnapshot`: queries fan out over the
    member snapshots and concatenate, mirroring the live forest (each
    object lives in exactly one member, so concatenation preserves the
    answer multiset).
    """

    __slots__ = ("members", "taken_at")

    def __init__(self, members: Sequence[TreeSnapshot], taken_at: float):
        self.members = tuple(members)
        self.taken_at = taken_at

    def leaf_entries(self):
        """Iterate over all ``(point, oid)`` leaf entries of all members."""
        for member in self.members:
            yield from member.leaf_entries()

    @property
    def leaf_entry_count(self) -> int:
        """Physical leaf entries captured across all members."""
        return sum(member.leaf_entry_count for member in self.members)

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Fan the query out over the member snapshots and merge."""
        results: List[int] = []
        for member in self.members:
            results.extend(member.query(query))
        return results


def _partitioner_manifest(partitioner: Partitioner) -> dict:
    """Serialize a partitioner for the forest manifest."""
    if isinstance(partitioner, SpeedPartitioner):
        return {"kind": "speed", "boundaries": list(partitioner.boundaries)}
    if isinstance(partitioner, DirectionPartitioner):
        return {
            "kind": "direction",
            "sectors": partitioner.sectors,
            "slow_speed": partitioner.slow_speed,
        }
    if isinstance(partitioner, GridPartitioner):
        manifest = {
            "kind": "grid",
            "cells_x": partitioner.cells_x,
            "cells_y": partitioner.cells_y,
            "space": partitioner.space,
            "reach": partitioner.reach,
        }
        if partitioner.x_cuts is not None:
            manifest["x_cuts"] = list(partitioner.x_cuts)
            manifest["y_cuts"] = [list(col) for col in partitioner.y_cuts]
        return manifest
    raise ValueError(
        f"cannot persist partitioner of type {type(partitioner).__name__}"
    )


def _partitioner_from_manifest(payload: dict) -> Partitioner:
    """Rebuild a partitioner from its manifest form."""
    kind = payload.get("kind")
    if kind == "speed":
        return SpeedPartitioner(payload["boundaries"])
    if kind == "direction":
        return DirectionPartitioner(
            payload["sectors"], payload["slow_speed"]
        )
    if kind == "grid":
        return GridPartitioner(
            payload["cells_x"],
            payload["cells_y"],
            space=payload["space"],
            reach=payload["reach"],
            x_cuts=payload.get("x_cuts"),
            y_cuts=payload.get("y_cuts"),
        )
    raise ValueError(f"unknown partitioner kind {kind!r} in manifest")


@dataclass(frozen=True)
class ForestConfig:
    """Tunable parameters of :class:`PartitionedMovingObjectForest`.

    Attributes:
        tree: configuration applied to every member tree.
        partitions: number of velocity classes (member trees).
        partitioner: partition function kind, ``"speed"``,
            ``"direction"`` or ``"grid"`` (ignored when an explicit
            partitioner instance is passed to the forest).
        max_speed: anchor of the equal-width speed buckets used before
            any data-driven fit.
        slow_speed: the direction variant's near-stationary threshold.
        split_buffer: divide ``tree.buffer_pages`` across the members so
            the forest's total buffer matches a single tree's — the fair
            comparison; when off, every member gets the full budget.
        refit_on_bulk_load: replace a speed partitioner's boundaries
            with quantiles of the loaded population's speeds (the
            data-driven boundaries) whenever an empty forest is bulk
            loaded.
    """

    tree: TreeConfig = field(default_factory=TreeConfig)
    partitions: int = 4
    partitioner: str = "speed"
    max_speed: float = 3.0
    slow_speed: float = 0.25
    split_buffer: bool = True
    refit_on_bulk_load: bool = True

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ValueError(
                f"need at least one partition, got {self.partitions}"
            )

    @property
    def page_size(self) -> int:
        """Member-tree page size (what index wrappers size queues by)."""
        return self.tree.page_size

    @property
    def dims(self) -> int:
        """Spatial dimensionality shared by every member tree."""
        return self.tree.dims

    def member_tree_config(self, index: int = 0) -> TreeConfig:
        """The configuration of member ``index`` (buffer budget applied).

        The buffer budget divides so the members' shares sum back to the
        single tree's ``buffer_pages``: every member gets the floor
        share and the first ``buffer_pages % partitions`` members absorb
        one remainder page each (a plain floor division would silently
        shrink the forest total, e.g. 10 pages over 4 members to 8).
        Every member still gets at least one page, so with more members
        than pages the total exceeds the budget — the minimum workable
        pool wins over exactness.
        """
        if not self.split_buffer:
            return self.tree
        share, remainder = divmod(self.tree.buffer_pages, self.partitions)
        if index < remainder:
            share += 1
        return self.tree.with_(buffer_pages=max(1, share))

    def with_(self, **changes) -> "ForestConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class ForestStats:
    """Aggregated read-only view over the member trees' I/O counters.

    Supports the same ``snapshot()`` / ``since()`` protocol as
    :class:`repro.storage.stats.IOStats`, so adapters and the scheduled
    deletion wrapper can attribute forest I/O exactly as they do for a
    single tree.
    """

    def __init__(self, forest: "PartitionedMovingObjectForest"):
        self._forest = forest

    def _sum(self, attribute: str) -> int:
        return sum(
            getattr(tree.stats, attribute) for tree in self._forest.trees
        )

    @property
    def reads(self) -> int:
        """Page reads summed over all members."""
        return self._sum("reads")

    @property
    def writes(self) -> int:
        """Page writes summed over all members."""
        return self._sum("writes")

    @property
    def allocations(self) -> int:
        """Page allocations summed over all members."""
        return self._sum("allocations")

    @property
    def frees(self) -> int:
        """Page frees summed over all members."""
        return self._sum("frees")

    @property
    def total(self) -> int:
        """Total page I/O operations (reads plus writes)."""
        return self.reads + self.writes

    def snapshot(self) -> IOSnapshot:
        """Capture the current aggregate counters as a snapshot."""
        return IOSnapshot(self.reads, self.writes, self.allocations, self.frees)

    def since(self, snap: IOSnapshot) -> IOSnapshot:
        """Aggregate I/O accrued since ``snap`` was captured."""
        return IOSnapshot(
            self.reads - snap.reads,
            self.writes - snap.writes,
            self.allocations - snap.allocations,
            self.frees - snap.frees,
        )


class PartitionedMovingObjectForest:
    """Routes updates to velocity-class member trees; fans queries out.

    The forest is interface-compatible with a single
    :class:`~repro.core.tree.MovingObjectTree`: wrap it in a
    :class:`~repro.core.scheduled.ScheduledDeletionIndex`, drive it from
    the experiment runner, or use it directly.  All member trees share
    one simulation clock.
    """

    def __init__(
        self,
        config: Optional[ForestConfig] = None,
        clock: Optional[SimulationClock] = None,
        partitioner: Optional[Partitioner] = None,
        member_factory: Optional[
            Callable[[int, TreeConfig, SimulationClock], MovingObjectTree]
        ] = None,
    ):
        self.config = config if config is not None else ForestConfig()
        self.clock = clock if clock is not None else SimulationClock()
        if partitioner is None:
            partitioner = make_partitioner(
                self.config.partitioner,
                self.config.partitions,
                max_speed=self.config.max_speed,
                slow_speed=self.config.slow_speed,
            )
        elif partitioner.partitions != self.config.partitions:
            raise ValueError(
                f"partitioner has {partitioner.partitions} buckets but the "
                f"configuration asks for {self.config.partitions}"
            )
        self.partitioner = partitioner
        if member_factory is None:
            member_factory = lambda i, cfg, clk: MovingObjectTree(cfg, clk)  # noqa: E731
        self.trees = [
            member_factory(i, self.config.member_tree_config(i), self.clock)
            for i in range(self.config.partitions)
        ]
        self.stats = ForestStats(self)
        self._obs_routes = None  # per-partition routing counters when on
        self._durable_dir: Optional[str] = None

    # -- durability ---------------------------------------------------------

    @staticmethod
    def member_directory(directory: str, index: int) -> str:
        """Path of member ``index``'s page-store directory."""
        return os.path.join(directory, f"member{index}")

    def _write_manifest(self, directory: str) -> None:
        manifest = {
            "version": 1,
            "partitions": self.partitions,
            "partitioner": _partitioner_manifest(self.partitioner),
        }
        path = os.path.join(directory, MANIFEST_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def create_durable(
        cls,
        directory: str,
        config: Optional[ForestConfig] = None,
        clock: Optional[SimulationClock] = None,
        partitioner: Optional[Partitioner] = None,
        fsync: bool = False,
    ) -> "PartitionedMovingObjectForest":
        """Create an empty forest whose members live in page files.

        Each member tree gets its own subdirectory ``member<i>`` under
        ``directory`` holding a page file and WAL, and a ``forest.json``
        manifest records the partition count and partitioner so
        :meth:`open_from` can rebuild the routing function.
        """
        os.makedirs(directory, exist_ok=True)

        def factory(i, cfg, clk):
            """Create member ``i``'s durable tree under the forest root."""
            return MovingObjectTree.create_durable(
                cls.member_directory(directory, i), cfg, clk, fsync=fsync
            )

        forest = cls(config, clock, partitioner, member_factory=factory)
        forest._durable_dir = directory
        forest._write_manifest(directory)
        return forest

    @classmethod
    def open_from(
        cls,
        directory: str,
        config: Optional[ForestConfig] = None,
        clock: Optional[SimulationClock] = None,
        fsync: bool = False,
        registry=None,
        tracer=None,
    ) -> "PartitionedMovingObjectForest":
        """Open (and if needed recover) a durable forest from disk.

        Reads the manifest, rebuilds the partitioner, then opens every
        member tree — each member runs its own WAL recovery.  The shared
        clock advances to the latest committed time of any member.
        """
        path = os.path.join(directory, MANIFEST_FILENAME)
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("version") != 1:
            raise ValueError(
                f"unsupported forest manifest version {manifest.get('version')!r}"
            )
        partitions = manifest["partitions"]
        if config is None:
            config = ForestConfig(partitions=partitions)
        elif config.partitions != partitions:
            raise ValueError(
                f"configuration asks for {config.partitions} partitions but "
                f"the manifest records {partitions}"
            )
        partitioner = _partitioner_from_manifest(manifest["partitioner"])

        def factory(i, cfg, clk):
            """Reopen member ``i``'s durable tree from disk."""
            return MovingObjectTree.open_from(
                cls.member_directory(directory, i),
                cfg,
                clk,
                fsync=fsync,
                registry=registry,
                tracer=tracer,
            )

        forest = cls(config, clock, partitioner, member_factory=factory)
        forest._durable_dir = directory
        return forest

    def persist_to(self, directory: str) -> List[PersistReport]:
        """Snapshot a simulated forest into a durable directory.

        Writes the manifest plus one page-store snapshot per member, and
        returns the members' :class:`~repro.storage.pagefile.PersistReport`
        records.  The forest itself keeps running on its simulated disks.
        """
        os.makedirs(directory, exist_ok=True)
        self._write_manifest(directory)
        return [
            tree.persist_to(self.member_directory(directory, i))
            for i, tree in enumerate(self.trees)
        ]

    def checkpoint(self) -> None:
        """Checkpoint every durable member (truncates their WALs)."""
        for tree in self.trees:
            tree.checkpoint()

    def close(self) -> None:
        """Checkpoint and close every durable member's page store.

        Idempotent: each member's close is a no-op once its store is
        closed, so the forest may be closed unconditionally (and twice).
        """
        for tree in self.trees:
            tree.close()

    def snapshot(self) -> ForestSnapshot:
        """Snapshot every member for degraded reads (no I/O charged)."""
        return ForestSnapshot(
            [tree.snapshot() for tree in self.trees], self.now
        )

    # -- observability ------------------------------------------------------

    def enable_observability(self, registry=None, tracer=None) -> None:
        """Attach observability to every member and the routing layer.

        Each member tree gets a child scope of ``registry`` named
        ``partition<i>`` (so metric names read e.g.
        ``partition0.tree.splits``), all sharing the root registry's
        store; the forest itself counts how many inserts/deletes route
        to each partition.  The tracer is shared by all members.
        """
        binder = registry if registry is not None else NULL_REGISTRY
        self._obs_routes = []
        for i, tree in enumerate(self.trees):
            scope = binder.scope(f"partition{i}")
            tree.enable_observability(
                scope if registry is not None else None, tracer
            )
            self._obs_routes.append(scope.counter("forest.routed_ops"))
        if registry is not None:
            registry.gauge("forest.partitions", fn=lambda: self.partitions)
            registry.gauge("forest.pages", fn=lambda: self.page_count)

    def disable_observability(self) -> None:
        """Detach the metrics registry from the forest and members."""
        self._obs_routes = None
        for tree in self.trees:
            tree.disable_observability()

    # ------------------------------------------------------------------ API --

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self.clock.time

    @property
    def partitions(self) -> int:
        """Number of member trees in the forest."""
        return len(self.trees)

    def tree_for(self, point: MovingPoint) -> MovingObjectTree:
        """The member tree a report routes to."""
        return self.trees[self.partitioner.partition_of(point)]

    def insert(self, oid: int, point: MovingPoint) -> None:
        """Index a report in its velocity class's tree."""
        idx = self.partitioner.partition_of(point)
        if self._obs_routes is not None:
            self._obs_routes[idx].inc()
        self.trees[idx].insert(oid, point)

    def delete(self, oid: int, point: MovingPoint) -> bool:
        """Remove a report from the tree its insertion chose.

        Partitioning is a pure function of the report, so the deletion
        routes to the same member the insertion did — no routing table.
        """
        idx = self.partitioner.partition_of(point)
        if self._obs_routes is not None:
            self._obs_routes[idx].inc()
        return self.trees[idx].delete(oid, point)

    def update(
        self, oid: int, old_point: MovingPoint, new_point: MovingPoint
    ) -> bool:
        """Delete the old report and insert the new one.

        When the object's speed class changed, the entry migrates
        between member trees; otherwise this is the single tree's
        delete-then-insert within one member.
        """
        existed = self.delete(oid, old_point)
        self.insert(oid, new_point)
        return existed

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Fan a query out across the reachable members and merge answers.

        Each object lives in exactly one member, so concatenation
        preserves the single tree's answer multiset.  The partitioner
        may prune the fan-out to the members its partitions can reach
        (spatial grids with a finite reach); velocity partitioners
        always fan out to every member.
        """
        results: List[int] = []
        for index in self.partitioner.query_partitions(query.region()):
            results.extend(self.trees[index].query(query))
        return results

    def query_batch(
        self, queries: Sequence[SpatioTemporalQuery]
    ) -> List[List[int]]:
        """Answer K queries with one shared traversal per reachable member.

        Queries are grouped by the members their regions reach, each
        member answers its group through
        :meth:`MovingObjectTree.query_batch`, and every query's partial
        answers are concatenated in *that query's own*
        ``query_partitions`` order — grid partitioners with a finite
        reach do not enumerate cells in ascending member order, so a
        global merge order would not match :meth:`query`.  The result
        is bit-identical (including order) to
        ``[self.query(q) for q in queries]``.
        """
        if not queries:
            return []
        targets = [
            self.partitioner.query_partitions(query.region())
            for query in queries
        ]
        per_member: Dict[int, List[int]] = {}
        for position, members in enumerate(targets):
            for index in members:
                per_member.setdefault(index, []).append(position)
        parts: List[Dict[int, List[int]]] = [{} for _ in queries]
        for index, positions in per_member.items():
            answers = self.trees[index].query_batch(
                [queries[position] for position in positions]
            )
            for position, answer in zip(positions, answers):
                parts[position][index] = answer
        return [
            [
                oid
                for index in targets[position]
                for oid in parts[position][index]
            ]
            for position in range(len(queries))
        ]

    def query_knn(self, x, t: float, k: int) -> List[int]:
        """The ``k`` objects nearest to ``x`` at ``t``, across all members.

        A kNN query has no region, so it fans out to *every* member
        (velocity partitioners are spatially uninformative anyway); the
        members are probed sequentially under a **shared global
        k-th-distance bound** — once ``k`` candidates are held, each
        later member's best-first descent prunes every subtree whose
        lower bound strictly exceeds the current k-th distance.
        Per-member candidates merge by the canonical
        ``(squared distance, oid)`` order, so the answer is
        bit-identical to a single tree's over the same population.

        Parameters
        ----------
        x : tuple of float
            The query location.
        t : float
            The evaluation time.
        k : int
            Number of neighbors.

        Returns
        -------
        list of int
            Object ids ordered by ``(squared distance at t, oid)``.
        """
        return [oid for _, oid in self.knn_entries(x, t, k)]

    def knn_entries(
        self, x, t: float, k: int, bound_sq: float = math.inf
    ) -> List[Tuple[float, int]]:
        """Scored forest kNN (see :meth:`MovingObjectTree.knn_entries`).

        Accepts and propagates an external ``bound_sq`` so the shard
        router can thread one tightening bound through a whole scatter.

        Parameters
        ----------
        x : tuple of float
            The query location.
        t : float
            The evaluation time.
        k : int
            Number of neighbors.
        bound_sq : float, optional
            Squared-distance cutoff from a caller already holding ``k``
            candidates.

        Returns
        -------
        list of (float, int)
            At most ``k`` pairs, ascending by ``(distance, oid)``.
        """
        if k == 0:
            return []
        best: List[Tuple[float, int]] = []
        for tree in self.trees:
            best.extend(tree.knn_entries(x, t, k, bound_sq))
            best.sort()
            del best[k:]
            if len(best) == k:
                bound_sq = min(bound_sq, best[-1][0])
        return best

    def insert_batch(self, reports: Sequence[Tuple[int, MovingPoint]]) -> None:
        """Index a report batch grouped by routing target (group update).

        The batch is stably grouped by member *before* any page is
        touched, so each member tree works through one contiguous run
        of inserts instead of interleaving buffer traffic with the
        other members.  Within a member the insertion order is the
        batch order, so the resulting forest state is identical to
        inserting the reports one by one.
        """
        groups: Dict[int, List[Tuple[int, MovingPoint]]] = {}
        for oid, point in reports:
            index = self.partitioner.partition_of(point)
            groups.setdefault(index, []).append((oid, point))
        for index in sorted(groups):
            group = groups[index]
            if self._obs_routes is not None:
                self._obs_routes[index].inc(len(group))
            tree = self.trees[index]
            for oid, point in group:
                tree.insert(oid, point)

    def bulk_load(self, entries: Sequence[LeafEntry]) -> None:
        """Partition the population, then STR-pack each member tree.

        Requires an empty forest.  With a speed partitioner and
        ``refit_on_bulk_load`` set, the bucket boundaries are first
        refitted to the speed quantiles of the population — the
        data-driven boundaries — so every member receives a comparable
        share.
        """
        if any(tree.leaf_entry_count for tree in self.trees):
            raise ValueError("bulk_load requires an empty forest")
        if (
            self.config.refit_on_bulk_load
            and entries
            and isinstance(self.partitioner, SpeedPartitioner)
        ):
            self.partitioner = SpeedPartitioner.fitted(
                [point.speed() for point, _ in entries], self.partitions
            )
            if self._durable_dir is not None:
                # Routing is a pure function of the partitioner, so the
                # refitted boundaries must be durable before any report
                # they routed is — rewrite the manifest first.
                self._write_manifest(self._durable_dir)
        for tree, group in zip(self.trees, self.partitioner.split(entries)):
            tree.bulk_load(group)

    # -- introspection ----------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the tallest member tree."""
        return max(tree.height for tree in self.trees)

    @property
    def page_count(self) -> int:
        """Total index size in disk pages, across all members."""
        return sum(tree.page_count for tree in self.trees)

    @property
    def leaf_entry_count(self) -> int:
        """Live leaf entries summed over all members."""
        return sum(tree.leaf_entry_count for tree in self.trees)

    def partition_page_counts(self) -> List[int]:
        """Per-member index sizes in disk pages."""
        return [tree.page_count for tree in self.trees]

    def partition_snapshots(self) -> List[IOSnapshot]:
        """Per-member I/O counters (the per-partition breakdown)."""
        return [tree.stats.snapshot() for tree in self.trees]

    def partition_audits(self) -> List[TreeAudit]:
        """Per-member structural audits (invariant checks)."""
        return [tree.audit() for tree in self.trees]

    def partition_labels(self) -> List[str]:
        """Human-readable label for each partition slot."""
        return [self.partitioner.label(i) for i in range(self.partitions)]

    def level_occupancy(self) -> "dict[int, tuple]":
        """Per-level ``{level: (nodes, entries)}`` summed over members."""
        merged: "dict[int, List[int]]" = {}
        for tree in self.trees:
            for level, (nodes, entries) in tree.level_occupancy().items():
                slot = merged.setdefault(level, [0, 0])
                slot[0] += nodes
                slot[1] += entries
        return {
            level: (nodes, entries)
            for level, (nodes, entries) in merged.items()
        }

    def audit(self) -> TreeAudit:
        """Forest-wide structural census (entry counts summed over members)."""
        audits = self.partition_audits()
        return TreeAudit(
            height=max(audit.height for audit in audits),
            nodes=sum(audit.nodes for audit in audits),
            leaf_entries=sum(audit.leaf_entries for audit in audits),
            expired_leaf_entries=sum(
                audit.expired_leaf_entries for audit in audits
            ),
            internal_entries=sum(audit.internal_entries for audit in audits),
            expired_internal_entries=sum(
                audit.expired_internal_entries for audit in audits
            ),
        )

    def check_invariants(self) -> None:
        """Raise AssertionError on structural violations in any member."""
        for tree in self.trees:
            tree.check_invariants()
