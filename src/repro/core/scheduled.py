"""Scheduled deletion of expiring objects (Section 3).

The alternative to lazy expiry: every insertion also schedules a
deletion at the object's expiration time in a disk-based B+-tree keyed
on ``(t_exp, object id)``.  When simulation time passes an event, the
object is deleted from the primary index at exactly its expiration
instant.  Objects that are updated or deleted before expiring must have
their pending events removed — the reason the queue must be a
dictionary-like structure rather than a simple heap.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

from ..btree.bptree import BPlusTree
from ..geometry.kinematics import MovingPoint
from ..geometry.queries import SpatioTemporalQuery
from .forest import PartitionedMovingObjectForest
from .tree import LeafEntry, MovingObjectTree


class ScheduledDeletionIndex:
    """A moving-object tree paired with a B+-tree deletion queue.

    Wraps either a TPR-tree ("TPR-tree with scheduled deletions") or an
    R^exp-tree ("R^exp-tree with scheduled deletions") — the two
    comparison architectures of Section 5.4 — or a velocity-partitioned
    forest of either, which exposes the same interface.

    The B+-tree's I/O is accounted separately (``queue.stats``); the
    paper's figures exclude it, and note that including it roughly
    doubles the update cost.
    """

    def __init__(
        self,
        tree: Union[MovingObjectTree, PartitionedMovingObjectForest],
        queue_page_size: Optional[int] = None,
        queue_buffer_pages: int = 50,
    ):
        self.tree = tree
        self.clock = tree.clock
        self.queue = BPlusTree(
            queue_page_size or tree.config.page_size, queue_buffer_pages
        )
        #: Number of scheduled deletions that removed a live entry.
        self.scheduled_deletions = 0
        #: Number of due events whose entry was already gone (lazily
        #: purged or deleted behind the queue's back); their search I/O
        #: is real but no deletion work was done, so Section 5.4's
        #: per-deletion accounting must not count them.
        self.missed_deletions = 0
        #: Tree I/O consumed by scheduled deletions (reads, writes).
        self._sched_hook = None

    # -- primary operations -----------------------------------------------------

    def insert(self, oid: int, point: MovingPoint) -> None:
        self.tree.insert(oid, point)
        if math.isfinite(point.t_exp):
            self.queue.insert((point.t_exp, oid), point)

    def bulk_load(self, entries: List[LeafEntry]) -> None:
        """Bulk-load the tree and schedule a deletion per finite report."""
        self.tree.bulk_load(entries)
        for point, oid in entries:
            if math.isfinite(point.t_exp):
                self.queue.insert((point.t_exp, oid), point)

    def delete(self, oid: int, point: MovingPoint) -> bool:
        removed = self.tree.delete(oid, point)
        if math.isfinite(point.t_exp):
            self.queue.delete((point.t_exp, oid))
        return removed

    def update(
        self, oid: int, old_point: MovingPoint, new_point: MovingPoint
    ) -> bool:
        existed = self.delete(oid, old_point)
        self.insert(oid, new_point)
        return existed

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        return self.tree.query(query)

    # -- time -----------------------------------------------------------------------

    def advance_time(self, t: float) -> None:
        """Advance the clock, firing scheduled deletions on the way.

        Each due event advances the clock to exactly the expiration
        instant first, so the entry is still live (and still inside its
        bounding rectangles) when the deletion searches for it.
        """
        while True:
            item = self.queue.min_item()
            if item is None or item[0][0] > t:
                break
            (t_exp, oid), point = item
            self.clock.advance_to(t_exp)
            self.queue.delete((t_exp, oid))
            before = self.tree.stats.snapshot()
            removed = self.tree.delete(oid, point)
            if removed:
                self.scheduled_deletions += 1
                if self._sched_hook is not None:
                    self._sched_hook(self.tree.stats.since(before))
            else:
                self.missed_deletions += 1
        self.clock.advance_to(t)

    def on_scheduled_deletion(self, hook) -> None:
        """Register a callback receiving the tree-I/O delta per event."""
        self._sched_hook = hook

    # -- introspection ---------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Primary index size in pages (the queue is reported separately)."""
        return self.tree.page_count

    @property
    def queue_page_count(self) -> int:
        return self.queue.page_count

    @property
    def pending_events(self) -> int:
        return len(self.queue)
