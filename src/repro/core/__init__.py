"""The paper's contribution: the R^exp-tree and its configuration space."""

from .clock import SimulationClock
from .config import TreeConfig
from .forest import ForestConfig, PartitionedMovingObjectForest
from .horizon import HorizonTracker
from .partition import (
    DirectionPartitioner,
    Partitioner,
    SpeedPartitioner,
    make_partitioner,
)
from .presets import (
    bounding_config,
    flavor_config,
    forest_config,
    rexp_config,
    tpr_config,
)
from .scheduled import ScheduledDeletionIndex
from .tree import MovingObjectTree, TreeAudit

__all__ = [
    "DirectionPartitioner",
    "ForestConfig",
    "HorizonTracker",
    "MovingObjectTree",
    "PartitionedMovingObjectForest",
    "Partitioner",
    "ScheduledDeletionIndex",
    "SimulationClock",
    "SpeedPartitioner",
    "TreeAudit",
    "TreeConfig",
    "bounding_config",
    "flavor_config",
    "forest_config",
    "make_partitioner",
    "rexp_config",
    "tpr_config",
]
