"""The paper's contribution: the R^exp-tree and its configuration space."""

from .clock import SimulationClock
from .config import TreeConfig
from .horizon import HorizonTracker
from .presets import bounding_config, flavor_config, rexp_config, tpr_config
from .scheduled import ScheduledDeletionIndex
from .tree import MovingObjectTree, TreeAudit

__all__ = [
    "HorizonTracker",
    "MovingObjectTree",
    "ScheduledDeletionIndex",
    "SimulationClock",
    "TreeAudit",
    "TreeConfig",
    "bounding_config",
    "flavor_config",
    "rexp_config",
    "tpr_config",
]
