"""Configuration of the moving-object trees.

One tree implementation covers the whole design space the paper studies;
the TPR-tree and every R^exp-tree flavour of Section 5 are points in
this configuration space (see :mod:`repro.core.presets`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..geometry.bounding import BoundingKind
from ..storage.layout import EntryLayout


@dataclass(frozen=True)
class TreeConfig:
    """Tunable parameters of :class:`repro.core.tree.MovingObjectTree`.

    Attributes:
        dims: dimensionality of the indexed space.
        page_size: disk page (node) size in bytes; the paper uses 4096.
        buffer_pages: LRU buffer-pool capacity; the paper uses 50.
        bounding: TPBR construction algorithm (Section 4.1).
        store_br_expiration: record expiration times inside internal
            entries.  Costs fan-out; the paper finds *not* recording them
            usually wins (Section 5.2).  When off, shrinking rectangles
            still expose their derived zero-extent time.
        store_leaf_expiration: record expiration times in leaf entries
            (always on for the R^exp-tree; off for the plain TPR-tree).
        choose_ignores_expiration: ChooseSubtree pretends all entries
            never expire (the "algs w/o exp.t." flavour, Section 4.2.2).
        use_overlap_in_choose: use the R*-tree overlap-enlargement
            heuristic at the leaf-parent level.  The R^exp-tree drops it
            (linear ChooseSubtree); the TPR-tree keeps it.
        lazy_expiry: purge expired entries whenever a node is modified
            and handle the resulting underfull nodes (Section 4.3).
        min_fill: minimum live-entry fill fraction of a node.
        reinsert_fraction: share of entries evicted by forced reinsert.
        horizon_alpha: W = alpha * UI (Section 4.2.3; the paper uses 0.5).
        default_ui: update-interval estimate used before the tracker has
            observed enough insertions.
        max_orphans: bound on the orphans list; when full, underfull
            handling is skipped (the paper's suggested safeguard).
        seed: randomness seed (near-optimal dimension ordering).
    """

    dims: int = 2
    page_size: int = 4096
    buffer_pages: int = 50
    bounding: BoundingKind = BoundingKind.NEAR_OPTIMAL
    store_br_expiration: bool = False
    store_leaf_expiration: bool = True
    choose_ignores_expiration: bool = False
    use_overlap_in_choose: bool = False
    lazy_expiry: bool = True
    min_fill: float = 0.4
    reinsert_fraction: float = 0.3
    horizon_alpha: float = 0.5
    default_ui: float = 60.0
    max_orphans: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.min_fill <= 0.5:
            raise ValueError(f"min_fill must be in (0, 0.5], got {self.min_fill}")
        if not 0.0 <= self.reinsert_fraction < 1.0:
            raise ValueError(
                f"reinsert_fraction must be in [0, 1), got {self.reinsert_fraction}"
            )
        if self.horizon_alpha < 0.0:
            raise ValueError(f"horizon_alpha must be >= 0, got {self.horizon_alpha}")
        if self.default_ui <= 0.0:
            raise ValueError(f"default_ui must be positive, got {self.default_ui}")

    def layout(self) -> EntryLayout:
        """The on-page entry layout implied by this configuration."""
        return EntryLayout(
            page_size=self.page_size,
            dims=self.dims,
            store_velocities=self.bounding is not BoundingKind.STATIC,
            store_br_expiration=self.store_br_expiration,
            store_leaf_expiration=self.store_leaf_expiration,
        )

    def with_(self, **changes) -> "TreeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
