"""The simulation clock.

The paper's workloads simulate index usage across a period of time; the
indexes, the horizon tracker and the workload runner all share one
monotone clock driven by workload timestamps.
"""

from __future__ import annotations


class SimulationClock:
    """A monotone simulated time source."""

    def __init__(self, start: float = 0.0):
        self._time = float(start)

    @property
    def time(self) -> float:
        return self._time

    def now(self) -> float:
        """Current simulation time (callable form for metric providers)."""
        return self._time

    def advance_to(self, t: float) -> None:
        """Move the clock forward; moving backwards is a no-op."""
        if t > self._time:
            self._time = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock({self._time})"
