"""Online maintenance of the time horizon H (Section 4.2.3).

The insertion heuristics integrate objectives over ``[now, now + H]``
with ``H = UI + W``: the average update interval plus the querying
window.  The R^exp-tree estimates UI by timing every batch of ``b``
insertions (``b`` = entries per node) against the current leaf count,
derives ``W = alpha * UI``, and scales UI per tree level for bounding-
rectangle recomputation (a level-l rectangle is recomputed whenever any
entry below it is updated, so its effective horizon is shorter).
"""

from __future__ import annotations

from typing import Callable, Dict


class HorizonTracker:
    """Tracks UI, per-level UI_l, W and H from the insertion stream.

    Args:
        now: the simulation clock.
        batch_size: insertions per UI re-estimation (the paper uses the
            node capacity ``b``).
        alpha: querying-window factor, W = alpha * UI.
        default_ui: UI estimate before the first batch completes.
    """

    def __init__(
        self,
        now: Callable[[], float],
        batch_size: int,
        alpha: float = 0.5,
        default_ui: float = 60.0,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._now = now
        self.batch_size = batch_size
        self.alpha = alpha
        self._ui = default_ui
        self._batch_start = now()
        self._batch_count = 0
        self._leaf_entries = 0
        self._node_counts: Dict[int, int] = {}

    # -- bookkeeping ----------------------------------------------------------

    def record_insertion(self) -> None:
        """Note one top-level insertion (drives the UI estimate)."""
        self._batch_count += 1
        if self._batch_count < self.batch_size:
            return
        elapsed = self._now() - self._batch_start
        if elapsed > 0.0 and self._leaf_entries > 0:
            # UI = (elapsed / b) * N: with N live entries updating once
            # per UI on average, insertions arrive every UI / N.
            self._ui = (elapsed / self.batch_size) * self._leaf_entries
        self._batch_start = self._now()
        self._batch_count = 0

    def leaf_entries_changed(self, delta: int) -> None:
        """Adjust the tracked number of leaf-level entries (N)."""
        self._leaf_entries = max(0, self._leaf_entries + delta)

    def node_count_changed(self, level: int, delta: int) -> None:
        """Adjust the number of nodes at a tree level.

        The number of entries at level l+1 equals the number of nodes at
        level l, which gives the per-level N_l of Section 4.2.3.
        """
        self._node_counts[level] = max(0, self._node_counts.get(level, 0) + delta)

    # -- estimates --------------------------------------------------------------

    @property
    def leaf_entries(self) -> int:
        return self._leaf_entries

    @property
    def update_interval(self) -> float:
        """UI — the estimated average time between updates of one object."""
        return self._ui

    @property
    def querying_window(self) -> float:
        """W = alpha * UI."""
        return self.alpha * self._ui

    def insertion_horizon(self) -> float:
        """H = UI + W, used by the insertion-decision integrals."""
        return self._ui + self.querying_window

    def bounding_horizon(self, node_level: int) -> float:
        """Horizon for a rectangle bounding a node at ``node_level``.

        Such a rectangle is a level-(node_level+1) entry; it is
        recomputed roughly every ``UI_l = UI * N_l / N`` time units
        (entries per node below it update independently), so its horizon
        is ``UI_l + W``.
        """
        entries_above = self._node_counts.get(node_level, 0)
        if self._leaf_entries > 0 and entries_above > 0:
            ui_l = self._ui * entries_above / self._leaf_entries
            ui_l = min(ui_l, self._ui)
        else:
            ui_l = self._ui
        return ui_l + self.querying_window
