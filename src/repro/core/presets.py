"""Named tree configurations matching the paper's experiment series.

Each figure in Section 5 compares a handful of index flavours; these
factory functions pin down the exact configuration of each.
"""

from __future__ import annotations

from ..geometry.bounding import BoundingKind
from .config import TreeConfig
from .forest import ForestConfig


def rexp_config(**overrides) -> TreeConfig:
    """The default R^exp-tree of Sections 5.3-5.4.

    Near-optimal TPBRs, no stored TPBR expiration times, normal
    ChooseSubtree (without the overlap-enlargement heuristic), lazy
    purging of expired entries.
    """
    base = TreeConfig(
        bounding=BoundingKind.NEAR_OPTIMAL,
        store_br_expiration=False,
        choose_ignores_expiration=False,
        use_overlap_in_choose=False,
        lazy_expiry=True,
    )
    return base.with_(**overrides)


def tpr_config(**overrides) -> TreeConfig:
    """The TPR-tree baseline: non-expiring information.

    Conservative bounding rectangles, expiration times neither stored in
    leaves nor in internal entries (objects are indexed as infinite
    lines, Section 3), the R*-tree overlap heuristic in ChooseSubtree,
    and no lazy purging.
    """
    base = TreeConfig(
        bounding=BoundingKind.CONSERVATIVE,
        store_br_expiration=False,
        store_leaf_expiration=False,
        choose_ignores_expiration=False,
        use_overlap_in_choose=True,
        lazy_expiry=False,
    )
    return base.with_(**overrides)


def forest_config(
    partitions: int = 4, partitioner: str = "speed", **overrides
) -> ForestConfig:
    """A velocity-partitioned forest of default R^exp-trees.

    Keyword overrides that name :class:`ForestConfig` fields (e.g.
    ``split_buffer``, ``max_speed``) configure the forest; all others
    are applied to the member-tree configuration, exactly as the other
    presets apply them to a single tree.
    """
    forest_fields = {
        key: overrides.pop(key)
        for key in ("max_speed", "slow_speed", "split_buffer",
                    "refit_on_bulk_load")
        if key in overrides
    }
    return ForestConfig(
        tree=rexp_config(**overrides),
        partitions=partitions,
        partitioner=partitioner,
        **forest_fields,
    )


def flavor_config(
    brs_with_expiration: bool, algs_with_expiration: bool, **overrides
) -> TreeConfig:
    """The four flavours of Figures 9-10.

    Args:
        brs_with_expiration: record expiration times in internal TPBRs.
        algs_with_expiration: ChooseSubtree uses expiration times (the
            "regular" algorithm); when False it treats every entry as
            never expiring.
    """
    base = rexp_config(
        store_br_expiration=brs_with_expiration,
        choose_ignores_expiration=not algs_with_expiration,
    )
    return base.with_(**overrides)


def bounding_config(
    kind: BoundingKind, algs_with_expiration: bool = True, **overrides
) -> TreeConfig:
    """The bounding-rectangle comparison flavours of Figures 11-12."""
    base = rexp_config(
        bounding=kind,
        choose_ignores_expiration=not algs_with_expiration,
    )
    return base.with_(**overrides)
