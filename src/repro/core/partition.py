"""Velocity partitioning of a moving-object population.

The R^exp-tree's TPBRs grow with the *extreme* member velocities
(Section 4.1): the bounding speeds of a rectangle are the minimum and
maximum member speeds per dimension, so a single fast object inflates
the sweep of its whole subtree for the entire horizon.  Speed
partitioning ("Speed Partitioning for Indexing Moving Objects", Xu et
al.) and velocity partitioning ("Boosting Moving Object Indexing
through Velocity Partitioning", Nguyen et al.) both observe that
splitting the population into velocity classes — each indexed in its
own tree — shrinks the dead space dramatically, because each tree's
rectangles then sweep at the (much smaller) velocity spread *within*
a class.

This module provides the pluggable partition functions consumed by
:class:`repro.core.forest.PartitionedMovingObjectForest`:

* :class:`SpeedPartitioner` — buckets by speed magnitude, with either
  equal-width boundaries anchored at a maximum speed or data-driven
  boundaries fitted to the observed speed distribution (quantiles), so
  every bucket receives a comparable share of the population;
* :class:`DirectionPartitioner` — buckets by velocity direction
  (equal angular sectors in the first two dimensions), with a dedicated
  bucket for near-stationary objects whose direction is noise;
* :class:`GridPartitioner` — buckets by the *reference position* on a
  uniform spatial grid, the MOIST-style sharding function: unlike the
  velocity partitioners it localizes each bucket in space, so a query
  need only be scattered to the buckets whose cell it can reach
  (:meth:`Partitioner.query_partitions`).

A partitioner is *pure*: the bucket of a report depends only on the
report itself, never on mutable state.  Deletions therefore route to
the same member tree the original insertion chose, with no auxiliary
object-to-partition table.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple

from ..geometry.kinematics import MovingPoint

LeafEntry = Tuple[MovingPoint, int]


class Partitioner(ABC):
    """Maps each report to the member tree that should index it."""

    @property
    @abstractmethod
    def partitions(self) -> int:
        """Number of buckets (member trees)."""

    @abstractmethod
    def partition_of(self, point: MovingPoint) -> int:
        """Bucket index of a report, in ``range(self.partitions)``."""

    @abstractmethod
    def label(self, index: int) -> str:
        """Human-readable description of one bucket."""

    def split(self, entries: Iterable[LeafEntry]) -> List[List[LeafEntry]]:
        """Bucket leaf entries for bulk loading, preserving order."""
        groups: List[List[LeafEntry]] = [[] for _ in range(self.partitions)]
        for point, oid in entries:
            groups[self.partition_of(point)].append((point, oid))
        return groups

    def query_partitions(self, region) -> Tuple[int, ...]:
        """Buckets a query must be scattered to (sound over-approximation).

        The default is every bucket: velocity partitions say nothing
        about where their members are, so no member tree can be ruled
        out.  Spatially localized partitioners override this (see
        :meth:`GridPartitioner.query_partitions`).
        """
        return tuple(range(self.partitions))


class SpeedPartitioner(Partitioner):
    """Speed-magnitude buckets separated by ascending boundary speeds.

    ``boundaries`` holds the k-1 inner boundaries of k buckets; a report
    with speed s lands in the first bucket whose boundary exceeds s
    (boundaries themselves belong to the faster bucket's left edge, i.e.
    bucket i covers ``[boundaries[i-1], boundaries[i])``).
    """

    def __init__(self, boundaries: Sequence[float]):
        bounds = tuple(float(b) for b in boundaries)
        for i, b in enumerate(bounds):
            if b < 0.0:
                raise ValueError(f"negative speed boundary {b}")
            if i and b < bounds[i - 1]:
                raise ValueError(
                    f"speed boundaries must be ascending, got {bounds}"
                )
        self.boundaries = bounds

    @classmethod
    def uniform(cls, partitions: int, max_speed: float) -> "SpeedPartitioner":
        """Equal-width buckets over ``[0, max_speed]``.

        The last bucket is open-ended, so speeds above ``max_speed``
        still route (to the fastest class).
        """
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        if max_speed <= 0.0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        width = max_speed / partitions
        return cls([width * i for i in range(1, partitions)])

    @classmethod
    def fitted(
        cls, speeds: Sequence[float], partitions: int
    ) -> "SpeedPartitioner":
        """Data-driven boundaries: speed quantiles of an observed sample.

        Splitting at the i/k quantiles balances the population across
        buckets regardless of the speed distribution's shape — the Xu et
        al. recipe.  Duplicate quantiles (heavily repeated speeds) are
        kept, which simply leaves the corresponding bucket empty.
        """
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        if not speeds:
            raise ValueError("cannot fit speed boundaries to an empty sample")
        ordered = sorted(speeds)
        n = len(ordered)
        return cls(
            [
                ordered[min(n - 1, (i * n) // partitions)]
                for i in range(1, partitions)
            ]
        )

    @property
    def partitions(self) -> int:
        return len(self.boundaries) + 1

    def partition_of(self, point: MovingPoint) -> int:
        return bisect_right(self.boundaries, point.speed())

    def label(self, index: int) -> str:
        lo = 0.0 if index == 0 else self.boundaries[index - 1]
        if index == len(self.boundaries):
            return f"speed >= {lo:g}"
        return f"speed [{lo:g}, {self.boundaries[index]:g})"


class DirectionPartitioner(Partitioner):
    """Velocity-direction buckets: equal angular sectors plus a slow bucket.

    Bucket 0 collects reports whose speed does not exceed ``slow_speed``
    (near-stationary objects have no meaningful direction; with the
    default threshold 0 only exactly-stationary objects land there).
    The remaining ``sectors`` buckets divide the full angle of the
    velocity's first two components into equal sectors starting at the
    positive x-axis.
    """

    def __init__(self, sectors: int, slow_speed: float = 0.0):
        if sectors < 1:
            raise ValueError(f"need at least one sector, got {sectors}")
        if slow_speed < 0.0:
            raise ValueError(f"slow_speed must be >= 0, got {slow_speed}")
        self.sectors = sectors
        self.slow_speed = slow_speed

    @property
    def partitions(self) -> int:
        return self.sectors + 1

    def partition_of(self, point: MovingPoint) -> int:
        if point.speed() <= self.slow_speed:
            return 0
        vx = point.vel[0]
        vy = point.vel[1] if point.dims > 1 else 0.0
        angle = math.atan2(vy, vx) % (2.0 * math.pi)
        sector = int(self.sectors * angle / (2.0 * math.pi))
        return 1 + min(sector, self.sectors - 1)

    def label(self, index: int) -> str:
        if index == 0:
            return f"speed <= {self.slow_speed:g}"
        width = 360.0 / self.sectors
        lo = (index - 1) * width
        return f"direction [{lo:g}\N{DEGREE SIGN}, {lo + width:g}\N{DEGREE SIGN})"


class GridPartitioner(Partitioner):
    """Spatial buckets: a ``cells_x`` x ``cells_y`` grid over the space.

    A report routes by its *reference position* (``point.pos``, the
    position at ``t_ref``), clamped into the grid so out-of-space
    positions still map to the nearest edge cell — the partition
    function stays total.  Only the first two dimensions participate;
    higher-dimensional points route by their (x, y) projection.

    ``reach`` bounds how far a live entry's current position can drift
    from its reference position: with maximum speed ``vmax`` and
    expiration horizon ``ExpT`` every live report satisfies
    ``|x(t) - pos| <= vmax * ExpT``, so ``reach = vmax * ExpT`` is
    sound.  With a finite reach, :meth:`query_partitions` scatters a
    query only to the cells whose rectangle, expanded by the reach,
    intersects the query's bounding rectangle.  ``reach=None`` (the
    default) disables pruning — every query scatters everywhere.

    Cell boundaries are uniform by default; :meth:`fitted` builds
    data-driven boundaries instead (x-quantile columns, conditional
    y-quantile rows per column) so skewed spatial distributions still
    shard into equal-mass cells.
    """

    def __init__(
        self,
        cells_x: int,
        cells_y: int,
        space: float = 1000.0,
        reach: "float | None" = None,
        x_cuts: "Sequence[float] | None" = None,
        y_cuts: "Sequence[Sequence[float]] | None" = None,
    ):
        if cells_x < 1 or cells_y < 1:
            raise ValueError(
                f"grid needs at least one cell per axis, got "
                f"{cells_x}x{cells_y}"
            )
        if space <= 0.0:
            raise ValueError(f"space extent must be positive, got {space}")
        if reach is not None and reach < 0.0:
            raise ValueError(f"reach must be >= 0, got {reach}")
        if (x_cuts is None) != (y_cuts is None):
            raise ValueError("x_cuts and y_cuts must be given together")
        if x_cuts is not None:
            x_cuts = tuple(float(c) for c in x_cuts)
            if len(x_cuts) != cells_x - 1:
                raise ValueError(
                    f"need {cells_x - 1} column cuts, got {len(x_cuts)}"
                )
            if list(x_cuts) != sorted(x_cuts):
                raise ValueError(f"column cuts must be sorted: {x_cuts}")
            y_cuts = tuple(
                tuple(float(c) for c in column) for column in y_cuts
            )
            if len(y_cuts) != cells_x:
                raise ValueError(
                    f"need row cuts for {cells_x} columns, got {len(y_cuts)}"
                )
            for column in y_cuts:
                if len(column) != cells_y - 1:
                    raise ValueError(
                        f"need {cells_y - 1} row cuts per column, "
                        f"got {len(column)}"
                    )
                if list(column) != sorted(column):
                    raise ValueError(f"row cuts must be sorted: {column}")
        self.cells_x = cells_x
        self.cells_y = cells_y
        self.space = float(space)
        self.reach = None if reach is None else float(reach)
        self.x_cuts = x_cuts
        self.y_cuts = y_cuts

    @classmethod
    def for_partitions(
        cls,
        partitions: int,
        space: float = 1000.0,
        reach: "float | None" = None,
    ) -> "GridPartitioner":
        """A near-square grid with exactly ``partitions`` cells.

        Uses the factorization ``a * b = partitions`` with ``a`` the
        largest divisor not exceeding ``sqrt(partitions)``, so 8 becomes
        a 4x2 grid and a prime count degenerates to a 1D strip.
        """
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        a = int(math.isqrt(partitions))
        while partitions % a:
            a -= 1
        return cls(partitions // a, a, space=space, reach=reach)

    @classmethod
    def fitted(
        cls,
        sample: Sequence[Sequence[float]],
        cells_x: int,
        cells_y: int,
        space: float = 1000.0,
        reach: "float | None" = None,
    ) -> "GridPartitioner":
        """A grid whose cells hold equal shares of a position sample.

        Column cuts are x-quantiles of the sample; each column's row
        cuts are conditional y-quantiles of the positions landing in
        that column, so the cells partition the sample into (nearly)
        equal-mass buckets even when the spatial distribution is
        skewed or x/y-correlated — the analogue of
        :meth:`SpeedPartitioner.fitted` for spatial sharding.
        """
        if not sample:
            raise ValueError("fitted grid needs a non-empty sample")

        def quantiles(values: List[float], parts: int) -> "tuple[float, ...]":
            ordered = sorted(values)
            return tuple(
                ordered[(i * len(ordered)) // parts]
                for i in range(1, parts)
            )

        x_cuts = quantiles([pos[0] for pos in sample], cells_x)
        columns: List[List[float]] = [[] for _ in range(cells_x)]
        all_y = []
        for pos in sample:
            y = pos[1] if len(pos) > 1 else 0.0
            columns[bisect_right(x_cuts, pos[0])].append(y)
            all_y.append(y)
        y_cuts = tuple(
            quantiles(column or all_y, cells_y) for column in columns
        )
        return cls(
            cells_x, cells_y, space=space, reach=reach,
            x_cuts=x_cuts, y_cuts=y_cuts,
        )

    @property
    def partitions(self) -> int:
        return self.cells_x * self.cells_y

    def _cell(self, coordinate: float, cells: int) -> int:
        if not coordinate > 0.0:  # <= 0, and NaN routes to cell 0
            return 0
        if coordinate >= self.space:  # out of space (and +inf): edge cell
            return cells - 1
        return min(int(coordinate * cells / self.space), cells - 1)

    def _column_of(self, x: float) -> int:
        if self.x_cuts is None:
            return self._cell(x, self.cells_x)
        # NaN compares False everywhere, so bisect sends it to the last
        # column — still total, still deterministic.
        return bisect_right(self.x_cuts, x)

    def _row_of(self, column: int, y: float) -> int:
        if self.y_cuts is None:
            return self._cell(y, self.cells_y)
        return bisect_right(self.y_cuts[column], y)

    def partition_of(self, point: MovingPoint) -> int:
        cx = self._column_of(point.pos[0])
        cy = (
            self._row_of(cx, point.pos[1])
            if point.dims > 1
            else 0
        )
        return cy * self.cells_x + cx

    def label(self, index: int) -> str:
        cy, cx = divmod(index, self.cells_x)
        if self.x_cuts is not None:
            x_lo = self.x_cuts[cx - 1] if cx > 0 else -math.inf
            x_hi = self.x_cuts[cx] if cx < self.cells_x - 1 else math.inf
            y_lo = self.y_cuts[cx][cy - 1] if cy > 0 else -math.inf
            y_hi = (
                self.y_cuts[cx][cy] if cy < self.cells_y - 1 else math.inf
            )
            return (
                f"cell ({cx},{cy}) [{x_lo:g}, {x_hi:g})x"
                f"[{y_lo:g}, {y_hi:g}) (fitted)"
            )
        wx = self.space / self.cells_x
        wy = self.space / self.cells_y
        return (
            f"cell ({cx},{cy}) [{cx * wx:g}, {(cx + 1) * wx:g})x"
            f"[{cy * wy:g}, {(cy + 1) * wy:g})"
        )

    def query_partitions(self, region) -> Tuple[int, ...]:
        """Cells whose reach-expanded rectangle meets the query's bounds.

        The query's bounding rectangle per dimension is the min/max of
        its linear-in-time bounds at the interval endpoints.  Soundness
        requires every live entry to satisfy the ``reach`` drift bound;
        see the class docstring.
        """
        if self.reach is None:
            return tuple(range(self.partitions))
        bounds = []
        for dim in range(min(2, region.dims)):
            lo = min(region.lower_at(dim, region.t1),
                     region.lower_at(dim, region.t2))
            hi = max(region.upper_at(dim, region.t1),
                     region.upper_at(dim, region.t2))
            bounds.append((lo - self.reach, hi + self.reach))
        (x_lo, x_hi) = bounds[0]
        (y_lo, y_hi) = bounds[1] if len(bounds) > 1 else (0.0, 0.0)
        cx_lo = self._column_of(x_lo)
        cx_hi = self._column_of(x_hi)
        cells = []
        for cx in range(cx_lo, cx_hi + 1):
            # Fitted grids cut rows per column, so the row range is
            # column-specific; bisect monotonicity keeps it sound.
            if region.dims > 1:
                cy_lo = self._row_of(cx, y_lo)
                cy_hi = self._row_of(cx, y_hi)
            else:
                cy_lo, cy_hi = 0, self.cells_y - 1
            cells.extend(
                cy * self.cells_x + cx for cy in range(cy_lo, cy_hi + 1)
            )
        return tuple(cells)


def make_partitioner(
    kind: str,
    partitions: int,
    max_speed: float = 3.0,
    slow_speed: float = 0.25,
    sample: Sequence[float] = (),
    space: float = 1000.0,
    reach: "float | None" = None,
) -> Partitioner:
    """Construct a partitioner by name: ``"speed"``, ``"direction"`` or ``"grid"``.

    A speed partitioner fits data-driven boundaries when a ``sample`` of
    observed speeds is given, and falls back to equal-width buckets over
    ``[0, max_speed]`` otherwise.  A direction partitioner spends one of
    its ``partitions`` buckets on near-stationary objects.  A grid
    partitioner tiles ``[0, space]^2`` with a near-square grid of
    ``partitions`` cells and prunes query scatter when ``reach`` is
    given (see :class:`GridPartitioner`).
    """
    if kind == "speed":
        if sample:
            return SpeedPartitioner.fitted(sample, partitions)
        return SpeedPartitioner.uniform(partitions, max_speed)
    if kind == "direction":
        if partitions < 2:
            raise ValueError(
                "a direction partitioner needs >= 2 partitions "
                "(one is reserved for near-stationary objects)"
            )
        return DirectionPartitioner(partitions - 1, slow_speed)
    if kind == "grid":
        return GridPartitioner.for_partitions(
            partitions, space=space, reach=reach
        )
    raise ValueError(f"unknown partitioner kind {kind!r}")
