"""Velocity partitioning of a moving-object population.

The R^exp-tree's TPBRs grow with the *extreme* member velocities
(Section 4.1): the bounding speeds of a rectangle are the minimum and
maximum member speeds per dimension, so a single fast object inflates
the sweep of its whole subtree for the entire horizon.  Speed
partitioning ("Speed Partitioning for Indexing Moving Objects", Xu et
al.) and velocity partitioning ("Boosting Moving Object Indexing
through Velocity Partitioning", Nguyen et al.) both observe that
splitting the population into velocity classes — each indexed in its
own tree — shrinks the dead space dramatically, because each tree's
rectangles then sweep at the (much smaller) velocity spread *within*
a class.

This module provides the pluggable partition functions consumed by
:class:`repro.core.forest.PartitionedMovingObjectForest`:

* :class:`SpeedPartitioner` — buckets by speed magnitude, with either
  equal-width boundaries anchored at a maximum speed or data-driven
  boundaries fitted to the observed speed distribution (quantiles), so
  every bucket receives a comparable share of the population;
* :class:`DirectionPartitioner` — buckets by velocity direction
  (equal angular sectors in the first two dimensions), with a dedicated
  bucket for near-stationary objects whose direction is noise.

A partitioner is *pure*: the bucket of a report depends only on the
report itself, never on mutable state.  Deletions therefore route to
the same member tree the original insertion chose, with no auxiliary
object-to-partition table.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple

from ..geometry.kinematics import MovingPoint

LeafEntry = Tuple[MovingPoint, int]


class Partitioner(ABC):
    """Maps each report to the member tree that should index it."""

    @property
    @abstractmethod
    def partitions(self) -> int:
        """Number of buckets (member trees)."""

    @abstractmethod
    def partition_of(self, point: MovingPoint) -> int:
        """Bucket index of a report, in ``range(self.partitions)``."""

    @abstractmethod
    def label(self, index: int) -> str:
        """Human-readable description of one bucket."""

    def split(self, entries: Iterable[LeafEntry]) -> List[List[LeafEntry]]:
        """Bucket leaf entries for bulk loading, preserving order."""
        groups: List[List[LeafEntry]] = [[] for _ in range(self.partitions)]
        for point, oid in entries:
            groups[self.partition_of(point)].append((point, oid))
        return groups


class SpeedPartitioner(Partitioner):
    """Speed-magnitude buckets separated by ascending boundary speeds.

    ``boundaries`` holds the k-1 inner boundaries of k buckets; a report
    with speed s lands in the first bucket whose boundary exceeds s
    (boundaries themselves belong to the faster bucket's left edge, i.e.
    bucket i covers ``[boundaries[i-1], boundaries[i])``).
    """

    def __init__(self, boundaries: Sequence[float]):
        bounds = tuple(float(b) for b in boundaries)
        for i, b in enumerate(bounds):
            if b < 0.0:
                raise ValueError(f"negative speed boundary {b}")
            if i and b < bounds[i - 1]:
                raise ValueError(
                    f"speed boundaries must be ascending, got {bounds}"
                )
        self.boundaries = bounds

    @classmethod
    def uniform(cls, partitions: int, max_speed: float) -> "SpeedPartitioner":
        """Equal-width buckets over ``[0, max_speed]``.

        The last bucket is open-ended, so speeds above ``max_speed``
        still route (to the fastest class).
        """
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        if max_speed <= 0.0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        width = max_speed / partitions
        return cls([width * i for i in range(1, partitions)])

    @classmethod
    def fitted(
        cls, speeds: Sequence[float], partitions: int
    ) -> "SpeedPartitioner":
        """Data-driven boundaries: speed quantiles of an observed sample.

        Splitting at the i/k quantiles balances the population across
        buckets regardless of the speed distribution's shape — the Xu et
        al. recipe.  Duplicate quantiles (heavily repeated speeds) are
        kept, which simply leaves the corresponding bucket empty.
        """
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        if not speeds:
            raise ValueError("cannot fit speed boundaries to an empty sample")
        ordered = sorted(speeds)
        n = len(ordered)
        return cls(
            [
                ordered[min(n - 1, (i * n) // partitions)]
                for i in range(1, partitions)
            ]
        )

    @property
    def partitions(self) -> int:
        return len(self.boundaries) + 1

    def partition_of(self, point: MovingPoint) -> int:
        return bisect_right(self.boundaries, point.speed())

    def label(self, index: int) -> str:
        lo = 0.0 if index == 0 else self.boundaries[index - 1]
        if index == len(self.boundaries):
            return f"speed >= {lo:g}"
        return f"speed [{lo:g}, {self.boundaries[index]:g})"


class DirectionPartitioner(Partitioner):
    """Velocity-direction buckets: equal angular sectors plus a slow bucket.

    Bucket 0 collects reports whose speed does not exceed ``slow_speed``
    (near-stationary objects have no meaningful direction; with the
    default threshold 0 only exactly-stationary objects land there).
    The remaining ``sectors`` buckets divide the full angle of the
    velocity's first two components into equal sectors starting at the
    positive x-axis.
    """

    def __init__(self, sectors: int, slow_speed: float = 0.0):
        if sectors < 1:
            raise ValueError(f"need at least one sector, got {sectors}")
        if slow_speed < 0.0:
            raise ValueError(f"slow_speed must be >= 0, got {slow_speed}")
        self.sectors = sectors
        self.slow_speed = slow_speed

    @property
    def partitions(self) -> int:
        return self.sectors + 1

    def partition_of(self, point: MovingPoint) -> int:
        if point.speed() <= self.slow_speed:
            return 0
        vx = point.vel[0]
        vy = point.vel[1] if point.dims > 1 else 0.0
        angle = math.atan2(vy, vx) % (2.0 * math.pi)
        sector = int(self.sectors * angle / (2.0 * math.pi))
        return 1 + min(sector, self.sectors - 1)

    def label(self, index: int) -> str:
        if index == 0:
            return f"speed <= {self.slow_speed:g}"
        width = 360.0 / self.sectors
        lo = (index - 1) * width
        return f"direction [{lo:g}\N{DEGREE SIGN}, {lo + width:g}\N{DEGREE SIGN})"


def make_partitioner(
    kind: str,
    partitions: int,
    max_speed: float = 3.0,
    slow_speed: float = 0.25,
    sample: Sequence[float] = (),
) -> Partitioner:
    """Construct a partitioner by name (``"speed"`` or ``"direction"``).

    A speed partitioner fits data-driven boundaries when a ``sample`` of
    observed speeds is given, and falls back to equal-width buckets over
    ``[0, max_speed]`` otherwise.  A direction partitioner spends one of
    its ``partitions`` buckets on near-stationary objects.
    """
    if kind == "speed":
        if sample:
            return SpeedPartitioner.fitted(sample, partitions)
        return SpeedPartitioner.uniform(partitions, max_speed)
    if kind == "direction":
        if partitions < 2:
            raise ValueError(
                "a direction partitioner needs >= 2 partitions "
                "(one is reserved for near-stationary objects)"
            )
        return DirectionPartitioner(partitions - 1, slow_speed)
    raise ValueError(f"unknown partitioner kind {kind!r}")
