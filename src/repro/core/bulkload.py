"""STR bulk loading of the moving-object tree (Sort-Tile-Recurse).

Building a tree of n objects by repeated insertion runs the full
insertion machinery n times — ChooseSubtree descents, time-integral
scoring, splits and forced reinserts.  For the *initial* population of
an experiment none of that pays off: the whole data set is known up
front.  This module packs it directly.

The packing is the classic Sort-Tile-Recursive algorithm (Leutenegger,
Lopez and Edgington) adapted to moving points:

* the per-dimension sort key is the position *projected to the
  insertion horizon* ``now + H`` — objects travelling together end up
  in the same leaf, which keeps the time-parameterized bounding
  rectangles tight over the whole horizon, not only at load time
  (velocity-aware);
* ties break on expiration time, so entries that expire together are
  co-located and lazy purging drains whole leaves at once
  (expiration-aware).

Upper levels are built by re-tiling the freshly bounded child
rectangles (by their horizon-projected centers) until a single node
remains, which becomes the root.  Bounds are computed by the tree's
configured algorithm, so a bulk-loaded tree satisfies exactly the same
bounding invariants as an insert-built one — only the partitioning
differs.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from ..geometry.kinematics import MovingPoint
from ..geometry.tpbr import TPBR
from ..rstar.node import Node

#: Per-item sort key: one coordinate per dimension, then the expiration
#: time as tie-break.
SortKey = Tuple[float, ...]


def leaf_key(point: MovingPoint, t_target: float) -> SortKey:
    """Velocity- and expiration-aware sort key of a leaf entry."""
    return tuple(point.position_at(t_target)) + (point.t_exp,)


def branch_key(br: TPBR, t_target: float) -> SortKey:
    """Sort key of an internal entry: the projected bound center."""
    return tuple(br.center_at(t_target)) + (br.t_exp,)


def _tile(
    indices: Iterable[int],
    keys: Sequence[SortKey],
    dim: int,
    dims: int,
    capacity: int,
    out: List[List[int]],
) -> None:
    order = sorted(indices, key=lambda i: (keys[i][dim], keys[i][-1], i))
    if dim == dims - 1:
        out.extend(
            order[s : s + capacity] for s in range(0, len(order), capacity)
        )
        return
    pages = math.ceil(len(order) / capacity)
    slabs = max(1, math.ceil(pages ** (1.0 / (dims - dim))))
    slab_size = math.ceil(len(order) / slabs)
    for s in range(0, len(order), slab_size):
        _tile(order[s : s + slab_size], keys, dim + 1, dims, capacity, out)


def str_runs(
    items: Sequence,
    keys: Sequence[SortKey],
    capacity: int,
    min_entries: int,
) -> List[List]:
    """Partition ``items`` into sibling runs of at most ``capacity``.

    ``ceil(n / capacity)`` pages are tiled into ``ceil(P**(1/d))`` slabs
    per dimension; within the last dimension items are chunked into full
    runs.  A rebalancing pass then tops up runs that fall below
    ``min_entries`` from their left neighbour (merging the two when both
    are small), so every non-root node satisfies the fill invariant.
    """
    if not items:
        return []
    runs_idx: List[List[int]] = []
    _tile(
        range(len(items)), keys, 0, len(keys[0]) - 1, capacity, runs_idx
    )
    runs = [[items[i] for i in run] for run in runs_idx]
    # Stealing never leaves the donor short and merging removes a run,
    # so the pass monotonically reduces (runs, deficits) and converges.
    changed = True
    while changed:
        runs = [run for run in runs if run]
        changed = False
        for j in range(1, len(runs)):
            short = min_entries - len(runs[j])
            if short <= 0:
                continue
            prev = runs[j - 1]
            take = min(short, max(0, len(prev) - min_entries))
            if take:
                runs[j] = prev[-take:] + runs[j]
                runs[j - 1] = prev[:-take]
                changed = True
            if (
                len(runs[j]) < min_entries
                and len(runs[j - 1]) + len(runs[j]) <= capacity
            ):
                runs[j - 1] = runs[j - 1] + runs[j]
                runs[j] = []
                changed = True
    return runs


def bulk_load_tree(tree, entries: Sequence[Tuple[MovingPoint, int]]) -> None:
    """Pack prepared leaf entries into ``tree`` (validated to be empty).

    Every page is written exactly once and nothing is read back: bounds
    are computed from the in-memory nodes while they are packed.  The
    single top node is installed in the tree's pinned root page.
    """
    t_target = tree.now + tree.horizon.insertion_horizon()
    min_fill = tree.config.min_fill
    keys = [leaf_key(point, t_target) for point, _ in entries]
    runs = str_runs(
        list(entries),
        keys,
        tree.leaf_capacity,
        max(2, int(tree.leaf_capacity * min_fill)),
    )
    nodes = [Node(0, run) for run in runs]
    level = 0
    while len(nodes) > 1:
        pids = tree.disk.allocate_many(len(nodes))
        children: List[Tuple[TPBR, int]] = []
        for pid, node in zip(pids, nodes):
            tree.buffer.put_new(pid, node)
            tree.horizon.node_count_changed(node.level, +1)
            children.append((tree._bound_node(node), pid))
        level += 1
        keys = [branch_key(br, t_target) for br, _ in children]
        runs = str_runs(
            children,
            keys,
            tree.internal_capacity,
            max(2, int(tree.internal_capacity * min_fill)),
        )
        nodes = [Node(level, run) for run in runs]
    tree._set_root(nodes[0])
    tree.horizon.leaf_entries_changed(len(entries))
    tree.buffer.flush_all()
