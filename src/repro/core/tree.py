"""The R^exp-tree (and, by configuration, the TPR-tree).

A balanced R-tree over the current and anticipated future positions of
moving point objects.  Leaf entries are (moving point, object id) pairs;
internal entries are (TPBR, child page) pairs.  The tree follows the
paper's Section 4:

* insertion heuristics are the R*-tree's with time-integral objectives
  (Equation 1) and a self-tuned horizon H = UI + W;
* bounding rectangles are recomputed by the configured algorithm
  whenever a node is modified;
* expired entries are purged *lazily*: whenever a modified node is about
  to be written, its expired entries are dropped (whole subtrees are
  deallocated for expired internal entries), and the insertion/deletion
  algorithms handle nodes that thereby become underfull through a shared
  CondenseTree/PropagateUp pass with an orphans list (Figure 8).
"""

from __future__ import annotations

import heapq
import math
import os
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry import kernels as _kernels
from ..geometry.bounding import compute_tpbr
from ..geometry.kernels import (
    batch_region_intersects,
    batch_region_matches,
    multi_query_hits,
    pack_points,
    pack_queries,
    pack_tpbrs,
    select_queries,
)
from ..geometry.intersection import region_intersects_tpbr, region_matches_point
from ..geometry.kinematics import NEVER, MovingPoint
from ..geometry.knn import (
    batch_point_distances_sq,
    batch_tpbr_min_distances_sq,
    validate_knn_args,
)
from ..geometry.queries import SpatioTemporalQuery
from ..geometry.tpbr import TPBR
from ..obs.metrics import NULL_REGISTRY
from ..rstar.heuristics import choose_child, choose_split, reinsert_candidates
from ..rstar.metrics import KineticMetrics
from ..rstar.node import Node
from ..storage.buffer import BufferPool
from ..storage.disk import DiskManager, PageId
from ..storage.faults import TransientIOError
from ..storage.pagefile import PAGES_FILENAME, FilePageStore, PersistReport
from ..storage.stats import IOStats
from .bulkload import bulk_load_tree
from .clock import SimulationClock
from .config import TreeConfig
from .horizon import HorizonTracker

#: Tolerance for the point-in-rectangle pruning used by deletions.
_DELETE_EPS = 1e-6

LeafEntry = Tuple[MovingPoint, int]
Orphan = Tuple[Tuple[object, object], int]  # ((region, value), level)


@dataclass(frozen=True)
class TreeAudit:
    """Structural census produced by :meth:`MovingObjectTree.audit`."""

    height: int
    nodes: int
    leaf_entries: int
    expired_leaf_entries: int
    internal_entries: int
    expired_internal_entries: int

    @property
    def expired_fraction(self) -> float:
        """Fraction of leaf entries whose expiration time has passed."""
        if self.leaf_entries == 0:
            return 0.0
        return self.expired_leaf_entries / self.leaf_entries


class TreeSnapshot:
    """An isolated, read-only copy of a tree's committed page set.

    Produced by :meth:`MovingObjectTree.snapshot` for degraded serving:
    answering queries while the live store is failing must not touch
    storage at all, so the snapshot holds independent full-precision
    copies of every reachable node (entry tuples are immutable; only
    the per-node entry lists are copied).  Queries are answered by a
    brute-force scan of the leaf entries through the same
    expiration-clipping predicate the tree uses, so a snapshot answer
    equals the answer the tree itself would have given at snapshot
    time — TR-82's bounded-staleness argument then says a *later* query
    served from it can only over-report objects whose expiration
    windows still cover the query interval.
    """

    __slots__ = ("root_pid", "pages", "taken_at")

    def __init__(self, root_pid: PageId, pages: dict, taken_at: float):
        self.root_pid = root_pid
        self.pages = pages
        self.taken_at = taken_at

    def leaf_entries(self):
        """Iterate over all ``(point, oid)`` leaf entries."""
        for node in self.pages.values():
            if node.is_leaf:
                yield from node.entries

    @property
    def leaf_entry_count(self) -> int:
        """Physical leaf entries captured (live plus expired)."""
        return sum(1 for _ in self.leaf_entries())

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Object ids matching the query against the frozen entry set.

        Expired information never qualifies — the intersection test
        clips the query window at each entry's expiration time, exactly
        as the live tree's descent does.
        """
        region = query.region()
        return [
            oid for point, oid in self.leaf_entries()
            if region_matches_point(region, point)
        ]


class _TreeInstruments:
    """Metric handles pre-bound to one registry (see DESIGN.md §7).

    Binding happens once, in :meth:`MovingObjectTree.enable_observability`;
    the hot paths then guard on ``self._obs is not None`` and call plain
    ``inc``/``record`` methods, so a disabled tree pays one attribute
    check per instrumented site and an enabled one no name lookups.
    """

    __slots__ = (
        "inserts", "deletes", "delete_misses", "queries", "bulk_loads",
        "splits", "reinserts", "reinserted_entries",
        "purge_events", "purged_entries", "purged_subtrees",
        "purged_subtree_pages", "purged_subtree_leaves",
        "condense_drops", "condense_orphans",
        "root_grows", "root_shrinks",
        "leaf_added", "leaf_removed_delete", "leaf_removed_condense",
        "leaf_removed_reinsert",
        "query_nodes", "query_depth",
        "knn_queries", "knn_nodes",
    )

    def __init__(self, registry):
        counter, histogram = registry.counter, registry.histogram
        self.inserts = counter("tree.inserts")
        self.deletes = counter("tree.deletes")
        self.delete_misses = counter("tree.delete_misses")
        self.queries = counter("tree.queries")
        self.bulk_loads = counter("tree.bulk_loaded_entries")
        self.splits = counter("tree.splits")
        self.reinserts = counter("tree.forced_reinserts")
        self.reinserted_entries = counter("tree.reinserted_entries")
        self.purge_events = counter("tree.purge_events")
        self.purged_entries = counter("tree.purged_leaf_entries")
        self.purged_subtrees = counter("tree.purged_subtrees")
        self.purged_subtree_pages = counter("tree.purged_subtree_pages")
        self.purged_subtree_leaves = counter("tree.purged_subtree_leaf_entries")
        self.condense_drops = counter("tree.condense_drops")
        self.condense_orphans = counter("tree.condense_orphaned_entries")
        self.root_grows = counter("tree.root_grows")
        self.root_shrinks = counter("tree.root_shrinks")
        self.leaf_added = counter("tree.leaf_entries_added")
        self.leaf_removed_delete = counter("tree.leaf_entries_deleted")
        self.leaf_removed_condense = counter("tree.leaf_entries_condensed")
        self.leaf_removed_reinsert = counter("tree.leaf_entries_reinserted")
        self.query_nodes = histogram("tree.query_nodes_visited")
        self.query_depth = histogram("tree.query_descent_depth")
        self.knn_queries = counter("tree.knn_queries")
        self.knn_nodes = histogram("tree.knn_nodes_visited")


class MovingObjectTree:
    """Disk-based index over expiring moving points.

    With the default :class:`TreeConfig` this is the paper's R^exp-tree;
    see :mod:`repro.core.presets` for the TPR-tree and the Section 5
    experiment flavours.

    Observability is off by default (``_obs``/``_tracer`` are ``None``
    and every instrumented site is behind that attribute check); call
    :meth:`enable_observability` to attach a metrics registry and/or a
    tracer.
    """

    def __init__(
        self,
        config: Optional[TreeConfig] = None,
        clock: Optional[SimulationClock] = None,
        store: Optional[FilePageStore] = None,
    ):
        self.config = config if config is not None else TreeConfig()
        self.clock = clock if clock is not None else SimulationClock()
        if store is None:
            self.stats = IOStats()
            self.disk = DiskManager(self.config.page_size, self.stats)
        else:
            if store.page_size != self.config.page_size:
                raise ValueError(
                    f"store page size {store.page_size} does not match "
                    f"config page size {self.config.page_size}"
                )
            self.stats = store.stats
            self.disk = store
        self.buffer = BufferPool(self.disk, self.config.buffer_pages)
        layout = self.config.layout()
        self.leaf_capacity = layout.leaf_capacity
        self.internal_capacity = layout.internal_capacity
        self.max_oid = layout.max_oid
        self._rng = random.Random(self.config.seed)
        self.horizon = HorizonTracker(
            now=self.clock.now,
            batch_size=self.leaf_capacity,
            alpha=self.config.horizon_alpha,
            default_ui=self.config.default_ui,
        )
        # Real-expiration metrics drive splits, reinserts and bound
        # recomputation; the choose metrics may ignore expiration times
        # (the "algs w/o exp.t." flavour).
        self._metrics = KineticMetrics(
            self.config.bounding,
            now=self.clock.now,
            horizon=self.horizon.insertion_horizon,
            rng=self._rng,
            ignore_expiration=False,
        )
        self._choose_metrics = KineticMetrics(
            self.config.bounding,
            now=self.clock.now,
            horizon=self.horizon.insertion_horizon,
            rng=self._rng,
            ignore_expiration=self.config.choose_ignores_expiration,
        )
        self._obs: Optional[_TreeInstruments] = None
        self._tracer = None
        existing_root = store.root_pid if store is not None else None
        if existing_root is not None:
            # Adopting a recovered store: the pages already exist; only
            # the derived in-memory state (horizon census) is rebuilt.
            self.root_pid = existing_root
            self.buffer.pin(self.root_pid)
            self._adopt_existing_pages()
        else:
            self.root_pid = self._new_node(Node(0))
            self.buffer.pin(self.root_pid)
            if store is not None:
                # Root id precedes the first commit in the file header so
                # a crash between the two recovers as "nothing durable".
                store.set_root(self.root_pid)
            self.buffer.flush_all()

    # -- durability ---------------------------------------------------------

    @classmethod
    def create_durable(
        cls,
        directory: str,
        config: Optional[TreeConfig] = None,
        clock: Optional[SimulationClock] = None,
        fsync: bool = False,
        injector=None,
    ) -> "MovingObjectTree":
        """Create an empty tree backed by a durable page store.

        The tree behaves (and charges I/O) exactly like a simulated one;
        additionally every operation group-commits its dirty pages
        through a write-ahead log in ``directory``.  Log I/O is charged
        to ``tree.disk.wal.stats``, never to ``tree.stats``.
        """
        config = config if config is not None else TreeConfig()
        clock = clock if clock is not None else SimulationClock()
        store = FilePageStore.create(
            directory, config.layout(), now=clock.now,
            injector=injector, fsync=fsync,
        )
        return cls(config, clock, store=store)

    @classmethod
    def open_from(
        cls,
        directory: str,
        config: Optional[TreeConfig] = None,
        clock: Optional[SimulationClock] = None,
        fsync: bool = False,
        registry=None,
        tracer=None,
    ) -> "MovingObjectTree":
        """Open (and crash-recover) a tree persisted in ``directory``.

        Replays the write-ahead log onto the page file, decodes every
        live page, restores the simulation clock to the last committed
        operation's time and rebuilds the derived in-memory state.  The
        recovery report is available as ``tree.disk.recovery``.

        ``config`` must match the persisted layout (page size, dims,
        stored fields); pass the same configuration the tree was built
        with.  ``clock`` should be a fresh clock — it is advanced to the
        recovered time.
        """
        config = config if config is not None else TreeConfig()
        clock = clock if clock is not None else SimulationClock()
        store = FilePageStore.open_dir(
            directory, config.layout(), now=clock.now,
            fsync=fsync, registry=registry, tracer=tracer,
        )
        clock.advance_to(store.opened_clock_time)
        return cls(config, clock, store=store)

    def persist_to(self, directory: str) -> PersistReport:
        """Write a full durable snapshot of this tree to ``directory``.

        Works for any backend: every live page is encoded through the
        byte-exact codec and written to a fresh page file (with a clean
        write-ahead log), ready for :meth:`open_from`.  The snapshot
        charges no simulated I/O — persistence is an offline operation,
        not part of any figure.
        """
        self.buffer.flush_all()
        pages = {pid: self.disk.peek(pid) for pid in self.disk.page_ids()}
        store = FilePageStore.snapshot(
            directory, self.config.layout(), self.clock.now,
            pages, self.disk.free_page_ids(), self.disk.next_page_id,
            self.root_pid,
        )
        store.close()
        return PersistReport(
            directory=directory,
            pages=len(pages),
            file_bytes=os.path.getsize(
                os.path.join(directory, PAGES_FILENAME)
            ),
        )

    def checkpoint(self) -> None:
        """Flush, checkpoint the durable store and truncate its log.

        Only meaningful for durable trees; raises for simulated ones.
        A no-op once the store is closed, so shutdown paths may call it
        unconditionally (a closed store has already checkpointed or
        deliberately abandoned its state).
        """
        if not isinstance(self.disk, FilePageStore):
            raise TypeError("checkpoint() requires a durable page store")
        if self.disk.closed:
            return
        self.buffer.flush_all()
        self.disk.checkpoint()

    def close(self) -> None:
        """Checkpoint and close a durable backing store (idempotent).

        A no-op for simulated trees and for already-closed stores, so
        callers can close unconditionally (and twice).  A transient
        storage fault during the final flush is tolerated: the store's
        own close path falls back to the write-ahead log, which already
        holds every committed operation.  A closed durable tree must
        not be used again.
        """
        if isinstance(self.disk, FilePageStore) and not self.disk.closed:
            try:
                self.buffer.flush_all()
            except TransientIOError:
                # The images are staged (or pending) inside the store;
                # disk.close() retries the commit once and otherwise
                # leaves recovery to the WAL.
                pass
            self.disk.close()

    def snapshot(self) -> TreeSnapshot:
        """Copy the reachable page set for degraded reads (no I/O charged).

        Walks the tree via ``peek`` — never touching the buffer pool,
        the fault injector or the I/O counters — and copies each node's
        entry list, so later mutations (or storage failures) of the live
        tree cannot leak into the snapshot.  Take it right after a
        :meth:`checkpoint` and the snapshot is exactly the last durably
        committed state.
        """
        pages: dict = {}
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            node = self.disk.peek(pid)
            pages[pid] = Node(node.level, list(node.entries))
            if not node.is_leaf:
                stack.extend(node.child_ids())
        return TreeSnapshot(self.root_pid, pages, self.now)

    def _adopt_existing_pages(self) -> None:
        """Rebuild the horizon census from a freshly opened store."""
        total_leaf_entries = 0
        stack = [self.root_pid]
        while stack:
            node = self.disk.peek(stack.pop())
            self.horizon.node_count_changed(node.level, +1)
            if node.is_leaf:
                total_leaf_entries += len(node.entries)
            else:
                stack.extend(node.child_ids())
        if total_leaf_entries:
            self.horizon.leaf_entries_changed(total_leaf_entries)

    # -- observability ------------------------------------------------------

    def enable_observability(self, registry=None, tracer=None) -> None:
        """Attach a metrics registry and/or tracer to this tree.

        Either argument may be ``None``: metrics-only and tracing-only
        configurations are both supported.  Also registers derived
        gauges for the buffer pool (hit rate and raw counters) and the
        index size.  Idempotent; call :meth:`disable_observability` to
        return to the zero-overhead path.
        """
        self._obs = _TreeInstruments(
            registry if registry is not None else NULL_REGISTRY
        )
        self._tracer = tracer
        if registry is not None:
            buffer = self.buffer
            registry.gauge("buffer.hit_rate", fn=lambda: buffer.hit_rate)
            registry.gauge("buffer.hits", fn=lambda: buffer.hits)
            registry.gauge("buffer.misses", fn=lambda: buffer.misses)
            registry.gauge("buffer.evictions", fn=lambda: buffer.evictions)
            registry.gauge("tree.pages", fn=lambda: self.page_count)
            registry.gauge("tree.height", fn=lambda: self.height)
            registry.gauge(
                "tree.leaf_entries", fn=lambda: self.leaf_entry_count
            )

    def disable_observability(self) -> None:
        """Detach the metrics registry and tracer from this tree."""
        self._obs = None
        self._tracer = None

    # ------------------------------------------------------------------ API --

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self.clock.time

    def insert(self, oid: int, point: MovingPoint) -> None:
        """Index a (new or re-appearing) object's reported movement."""
        if self._tracer is not None:
            with self._tracer.span("tree.insert", oid=oid):
                self._insert(oid, point)
        else:
            self._insert(oid, point)

    def _check_oid(self, oid: int) -> None:
        # The page codec stores oids as u32 (the shard wire format is
        # i64, so the codec is the narrower of the two); rejecting here
        # gives a clear error instead of a struct.error when the page
        # is eventually encoded inside a commit or snapshot.
        if oid < 0 or oid > self.max_oid:
            raise ValueError(
                f"oid {oid} outside the page codec's unsigned "
                f"32-bit range [0, {self.max_oid}]"
            )

    def _insert(self, oid: int, point: MovingPoint) -> None:
        self._check_oid(oid)
        if point.dims != self.config.dims:
            raise ValueError(
                f"expected {self.config.dims}-d point, got {point.dims}-d"
            )
        if self._obs is not None:
            self._obs.inserts.inc()
        if not self.config.store_leaf_expiration and point.t_exp != NEVER:
            point = MovingPoint(point.pos, point.vel, point.t_ref, NEVER)
        orphans: List[Orphan] = []
        reinserted: set = set()
        self._insert_entry_at_level((point, oid), 0, orphans, reinserted)
        self._process_orphans(orphans, reinserted)
        self._shrink_root()
        self.horizon.record_insertion()
        self.buffer.flush_all()

    def bulk_load(self, entries: Sequence[LeafEntry]) -> None:
        """Build the tree from a known data set by STR packing.

        Far cheaper than repeated :meth:`insert` for the initial
        population of an experiment: every page is written exactly once
        and no ChooseSubtree/split/reinsert work is done.  See
        :mod:`repro.core.bulkload` for the packing algorithm.  The tree
        must be empty; the update-interval estimate is left untouched
        (bulk population is not an update stream).
        """
        root = self._load(self.root_pid)
        if root.entries or not root.is_leaf:
            raise ValueError("bulk_load requires an empty tree")
        prepared: List[LeafEntry] = []
        for point, oid in entries:
            self._check_oid(oid)
            if point.dims != self.config.dims:
                raise ValueError(
                    f"expected {self.config.dims}-d point, got {point.dims}-d"
                )
            if not self.config.store_leaf_expiration and point.t_exp != NEVER:
                point = MovingPoint(point.pos, point.vel, point.t_ref, NEVER)
            prepared.append((point, oid))
        if not prepared:
            self.buffer.flush_all()
            return
        bulk_load_tree(self, prepared)
        if self._obs is not None:
            self._obs.bulk_loads.inc(len(prepared))
            self._obs.leaf_added.inc(len(prepared))
            if self._tracer is not None:
                self._tracer.event("bulk_load", entries=len(prepared))

    def delete(self, oid: int, point: MovingPoint) -> bool:
        """Remove an object's entry, locating it via its last report.

        Follows the paper's deletion discipline: the regular search
        procedure is used and does not "see" expired entries, so deleting
        an already-expired (or lazily purged) object fails and returns
        False — which is harmless, as the entry is or will be purged.
        """
        if self._tracer is not None:
            with self._tracer.span("tree.delete", oid=oid) as span:
                removed = self._delete(oid, point)
                span.set(found=removed)
                return removed
        return self._delete(oid, point)

    def _delete(self, oid: int, point: MovingPoint) -> bool:
        obs = self._obs
        if obs is not None:
            obs.deletes.inc()
        found = self._find_leaf_entry(oid, point)
        if found is None:
            if obs is not None:
                obs.delete_misses.inc()
            self.buffer.flush_all()
            return False
        path, entry_idx = found
        leaf = self._load(path[-1])
        del leaf.entries[entry_idx]
        self.horizon.leaf_entries_changed(-1)
        if obs is not None:
            obs.leaf_removed_delete.inc()
        self._touch(path[-1], leaf)
        orphans: List[Orphan] = []
        reinserted: set = set()
        self._condense_path(path, orphans, reinserted)
        self._process_orphans(orphans, reinserted)
        self._shrink_root()
        self.buffer.flush_all()
        return True

    def update(
        self, oid: int, old_point: MovingPoint, new_point: MovingPoint
    ) -> bool:
        """Delete the old report and insert the new one.

        Returns:
            True if the old entry was found (it may have expired).
        """
        existed = self.delete(oid, old_point)
        self.insert(oid, new_point)
        return existed

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Object ids matching a timeslice/window/moving query.

        Expired information never qualifies: intersection tests clip the
        query window at each entry's expiration time (Section 4.1.5).
        """
        if self._obs is not None or self._tracer is not None:
            return self._query_observed(query)
        region = query.region()
        results: List[int] = []
        stack = [self.root_pid]
        while stack:
            node = self._load(stack.pop())
            # The packed struct-of-arrays form is query-independent, so
            # it is cached on the node; _touch drops it on mutation.
            if node.is_leaf:
                points = [point for point, _ in node.entries]
                if node.soa is None:
                    node.soa = pack_points(points)
                hits = batch_region_matches(region, points, node.soa)
                results.extend(
                    oid for (_, oid), hit in zip(node.entries, hits) if hit
                )
            else:
                brs = [br for br, _ in node.entries]
                if node.soa is None:
                    node.soa = pack_tpbrs(brs)
                hits = batch_region_intersects(region, brs, node.soa)
                stack.extend(
                    pid for (_, pid), hit in zip(node.entries, hits) if hit
                )
        self.buffer.flush_all()
        return results

    def query_batch(
        self, queries: Sequence[SpatioTemporalQuery]
    ) -> List[List[int]]:
        """Answer K concurrent queries in **one** shared traversal.

        The frontier is a stack of ``(page, active-query set)`` pairs:
        a node is visited at most once per batch (instead of once per
        matching query) and its cached struct-of-arrays form is tested
        against every active query at once by the multi-query kernel.
        The answers are bit-identical to ``[self.query(q) for q in
        queries]``, *including order*: each tree node has exactly one
        parent, so a query's frames form a proper LIFO subsequence of
        the shared stack — frames of other queries interleave but never
        reorder it — which reproduces the query's own depth-first leaf
        visit order, and hits within a leaf are appended in entry
        order just as the sequential descent does.

        Observability note: the batch path records one ``tree.queries``
        increment per query and a single ``tree.query_batch`` span; the
        per-query node/depth histograms are only fed by the sequential
        path.
        """
        if self._tracer is not None:
            with self._tracer.span(
                "tree.query_batch", queries=len(queries)
            ) as span:
                results = self._query_batch(queries)
                span.set(results=sum(len(r) for r in results))
        else:
            results = self._query_batch(queries)
        if self._obs is not None and queries:
            self._obs.queries.inc(len(queries))
        return results

    def _query_batch(
        self, queries: Sequence[SpatioTemporalQuery]
    ) -> List[List[int]]:
        count = len(queries)
        if count == 0:
            return []
        regions = [query.region() for query in queries]
        packed = pack_queries(regions)
        results: List[List[int]] = [[] for _ in range(count)]
        if packed is not None:
            # pack_queries returned arrays, so kernels' numpy is bound.
            np = _kernels.np
            stack = [(self.root_pid, np.arange(count, dtype=np.intp))]
        else:
            stack = [(self.root_pid, list(range(count)))]
        while stack:
            pid, active = stack.pop()
            node = self._load(pid)
            entries = node.entries
            if node.is_leaf:
                if node.soa is None:
                    node.soa = pack_points([p for p, _ in entries])
                if packed is not None and node.soa is not None:
                    hits = multi_query_hits(
                        select_queries(packed, active), node.soa
                    ).tolist()
                    oids = [oid for _, oid in entries]
                    for row, position in zip(hits, active.tolist()):
                        bucket = results[position]
                        bucket.extend(
                            oid for oid, hit in zip(oids, row) if hit
                        )
                else:
                    for position in (
                        active if packed is None else active.tolist()
                    ):
                        region = regions[position]
                        results[position].extend(
                            oid for point, oid in entries
                            if region_matches_point(region, point)
                        )
            else:
                if node.soa is None:
                    node.soa = pack_tpbrs([br for br, _ in entries])
                if packed is not None and node.soa is not None:
                    hits = multi_query_hits(
                        select_queries(packed, active), node.soa
                    )
                    # Push in entry order (the sequential descent's
                    # stack.extend order) so LIFO pops preserve each
                    # query's own leaf visit sequence.
                    for column, (_, child) in enumerate(entries):
                        mask = hits[:, column]
                        if mask.any():
                            stack.append((child, active[mask]))
                else:
                    for br, child in entries:
                        sub = [
                            position
                            for position in (
                                active if packed is None
                                else active.tolist()
                            )
                            if region_intersects_tpbr(regions[position], br)
                        ]
                        if sub:
                            if packed is not None:
                                sub = _kernels.np.asarray(
                                    sub, dtype=np.intp
                                )
                            stack.append((child, sub))
        self.buffer.flush_all()
        return results

    def _query_observed(self, query: SpatioTemporalQuery) -> List[int]:
        """The :meth:`query` descent with depth/visit accounting.

        Kept as a twin of the unobserved loop (which must stay free of
        per-node bookkeeping); the answer and the page accesses are
        identical — only ``(pid, depth)`` stack bookkeeping is added.
        """
        span = (
            self._tracer.span("tree.query", kind=type(query).__name__)
            if self._tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            region = query.region()
            results: List[int] = []
            nodes_visited = 0
            max_depth = 0
            stack = [(self.root_pid, 0)]
            while stack:
                pid, depth = stack.pop()
                node = self._load(pid)
                nodes_visited += 1
                if depth > max_depth:
                    max_depth = depth
                if node.is_leaf:
                    points = [point for point, _ in node.entries]
                    if node.soa is None:
                        node.soa = pack_points(points)
                    hits = batch_region_matches(region, points, node.soa)
                    results.extend(
                        oid for (_, oid), hit in zip(node.entries, hits) if hit
                    )
                else:
                    brs = [br for br, _ in node.entries]
                    if node.soa is None:
                        node.soa = pack_tpbrs(brs)
                    hits = batch_region_intersects(region, brs, node.soa)
                    stack.extend(
                        (pid_, depth + 1)
                        for (_, pid_), hit in zip(node.entries, hits)
                        if hit
                    )
            self.buffer.flush_all()
            obs = self._obs
            if obs is not None:
                obs.queries.inc()
                obs.query_nodes.record(nodes_visited)
                obs.query_depth.record(max_depth)
            if span is not None:
                span.set(
                    nodes=nodes_visited, depth=max_depth, results=len(results)
                )
            return results
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def query_knn(self, x, t: float, k: int) -> List[int]:
        """The ``k`` objects nearest to ``x`` at time ``t``, nearest first.

        Best-first descent on a priority queue keyed by the admissible
        TPBR min-distance lower bound of :mod:`repro.geometry.knn`:
        internal entries enter the queue under their rectangle's lower
        bound at ``t``, leaf points under their exact squared distance,
        and a point popped from the queue is final — every unexplored
        subtree's bound already exceeds its distance.  Expired
        information never qualifies: subtrees whose bounding rectangle
        expires before ``t`` are pruned and leaf points must satisfy
        ``not t_exp < t`` (alive at the exact expiration instant, the
        tree's usual convention).  Ties in distance resolve by
        ascending oid, so the answer is bit-identical to the
        brute-force oracle :func:`repro.geometry.knn.brute_force_knn`.

        Parameters
        ----------
        x : tuple of float
            The query location (``config.dims`` finite coordinates).
        t : float
            The evaluation time.
        k : int
            Number of neighbors; ``k = 0`` returns ``[]`` and a ``k``
            beyond the live population returns every live object.

        Returns
        -------
        list of int
            Object ids ordered by ``(squared distance at t, oid)``.
        """
        return [oid for _, oid in self.knn_entries(x, t, k)]

    def knn_entries(
        self, x, t: float, k: int, bound_sq: float = math.inf
    ) -> List[Tuple[float, int]]:
        """Scored kNN: the ``(squared distance, oid)`` pairs behind ``query_knn``.

        The forest and shard layers merge per-member answers by exact
        distance, so this variant exposes the scores and accepts an
        external pruning bound: entries whose distance (or subtree
        lower bound) strictly exceeds ``bound_sq`` are skipped —
        entries *at* the bound survive so equal-distance ties can still
        be resolved by oid across members.

        Parameters
        ----------
        x : tuple of float
            The query location.
        t : float
            The evaluation time.
        k : int
            Number of neighbors.
        bound_sq : float, optional
            Squared-distance cutoff from a caller that already holds
            ``k`` candidates (default: no cutoff).

        Returns
        -------
        list of (float, int)
            At most ``k`` pairs, ascending by ``(distance, oid)``.
        """
        validate_knn_args(x, t, k, self.config.dims)
        x = tuple(float(c) for c in x)
        if k == 0:
            return []
        if self._obs is not None or self._tracer is not None:
            return self._knn_observed(x, t, k, bound_sq)
        results, _ = self._knn_descent(x, t, k, bound_sq)
        self.buffer.flush_all()
        return results

    def _knn_descent(
        self, x, t: float, k: int, bound_sq: float
    ) -> Tuple[List[Tuple[float, int]], int]:
        """The best-first loop shared by the plain and observed paths.

        One priority queue holds both node frames and point candidates:
        ``(key, kind, tie, payload)`` where nodes carry ``kind = 0``
        (so at an equal key a node expands *before* a point finalizes —
        it may contain an equal-distance point with a smaller oid) and
        points carry ``kind = 1`` with their oid as the tie, which
        makes equal-distance points pop in oid order.  Distances and
        bounds come from the batched kernels over the node's cached
        struct-of-arrays form, bit-identical to the scalar fallback.
        """
        heap = [(0.0, 0, 0, self.root_pid)]
        seq = 0
        results: List[Tuple[float, int]] = []
        nodes_visited = 0
        while heap:
            key, kind, tie, payload = heapq.heappop(heap)
            if key > bound_sq:
                break
            if kind == 1:
                results.append((key, tie))
                if len(results) == k:
                    break
                continue
            node = self._load(payload)
            nodes_visited += 1
            entries = node.entries
            if node.is_leaf:
                points = [point for point, _ in entries]
                if node.soa is None:
                    node.soa = pack_points(points)
                dists = batch_point_distances_sq(x, points, t, node.soa)
                for (point, oid), dist in zip(entries, dists):
                    if point.t_exp < t or dist > bound_sq:
                        continue
                    heapq.heappush(heap, (dist, 1, oid, None))
            else:
                brs = [br for br, _ in entries]
                if node.soa is None:
                    node.soa = pack_tpbrs(brs)
                lowers = batch_tpbr_min_distances_sq(x, brs, t, node.soa)
                for (br, child), lower in zip(entries, lowers):
                    if br.t_exp < t or lower > bound_sq:
                        continue
                    seq += 1
                    heapq.heappush(heap, (lower, 0, seq, child))
        return results, nodes_visited

    def _knn_observed(
        self, x, t: float, k: int, bound_sq: float
    ) -> List[Tuple[float, int]]:
        """The :meth:`knn_entries` descent with metric/trace accounting."""
        span = (
            self._tracer.span("tree.query_knn", k=k)
            if self._tracer is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            results, nodes_visited = self._knn_descent(x, t, k, bound_sq)
            self.buffer.flush_all()
            obs = self._obs
            if obs is not None:
                obs.knn_queries.inc()
                obs.knn_nodes.record(nodes_visited)
            if span is not None:
                span.set(nodes=nodes_visited, results=len(results))
            return results
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    # -- introspection ----------------------------------------------------------

    @property
    def height(self) -> int:
        """The tree's height in levels (a lone leaf root is height 1)."""
        return self.disk.peek(self.root_pid).level + 1

    @property
    def page_count(self) -> int:
        """Index size in disk pages (Figure 15's metric)."""
        return self.disk.allocated_pages

    @property
    def leaf_entry_count(self) -> int:
        """Physical leaf entries currently stored (live plus expired)."""
        return self.horizon.leaf_entries

    def audit(self) -> TreeAudit:
        """Walk the whole tree without charging I/O and count entries."""
        now = self.now
        nodes = 0
        leaf_entries = expired_leaf = 0
        internal_entries = expired_internal = 0
        stack = [self.root_pid]
        while stack:
            node = self.disk.peek(stack.pop())
            nodes += 1
            if node.is_leaf:
                leaf_entries += len(node.entries)
                expired_leaf += sum(
                    1 for point, _ in node.entries if point.t_exp < now
                )
            else:
                internal_entries += len(node.entries)
                for br, child in node.entries:
                    if br.t_exp < now:
                        expired_internal += 1
                    stack.append(child)
        return TreeAudit(
            height=self.height,
            nodes=nodes,
            leaf_entries=leaf_entries,
            expired_leaf_entries=expired_leaf,
            internal_entries=internal_entries,
            expired_internal_entries=expired_internal,
        )

    def level_occupancy(self) -> "dict[int, Tuple[int, int]]":
        """Per-level ``{level: (nodes, entries)}`` census (no I/O charged).

        Level 0 is the leaves; divide entries by ``nodes * capacity`` for
        the fill factor the profile report prints.
        """
        census: "dict[int, List[int]]" = {}
        stack = [self.root_pid]
        while stack:
            node = self.disk.peek(stack.pop())
            slot = census.setdefault(node.level, [0, 0])
            slot[0] += 1
            slot[1] += len(node.entries)
            if not node.is_leaf:
                stack.extend(node.child_ids())
        return {
            level: (nodes, entries)
            for level, (nodes, entries) in census.items()
        }

    def check_invariants(self) -> None:
        """Raise AssertionError on structural violations (test helper)."""
        self._check_node(self.root_pid, expected_level=None, bound=None)
        seen = self._reachable_pages()
        assert seen == set(self.disk.page_ids()), (
            "orphaned pages: "
            f"{set(self.disk.page_ids()) - seen} unreachable"
        )

    # -- node bookkeeping ---------------------------------------------------------

    def _new_node(self, node: Node) -> PageId:
        pid = self.disk.allocate()
        self.buffer.put_new(pid, node)
        self.horizon.node_count_changed(node.level, +1)
        return pid

    def _free_node(self, pid: PageId, node: Node) -> None:
        self.horizon.node_count_changed(node.level, -1)
        self.buffer.discard(pid)
        self.disk.free(pid)

    def _load(self, pid: PageId) -> Node:
        return self.buffer.get(pid)

    def _touch(self, pid: PageId, node: Node) -> None:
        node.soa = None  # entries changed; drop the packed-query cache
        self.buffer.mark_dirty(pid, node)

    def _set_root(self, new_root: Node) -> None:
        old = self._load(self.root_pid)
        self.horizon.node_count_changed(old.level, -1)
        self.horizon.node_count_changed(new_root.level, +1)
        self._touch(self.root_pid, new_root)

    def _capacity(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.internal_capacity

    def _min_entries(self, node: Node) -> int:
        return max(2, int(self._capacity(node) * self.config.min_fill))

    # -- liveness -------------------------------------------------------------------

    def _is_live(self, region) -> bool:
        if not self.config.lazy_expiry:
            return True
        return not region.t_exp < self.now

    def _live_count(self, node: Node) -> int:
        if not self.config.lazy_expiry:
            return len(node.entries)
        now = self.now
        return sum(1 for region, _ in node.entries if not region.t_exp < now)

    # -- bounds ------------------------------------------------------------------------

    def _bound_node(self, node: Node) -> TPBR:
        """Recompute the stored bounding rectangle of a node's entries."""
        items = node.regions()
        br = compute_tpbr(
            items,
            self.now,
            self.config.bounding,
            horizon=self.horizon.bounding_horizon(node.level),
            rng=self._rng,
        )
        if not self.config.store_br_expiration:
            # The expiration time is not stored on the page; only the
            # derivable zero-extent time of a shrinking rectangle remains
            # available to the algorithms (Section 4.1.1).
            br = TPBR(
                br.lo, br.hi, br.vlo, br.vhi, br.t_ref, br.derived_expiration()
            )
        return br

    # -- insertion ----------------------------------------------------------------------

    def _insert_entry_at_level(
        self,
        entry: Tuple[object, object],
        level: int,
        orphans: List[Orphan],
        reinserted: set,
    ) -> None:
        root = self._load(self.root_pid)
        if not root.entries:
            # CT3.1: the root emptied out; restart it at this entry's level.
            self._set_root(Node(level, [entry]))
            if level == 0:
                self.horizon.leaf_entries_changed(+1)
                if self._obs is not None:
                    self._obs.leaf_added.inc()
            self._condense_path([self.root_pid], orphans, reinserted)
            return
        if level > root.level:
            raise RuntimeError(
                f"cannot place a level-{level} entry under a level-"
                f"{root.level} root"
            )
        path = [self.root_pid]
        node = root
        while node.level > level:
            idx = self._choose_child_index(node, entry[0], level)
            child_pid = node.entries[idx][1]
            path.append(child_pid)
            node = self._load(child_pid)
        node.entries.append(entry)
        if level == 0:
            self.horizon.leaf_entries_changed(+1)
            if self._obs is not None:
                self._obs.leaf_added.inc()
        self._touch(path[-1], node)
        self._condense_path(path, orphans, reinserted)

    def _choose_child_index(self, node: Node, region, target_level: int) -> int:
        candidates = [
            i for i, (r, _) in enumerate(node.entries) if self._is_live(r)
        ]
        if not candidates:
            candidates = list(range(len(node.entries)))
        use_overlap = (
            self.config.use_overlap_in_choose
            and node.level == target_level + 1
        )
        regions = [node.entries[i][0] for i in candidates]
        pick = choose_child(self._choose_metrics, regions, region, use_overlap)
        return candidates[pick]

    def _process_orphans(self, orphans: List[Orphan], reinserted: set) -> None:
        # CT3: reinsert orphans, highest tree levels first.
        while orphans:
            best = max(range(len(orphans)), key=lambda i: orphans[i][1])
            entry, level = orphans.pop(best)
            self._insert_entry_at_level(entry, level, orphans, reinserted)

    # -- the shared condense/propagate pass (Section 4.3) -----------------------------------

    def _condense_path(
        self, path: List[PageId], orphans: List[Orphan], reinserted: set
    ) -> None:
        """PropagateUp from the modified node to the root.

        At each node: purge expired entries, resolve overflow (forced
        reinsert or split), resolve underflow (move live entries to the
        orphans list and deallocate), and refresh the parent's bounding
        rectangle.
        """
        for depth in range(len(path) - 1, -1, -1):
            pid = path[depth]
            node = self._load(pid)
            if self.config.lazy_expiry:
                self._purge_node(node)
            is_root = depth == 0
            split_entry = None
            if len(node.entries) > self._capacity(node):
                split_entry = self._overflow(
                    pid, node, is_root, orphans, reinserted
                )
            if is_root:
                self._touch(pid, node)
                if split_entry is not None:
                    self._grow_root(split_entry)
                continue
            parent_pid = path[depth - 1]
            parent = self._load(parent_pid)
            child_idx = next(
                i for i, (_, c) in enumerate(parent.entries) if c == pid
            )
            underfull = self._live_count(node) < self._min_entries(node)
            has_room = len(orphans) < self.config.max_orphans
            if underfull and (has_room or not node.entries):
                # PU2: orphan the live entries and drop the node.
                orphaned = 0
                for entry in node.entries:
                    if self._is_live(entry[0]):
                        orphans.append((entry, node.level))
                        orphaned += 1
                if node.is_leaf:
                    self.horizon.leaf_entries_changed(-len(node.entries))
                if self._obs is not None:
                    self._obs.condense_drops.inc()
                    self._obs.condense_orphans.inc(orphaned)
                    if node.is_leaf:
                        self._obs.leaf_removed_condense.inc(len(node.entries))
                    if self._tracer is not None:
                        self._tracer.event(
                            "condense_drop",
                            level=node.level,
                            entries=len(node.entries),
                            orphaned=orphaned,
                        )
                del parent.entries[child_idx]
                self._free_node(pid, node)
            else:
                parent.entries[child_idx] = (self._bound_node(node), pid)
                if split_entry is not None:
                    parent.entries.append(split_entry)
                self._touch(pid, node)
            self._touch(parent_pid, parent)

    def _overflow(
        self,
        pid: PageId,
        node: Node,
        is_root: bool,
        orphans: List[Orphan],
        reinserted: set,
    ) -> Optional[Tuple[TPBR, PageId]]:
        """PU1: forced reinsert once per level per operation, else split."""
        can_reinsert = (
            not is_root
            and self.config.reinsert_fraction > 0.0
            and node.level not in reinserted
            and len(orphans) < self.config.max_orphans
        )
        if can_reinsert:
            reinserted.add(node.level)
            count = max(1, int(len(node.entries) * self.config.reinsert_fraction))
            evicted = reinsert_candidates(self._metrics, node.regions(), count)
            evicted_set = set(evicted)
            for i in evicted:
                orphans.append((node.entries[i], node.level))
            node.entries = [
                e for i, e in enumerate(node.entries) if i not in evicted_set
            ]
            if node.is_leaf:
                self.horizon.leaf_entries_changed(-len(evicted))
            if self._obs is not None:
                self._obs.reinserts.inc()
                self._obs.reinserted_entries.inc(len(evicted))
                if node.is_leaf:
                    self._obs.leaf_removed_reinsert.inc(len(evicted))
                if self._tracer is not None:
                    self._tracer.event(
                        "forced_reinsert",
                        level=node.level,
                        entries=len(evicted),
                    )
            return None
        return self._split(node)

    def _split(self, node: Node) -> Tuple[TPBR, PageId]:
        result = choose_split(
            self._metrics, node.regions(), self._min_entries(node)
        )
        entries = node.entries
        node.entries = [entries[i] for i in result.group_a]
        sibling = Node(node.level, [entries[i] for i in result.group_b])
        sibling_pid = self._new_node(sibling)
        if self._obs is not None:
            self._obs.splits.inc()
            if self._tracer is not None:
                self._tracer.event(
                    "split",
                    level=node.level,
                    left=len(node.entries),
                    right=len(sibling.entries),
                )
        return (self._bound_node(sibling), sibling_pid)

    def _grow_root(self, split_entry: Tuple[TPBR, PageId]) -> None:
        old_root = self._load(self.root_pid)
        moved_pid = self._new_node(Node(old_root.level, old_root.entries))
        moved_bound = self._bound_node(self._load(moved_pid))
        self._set_root(
            Node(old_root.level + 1, [(moved_bound, moved_pid), split_entry])
        )
        if self._obs is not None:
            self._obs.root_grows.inc()
            if self._tracer is not None:
                self._tracer.event("root_grow", height=old_root.level + 2)

    def _shrink_root(self) -> None:
        root = self._load(self.root_pid)
        while not root.is_leaf and len(root.entries) == 1:
            # CT4: a single-entry root adds a pointless level.
            child_pid = root.entries[0][1]
            child = self._load(child_pid)
            self._set_root(Node(child.level, child.entries))
            self._free_node(child_pid, child)
            if self._obs is not None:
                self._obs.root_shrinks.inc()
                if self._tracer is not None:
                    self._tracer.event("root_shrink", height=child.level + 1)
            root = self._load(self.root_pid)
        if not root.is_leaf and not root.entries:
            self._set_root(Node(0))

    # -- expiry --------------------------------------------------------------------------

    def _purge_node(self, node: Node) -> None:
        """Drop expired entries from a node that is being modified."""
        now = self.now
        kept = []
        dead_children: List[PageId] = []
        dead_leaves = 0
        for entry in node.entries:
            region, value = entry
            if region.t_exp < now:
                if node.is_leaf:
                    dead_leaves += 1
                else:
                    dead_children.append(value)
            else:
                kept.append(entry)
        if not dead_children and not dead_leaves:
            return
        node.entries = kept
        if dead_leaves:
            self.horizon.leaf_entries_changed(-dead_leaves)
        if self._obs is not None:
            self._obs.purge_events.inc()
            self._obs.purged_entries.inc(dead_leaves)
            self._obs.purged_subtrees.inc(len(dead_children))
            if self._tracer is not None:
                self._tracer.event(
                    "lazy_purge",
                    level=node.level,
                    purged=dead_leaves,
                    subtrees=len(dead_children),
                )
        for child_pid in dead_children:
            self._deallocate_subtree(child_pid)

    def _deallocate_subtree(self, pid: PageId) -> None:
        """Free a whole expired subtree (charging the reads to find it)."""
        pages = 0
        leaf_entries = 0
        stack = [pid]
        while stack:
            page = stack.pop()
            node = self._load(page)
            pages += 1
            if node.is_leaf:
                leaf_entries += len(node.entries)
                self.horizon.leaf_entries_changed(-len(node.entries))
            else:
                stack.extend(node.child_ids())
            self._free_node(page, node)
        if self._obs is not None:
            self._obs.purged_subtree_pages.inc(pages)
            self._obs.purged_subtree_leaves.inc(leaf_entries)
            if self._tracer is not None:
                self._tracer.event(
                    "subtree_dealloc", pages=pages, leaf_entries=leaf_entries
                )

    # -- deletion search --------------------------------------------------------------------

    def _find_leaf_entry(
        self, oid: int, point: MovingPoint
    ) -> Optional[Tuple[List[PageId], int]]:
        """Regular containment search for the leaf entry of ``oid``.

        Descends only live internal entries whose rectangle covers the
        object's current predicted position, as the search procedure
        would; hence expired entries are never found.
        """
        now = self.now
        position = point.position_at(now)
        stack: List[List[PageId]] = [[self.root_pid]]
        while stack:
            path = stack.pop()
            node = self._load(path[-1])
            if node.is_leaf:
                for i, (candidate, value) in enumerate(node.entries):
                    if value == oid and self._is_live(candidate):
                        return path, i
                continue
            for br, child_pid in node.entries:
                if not self._is_live(br):
                    continue
                if self._covers_position(br, position, now):
                    stack.append(path + [child_pid])
        return None

    @staticmethod
    def _covers_position(
        br: TPBR, position: Sequence[float], now: float
    ) -> bool:
        for d, x in enumerate(position):
            if x < br.lower_at(d, now) - _DELETE_EPS:
                return False
            if x > br.upper_at(d, now) + _DELETE_EPS:
                return False
        return True

    # -- invariant checking -------------------------------------------------------------------

    def _reachable_pages(self) -> set:
        seen = set()
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            seen.add(pid)
            node = self.disk.peek(pid)
            if not node.is_leaf:
                stack.extend(node.child_ids())
        return seen

    def _check_node(
        self, pid: PageId, expected_level: Optional[int], bound: Optional[TPBR]
    ) -> None:
        node = self.disk.peek(pid)
        if expected_level is not None:
            assert node.level == expected_level, (
                f"node {pid} at level {node.level}, expected {expected_level}"
            )
        is_root = pid == self.root_pid
        assert len(node.entries) <= self._capacity(node), f"node {pid} overfull"
        if not is_root:
            # Unmodified nodes may be underfull of *live* entries (the
            # lazy strategy tolerates that), but never physically empty.
            assert node.entries, f"node {pid} is empty"
        if bound is not None:
            for region, _ in node.entries:
                assert bound.contains_tpbr(
                    self._as_region_tpbr(region), bound.t_ref, tol=1e-5
                ), f"entry of node {pid} escapes its parent bound"
        if node.is_leaf:
            return
        for br, child_pid in node.entries:
            self._check_node(child_pid, node.level - 1, br)

    @staticmethod
    def _as_region_tpbr(region) -> TPBR:
        if isinstance(region, TPBR):
            return region
        return TPBR.from_moving_point(region, region.t_ref)
