"""Serving layer: overload-safe request processing over a moving-object index.

The frontend turns a workload operation stream into a traffic-shaped
request flow — bounded admission with shedding, deadline-aware retries
of transient storage faults, and a circuit breaker that flips reads to
a bounded-staleness snapshot path while the store recovers.  See
:mod:`repro.serve.frontend` for the full model.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, HealthMonitor
from .degraded import DegradedAnswer, DegradedReader
from .frontend import (
    FrontendConfig,
    QueryOutcome,
    ServiceFrontend,
    ServiceReport,
)
from .queue import (
    REJECT_NEWEST,
    REJECT_OLDEST,
    SHED_POLICIES,
    SHED_QUERIES_FIRST,
    AdmissionQueue,
    Request,
)
from .retry import RetryPolicy
from .subscriptions import (
    Subscription,
    SubscriptionDelta,
    SubscriptionIndex,
    subscription_slo,
)

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "CLOSED",
    "DegradedAnswer",
    "DegradedReader",
    "FrontendConfig",
    "HALF_OPEN",
    "HealthMonitor",
    "OPEN",
    "QueryOutcome",
    "REJECT_NEWEST",
    "REJECT_OLDEST",
    "Request",
    "RetryPolicy",
    "ServiceFrontend",
    "ServiceReport",
    "SHED_POLICIES",
    "SHED_QUERIES_FIRST",
    "Subscription",
    "SubscriptionDelta",
    "SubscriptionIndex",
    "subscription_slo",
]
