"""Bounded admission queue with configurable shedding policies.

Requests wait here between *arrival* and *service*.  When the queue is
full an arriving request forces a shed, and the policy decides who pays:

``reject-newest``
    The arriving request is turned away; queued work is never touched.
``reject-oldest``
    The head of the queue is dropped and the arrival admitted — the
    queue favours fresh requests (stale queued queries are the least
    valuable work under overload).
``shed-queries-first``
    The oldest *query* among the queued requests and the arrival is
    dropped; writes are only shed when queue and arrival hold nothing
    but writes.  This is the SLO-preserving default: a shed query is a
    lost answer, but a shed write permanently diverges the index from
    the ground truth, so queries absorb the overload first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..workloads.base import Operation, QueryOp

#: Shedding policy names.
REJECT_NEWEST = "reject-newest"
REJECT_OLDEST = "reject-oldest"
SHED_QUERIES_FIRST = "shed-queries-first"

#: All supported shedding policies.
SHED_POLICIES = (REJECT_NEWEST, REJECT_OLDEST, SHED_QUERIES_FIRST)


@dataclass(frozen=True)
class Request:
    """One workload operation travelling through the frontend.

    Attributes
    ----------
    index : int
        Position of the operation in the workload stream.
    op : Operation
        The workload operation itself.
    arrival : float
        Arrival time on the frontend's virtual serving clock.
    deadline : float
        Latest acceptable completion time (``inf`` for writes — the
        frontend never abandons a write on latency grounds).
    """

    index: int
    op: Operation
    arrival: float
    deadline: float = field(default=float("inf"))

    @property
    def is_query(self) -> bool:
        """Whether this request is a read (query) rather than a write."""
        return isinstance(self.op, QueryOp)


class AdmissionQueue:
    """A bounded FIFO of admitted requests.

    Parameters
    ----------
    capacity : int
        Maximum requests waiting; an arrival into a full queue forces a
        shed.
    policy : str
        One of :data:`SHED_POLICIES`.
    """

    def __init__(self, capacity: int, policy: str = SHED_QUERIES_FIRST):
        if capacity < 1:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: List[Request] = []

    def __len__(self) -> int:
        """Requests currently waiting."""
        return len(self._items)

    def peek(self) -> Request:
        """The request that will be served next (the queue head)."""
        return self._items[0]

    def pop(self) -> Request:
        """Remove and return the queue head."""
        return self._items.pop(0)

    def offer(self, request: Request) -> Optional[Request]:
        """Admit ``request``, shedding per policy when full.

        Returns
        -------
        Request or None
            The request that was shed — possibly ``request`` itself —
            or ``None`` when everything (queue plus arrival) was kept.
        """
        if len(self._items) < self.capacity:
            self._items.append(request)
            return None
        if self.policy == REJECT_NEWEST:
            return request
        if self.policy == REJECT_OLDEST:
            shed = self._items.pop(0)
            self._items.append(request)
            return shed
        # shed-queries-first: the oldest queued query goes; failing
        # that, a query arrival is turned away; only an all-write queue
        # meeting a write arrival sheds a write (the arriving one).
        for i, queued in enumerate(self._items):
            if queued.is_query:
                shed = self._items.pop(i)
                self._items.append(request)
                return shed
        return request
