"""Standing queries: continuous range subscriptions with delta publishing.

The paper's queries are one-shot: a timeslice, window or moving query is
answered against the index and forgotten.  A location-based service also
needs the *continuous* form — "keep telling me who is in this region" —
which this module provides without touching the index at all.  A
:class:`SubscriptionIndex` registers standing queries (any of the three
paper query types), mirrors the live object population, and on every
insert, delete, update or expiration publishes **add/remove deltas** to
exactly the subscriptions whose answers changed.

The maintained invariant, checked verbatim by the test suite's naive
oracle: after every notification point, a subscription's answer set is

    { oid : region_matches_point(region, point) and not t_exp < now }

over the live population — precisely the answer a fresh one-shot query
through :func:`~repro.geometry.intersection.region_matches_point` would
compute.  Replaying a subscription's deltas from registration therefore
reconstructs exactly the re-evaluated answer set.

Matching an event against every subscription would cost O(S) per
update; a uniform **grid** over the subscriptions' swept bounding
rectangles cuts the candidate set to the cells an object's trajectory
envelope touches.  The grid is purely an accelerator — candidates are
confirmed with the exact predicate — so clamping out-of-space
coordinates into edge cells is safe (conservative), never wrong.

Delivery is decoupled from maintenance: deltas queue per subscription
(bounded), and a consumer drains them with :meth:`SubscriptionIndex.poll`.
A consumer that falls behind loses the oldest deltas, the subscription
is marked *lagged*, and the ``subs.dropped`` counter burns the delivery
SLO (:func:`subscription_slo`); :meth:`SubscriptionIndex.resync` hands
back the full answer and clears the lag — the standard bounded-queue
pub/sub contract.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..geometry.intersection import region_matches_point
from ..geometry.kinematics import MovingPoint
from ..geometry.queries import QueryRegion, SpatioTemporalQuery
from ..obs.slo import SLO


@dataclass(frozen=True)
class SubscriptionDelta:
    """One published change to a subscription's answer set.

    Attributes
    ----------
    sid : int
        The subscription the delta belongs to.
    time : float
        The notification point (index clock) that produced it.
    added : tuple of int
        Oids that entered the answer set, ascending.
    removed : tuple of int
        Oids that left the answer set, ascending.
    """

    sid: int
    time: float
    added: Tuple[int, ...] = ()
    removed: Tuple[int, ...] = ()


@dataclass
class Subscription:
    """One registered standing query and its maintained answer.

    Attributes
    ----------
    sid : int
        Registration id, unique per index.
    query : SpatioTemporalQuery
        The standing query (timeslice, window or moving).
    region : QueryRegion
        The query's normalized trapezoid, cached at registration.
    members : set of int
        The current answer set.
    pending : list of SubscriptionDelta
        Published but not yet polled deltas (bounded).
    lagged : bool
        True when the bounded queue overflowed and dropped deltas;
        cleared by :meth:`SubscriptionIndex.resync`.
    """

    sid: int
    query: SpatioTemporalQuery
    region: QueryRegion
    members: Set[int] = field(default_factory=set)
    pending: List[SubscriptionDelta] = field(default_factory=list)
    lagged: bool = False


class SubscriptionIndex:
    """Maintain standing range queries over a stream of object events.

    Parameters
    ----------
    space : float, optional
        Extent of the (assumed square) data space the grid covers;
        coordinates outside clamp into edge cells, which is
        conservative, never incorrect.
    cells : int, optional
        Grid resolution per dimension.
    dims : int, optional
        Dimensionality of the data space.
    max_pending : int, optional
        Per-subscription bound on queued deltas; overflow drops the
        oldest delta and marks the subscription lagged.
    registry : MetricsRegistry, optional
        Receives the ``subs.*`` counters (adds, removes, expirations,
        delivered, dropped) and the ``subs.standing`` gauge.
    """

    def __init__(
        self,
        space: float = 1000.0,
        cells: int = 16,
        dims: int = 2,
        max_pending: int = 1024,
        registry=None,
    ):
        if space <= 0.0:
            raise ValueError(f"space must be positive, got {space}")
        if cells < 1:
            raise ValueError(f"cells must be positive, got {cells}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.space = space
        self.cells = cells
        self.dims = dims
        self.max_pending = max_pending
        self.now = 0.0
        self._subs: Dict[int, Subscription] = {}
        self._next_sid = 0
        #: cell coordinates -> sids whose swept rect covers the cell
        self._grid: Dict[Tuple[int, ...], Set[int]] = {}
        #: oid -> (point, generation); generation invalidates heap entries
        self._live: Dict[int, Tuple[MovingPoint, int]] = {}
        self._generation = 0
        #: oid -> sids currently holding it, for O(1) removal fan-out
        self._membership: Dict[int, Set[int]] = {}
        #: (t_exp, generation, oid) min-heap driving the expiry sweep
        self._expiry: List[Tuple[float, int, int]] = []
        #: envelope of every registered window, for trajectory sweeps
        self._env_t1 = math.inf
        self._env_t2 = -math.inf
        self.adds = 0
        self.removes = 0
        self.expirations = 0
        self.delivered = 0
        self.dropped = 0
        self._c_adds = self._c_removes = self._c_exp = None
        self._c_delivered = self._c_dropped = None
        if registry is not None:
            self._c_adds = registry.counter("subs.adds")
            self._c_removes = registry.counter("subs.removes")
            self._c_exp = registry.counter("subs.expirations")
            self._c_delivered = registry.counter("subs.delivered")
            self._c_dropped = registry.counter("subs.dropped")
            registry.gauge("subs.standing", fn=lambda: len(self._subs))

    def __len__(self) -> int:
        """Standing subscriptions currently registered."""
        return len(self._subs)

    # -- grid plumbing -------------------------------------------------------

    def _cell_index(self, coordinate: float) -> int:
        index = int(coordinate / self.space * self.cells)
        return min(max(index, 0), self.cells - 1)

    def _cell_range(self, lo: float, hi: float) -> range:
        return range(self._cell_index(lo), self._cell_index(hi) + 1)

    def _swept_rect(self, region: QueryRegion) -> List[Tuple[float, float]]:
        """Static per-dim envelope of the region over its whole window."""
        rect = []
        for d in range(region.dims):
            lo = min(region.lower_at(d, region.t1),
                     region.lower_at(d, region.t2))
            hi = max(region.upper_at(d, region.t1),
                     region.upper_at(d, region.t2))
            rect.append((lo, hi))
        return rect

    def _cells_of(self, rect: Sequence[Tuple[float, float]]):
        return itertools.product(
            *(self._cell_range(lo, hi) for lo, hi in rect)
        )

    def _candidates(self, point: MovingPoint) -> Set[int]:
        """Sids whose swept rect can meet the point's trajectory envelope.

        The envelope spans the registered windows' union clipped at the
        point's expiration; an empty intersection means no standing
        window can observe the point at all.
        """
        t_lo = self._env_t1
        t_hi = min(self._env_t2, point.t_exp)
        if t_hi < t_lo:
            return set()
        rect = []
        for d in range(point.dims):
            a = point.pos[d] + point.vel[d] * (t_lo - point.t_ref)
            b = point.pos[d] + point.vel[d] * (t_hi - point.t_ref)
            rect.append((min(a, b), max(a, b)))
        found: Set[int] = set()
        for cell in self._cells_of(rect):
            found.update(self._grid.get(cell, ()))
        return found

    # -- registration --------------------------------------------------------

    def register(self, query: SpatioTemporalQuery) -> int:
        """Register a standing query and publish its initial answer.

        The current matches arrive as the subscription's first delta
        (all adds), so replaying a subscription's deltas from an empty
        set always reconstructs its answer.

        Parameters
        ----------
        query : SpatioTemporalQuery
            A timeslice, window or moving query to keep satisfied.

        Returns
        -------
        int
            The subscription id for :meth:`poll` / :meth:`answer`.
        """
        sid = self._next_sid
        self._next_sid += 1
        sub = Subscription(sid, query, query.region())
        self._subs[sid] = sub
        for cell in self._cells_of(self._swept_rect(sub.region)):
            self._grid.setdefault(cell, set()).add(sid)
        self._env_t1 = min(self._env_t1, sub.region.t1)
        self._env_t2 = max(self._env_t2, sub.region.t2)
        initial = sorted(
            oid for oid, (point, _) in self._live.items()
            if not point.t_exp < self.now
            and region_matches_point(sub.region, point)
        )
        for oid in initial:
            sub.members.add(oid)
            self._membership.setdefault(oid, set()).add(sid)
        if initial:
            self.adds += len(initial)
            if self._c_adds is not None:
                self._c_adds.inc(len(initial))
            self._publish(sub, SubscriptionDelta(
                sid, self.now, added=tuple(initial)
            ))
        return sid

    def unregister(self, sid: int) -> None:
        """Drop a subscription and every grid/membership reference to it.

        Parameters
        ----------
        sid : int
            The subscription to remove; unknown ids raise ``KeyError``.
        """
        sub = self._subs.pop(sid)
        for cell in self._cells_of(self._swept_rect(sub.region)):
            bucket = self._grid.get(cell)
            if bucket is not None:
                bucket.discard(sid)
                if not bucket:
                    del self._grid[cell]
        for oid in sub.members:
            holders = self._membership.get(oid)
            if holders is not None:
                holders.discard(sid)
                if not holders:
                    del self._membership[oid]
        if self._subs:
            self._env_t1 = min(s.region.t1 for s in self._subs.values())
            self._env_t2 = max(s.region.t2 for s in self._subs.values())
        else:
            self._env_t1, self._env_t2 = math.inf, -math.inf

    # -- notifications -------------------------------------------------------

    def advance_to(self, now: float) -> int:
        """Advance the subscription clock, sweeping expired objects.

        Objects whose expiration time precedes ``now`` leave every
        answer set they were in (with removal deltas); an object is
        still visible at its exact expiration instant, matching the
        tree's convention.

        Parameters
        ----------
        now : float
            The new clock value; moves forward only.

        Returns
        -------
        int
            Objects expired by this sweep.
        """
        if now > self.now:
            self.now = now
        expired = 0
        while self._expiry and self._expiry[0][0] < self.now:
            _, generation, oid = heapq.heappop(self._expiry)
            entry = self._live.get(oid)
            if entry is None or entry[1] != generation:
                continue  # superseded by a later report or a delete
            del self._live[oid]
            self._remove_everywhere(oid)
            expired += 1
        if expired:
            self.expirations += expired
            if self._c_exp is not None:
                self._c_exp.inc(expired)
        return expired

    def notify_insert(self, oid: int, point: MovingPoint) -> int:
        """An object reported (or re-reported) its motion parameters.

        Re-notifying an identical report is idempotent — membership
        diffs suppress empty deltas — so an at-least-once driver (crash
        redo, backlog replay) never double-publishes.

        Parameters
        ----------
        oid : int
            The reporting object.
        point : MovingPoint
            Its new motion parameters.

        Returns
        -------
        int
            Subscriptions whose answers changed.
        """
        self._generation += 1
        self._live[oid] = (point, self._generation)
        if math.isfinite(point.t_exp):
            heapq.heappush(
                self._expiry, (point.t_exp, self._generation, oid)
            )
        visible = not point.t_exp < self.now
        matches: Set[int] = set()
        if visible:
            matches = {
                sid for sid in self._candidates(point)
                if region_matches_point(self._subs[sid].region, point)
            }
        holders = self._membership.get(oid, set())
        touched = 0
        for sid in sorted(matches - holders):
            sub = self._subs[sid]
            sub.members.add(oid)
            self._membership.setdefault(oid, set()).add(sid)
            self.adds += 1
            if self._c_adds is not None:
                self._c_adds.inc()
            self._publish(sub, SubscriptionDelta(
                sid, self.now, added=(oid,)
            ))
            touched += 1
        for sid in sorted(holders - matches):
            sub = self._subs[sid]
            sub.members.discard(oid)
            self._membership[oid].discard(sid)
            self.removes += 1
            if self._c_removes is not None:
                self._c_removes.inc()
            self._publish(sub, SubscriptionDelta(
                sid, self.now, removed=(oid,)
            ))
            touched += 1
        if oid in self._membership and not self._membership[oid]:
            del self._membership[oid]
        return touched

    def notify_delete(self, oid: int) -> int:
        """An object left the service; remove it from every answer set.

        Deleting an unknown (or already-removed) oid is a no-op, so
        at-least-once redelivery stays safe.

        Parameters
        ----------
        oid : int
            The departing object.

        Returns
        -------
        int
            Subscriptions whose answers changed.
        """
        self._live.pop(oid, None)
        return self._remove_everywhere(oid)

    def _remove_everywhere(self, oid: int) -> int:
        holders = self._membership.pop(oid, None)
        if not holders:
            return 0
        for sid in sorted(holders):
            sub = self._subs[sid]
            sub.members.discard(oid)
            self.removes += 1
            if self._c_removes is not None:
                self._c_removes.inc()
            self._publish(sub, SubscriptionDelta(
                sid, self.now, removed=(oid,)
            ))
        return len(holders)

    # -- delivery ------------------------------------------------------------

    def _publish(self, sub: Subscription, delta: SubscriptionDelta) -> None:
        sub.pending.append(delta)
        if len(sub.pending) > self.max_pending:
            sub.pending.pop(0)
            sub.lagged = True
            self.dropped += 1
            if self._c_dropped is not None:
                self._c_dropped.inc()

    def poll(self, sid: int) -> List[SubscriptionDelta]:
        """Drain a subscription's queued deltas, in publication order.

        A lagged subscription (its bounded queue overflowed) keeps
        returning deltas, but replaying them is no longer sufficient —
        call :meth:`resync` to re-baseline.

        Parameters
        ----------
        sid : int
            The subscription to drain.

        Returns
        -------
        list of SubscriptionDelta
            Every delta published since the last poll.
        """
        sub = self._subs[sid]
        drained = sub.pending
        sub.pending = []
        self.delivered += len(drained)
        if self._c_delivered is not None:
            self._c_delivered.inc(len(drained))
        return drained

    def answer(self, sid: int) -> Tuple[int, ...]:
        """The subscription's current answer set, ascending.

        Parameters
        ----------
        sid : int
            The subscription to read.

        Returns
        -------
        tuple of int
            Every oid currently matching the standing query.
        """
        return tuple(sorted(self._subs[sid].members))

    def is_lagged(self, sid: int) -> bool:
        """Whether the subscription lost deltas to queue overflow.

        Parameters
        ----------
        sid : int
            The subscription to check.

        Returns
        -------
        bool
            True until :meth:`resync` re-baselines the consumer.
        """
        return self._subs[sid].lagged

    def resync(self, sid: int) -> Tuple[int, ...]:
        """Re-baseline a consumer: full answer, queue cleared, lag reset.

        Parameters
        ----------
        sid : int
            The subscription to re-baseline.

        Returns
        -------
        tuple of int
            The full current answer set, ascending.
        """
        sub = self._subs[sid]
        sub.pending = []
        sub.lagged = False
        return self.answer(sid)

    # -- introspection -------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Objects currently mirrored as live (expired ones swept out)."""
        return len(self._live)

    def live_entries(self) -> List[Tuple[MovingPoint, int]]:
        """The mirrored live population as ``(point, oid)`` pairs."""
        return [(point, oid) for oid, (point, _) in self._live.items()]

    def stats(self) -> Dict[str, int]:
        """Cumulative counters as a plain dict (for reports)."""
        return {
            "subscriptions": len(self._subs),
            "adds": self.adds,
            "removes": self.removes,
            "expirations": self.expirations,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }


def subscription_slo(target: float = 0.99) -> SLO:
    """The delta-delivery objective for subscription-serving frontends.

    Good events are delivered deltas, bad events are deltas dropped by
    bounded-queue overflow (each one forces a consumer resync).

    Parameters
    ----------
    target : float, optional
        Required delivery ratio.

    Returns
    -------
    SLO
        An objective over the ``subs.delivered`` / ``subs.dropped``
        counters, for a frontend's :class:`~repro.obs.slo.SLOTracker`.
    """
    return SLO(
        name="subscription_delivery",
        target=target,
        good=("subs.delivered",),
        bad=("subs.dropped",),
        description="polled deltas vs deltas lost to queue overflow",
    )
