"""Degraded reads: answering queries from the last committed snapshot.

While the circuit breaker is open the storage path is considered
unhealthy, but queries still deserve an answer.  The
:class:`DegradedReader` serves them from the last checkpoint's
:class:`~repro.core.tree.TreeSnapshot` (or forest equivalent) — pure
in-memory float64 state, no storage I/O — patched with an *overlay* of
every write that arrived since the outage began, so degraded answers see
the frontend's own backlogged writes.

Staleness is bounded by construction: the snapshot is at most one
checkpoint interval plus one breaker outage old, and every answer
reports its own staleness so the soak harness can assert the bound.
The correctness envelope is the one TR-82's expiration semantics give
us: relative to a fault-free oracle, a degraded answer can only *add*
objects whose previously-reported motion still matched the query within
its expiration window — it never invents positions, and anything it
misses was reported after the snapshot was cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry.intersection import region_matches_point
from ..geometry.kinematics import MovingPoint
from ..geometry.queries import SpatioTemporalQuery


@dataclass(frozen=True)
class DegradedAnswer:
    """A query answer produced from snapshot-plus-overlay state.

    Attributes
    ----------
    oids : tuple of int
        Matching object ids, sorted.
    staleness : float
        Index-clock age of the underlying snapshot at answer time.
    snapshot_op_index : int
        Workload operation index up to which the snapshot is current.
    overlay_oids : tuple of int
        Object ids whose match came from the post-snapshot overlay
        rather than the snapshot itself.
    evidence : dict
        For every answered oid, the motion point that matched — the
        soak harness checks each against the oracle's report history.
    """

    oids: Tuple[int, ...]
    staleness: float
    snapshot_op_index: int
    overlay_oids: Tuple[int, ...] = ()
    evidence: Dict[int, MovingPoint] = field(default_factory=dict)


class DegradedReader:
    """Serve queries from a snapshot patched with backlogged writes.

    Parameters
    ----------
    snapshot : TreeSnapshot or ForestSnapshot
        Committed state captured at the last checkpoint.
    snapshot_op_index : int
        Workload operation index the snapshot reflects (for staleness
        reporting and oracle alignment in the soak harness).
    """

    def __init__(self, snapshot, snapshot_op_index: int):
        self.snapshot = snapshot
        self.snapshot_op_index = snapshot_op_index
        #: oid -> latest post-snapshot point, or None once deleted.
        self.overlay: Dict[int, Optional[MovingPoint]] = {}

    def rebase(self, snapshot, snapshot_op_index: int) -> None:
        """Swap in a fresher committed base, keeping the overlay.

        The overlay holds strictly newer per-oid information than any
        committed base, so it shadows the new snapshot exactly as it
        shadowed the old one: a base entry for an overlaid oid is
        ignored whether the base predates the overlay write (stale) or
        already contains it (identical).  This is how the breaker's
        degraded-read path generalizes from "last checkpoint" to "live
        follower" — the frontend rebases whenever a replica has applied
        past the checkpoint snapshot.
        """
        self.snapshot = snapshot
        self.snapshot_op_index = snapshot_op_index

    def apply(self, atom: tuple) -> None:
        """Fold one backlogged write atom into the overlay.

        Parameters
        ----------
        atom : tuple
            ``("insert", time, oid, point)`` or
            ``("delete", time, oid, point)`` — the same atomic-action
            tuples the frontend drives the index with.
        """
        kind, _, oid, point = atom
        if kind == "insert":
            self.overlay[oid] = point
        elif kind == "delete":
            self.overlay[oid] = None
        else:  # pragma: no cover - queries are never backlogged
            raise ValueError(f"cannot overlay non-write atom {kind!r}")

    def query(self, query: SpatioTemporalQuery, now: float) -> DegradedAnswer:
        """Answer ``query`` from the snapshot, shadowed by the overlay.

        Snapshot entries for overlaid oids are ignored — the overlay
        holds strictly newer information — and overlay points are
        matched with the same clipped-at-expiration predicate the live
        tree uses, so degraded answers obey identical expiration
        semantics.
        """
        region = query.region()
        evidence: Dict[int, MovingPoint] = {}
        for point, oid in self.snapshot.leaf_entries():
            if oid in self.overlay:
                continue
            if region_matches_point(region, point):
                evidence[oid] = point
        overlay_hits: List[int] = []
        for oid, point in self.overlay.items():
            if point is not None and region_matches_point(region, point):
                evidence[oid] = point
                overlay_hits.append(oid)
        return DegradedAnswer(
            oids=tuple(sorted(evidence)),
            staleness=now - self.snapshot.taken_at,
            snapshot_op_index=self.snapshot_op_index,
            overlay_oids=tuple(sorted(overlay_hits)),
            evidence=evidence,
        )
