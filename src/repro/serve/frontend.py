"""The overload-safe serving frontend.

:class:`ServiceFrontend` wraps a :class:`~repro.core.tree.MovingObjectTree`
or :class:`~repro.core.forest.PartitionedMovingObjectForest` and processes
a workload operation stream as a traffic-shaped request flow:

* **Admission.**  Requests arrive on a virtual serving clock (see
  :mod:`repro.workloads.pacing`), wait in a bounded
  :class:`~repro.serve.queue.AdmissionQueue` and are served FIFO by a
  single logical server with a fixed per-request service time.  A full
  queue sheds per the configured policy; queries carry deadlines derived
  from the workload clock and are abandoned — never executed — once they
  cannot finish in time.
* **Retries.**  Transient storage faults
  (:class:`~repro.storage.faults.TransientIOError`) are retried under a
  :class:`~repro.serve.retry.RetryPolicy`: capped exponential backoff
  with seeded jitter, a per-request attempt cap and a per-run budget.
* **Degradation.**  A :class:`~repro.serve.breaker.CircuitBreaker`
  trips after consecutive attempt failures; while it is open, queries
  are answered from the last committed checkpoint snapshot through a
  :class:`~repro.serve.degraded.DegradedReader` (tagged ``degraded``
  with their staleness) and writes are backlogged.  After a cooldown
  the frontend probes: it re-drives any pending commit, replays the
  write backlog through the normal WAL path, and closes the breaker on
  success.
* **Crash recovery.**  A :class:`~repro.storage.faults.SimulatedCrash`
  kills the store; the frontend reopens it via the caller-supplied
  ``reopen`` callback (running WAL recovery) and re-drives exactly the
  atoms whose commits did not survive, so the served history stays
  equivalent to a fault-free run.

Two clocks run side by side and never mix: the *index* clock always
advances to each operation's workload timestamp (so answers are
comparable to a fault-free oracle), while the *serving* clock models
queueing, service, backoff and cooldown delays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import LATENCY_BUCKETS, NULL_REGISTRY
from ..obs.slo import SLOTracker, default_serve_slos
from ..obs.trace import NULL_TRACER
from ..storage.faults import SimulatedCrash, TransientIOError
from ..storage.pagefile import FilePageStore
from ..workloads.base import DeleteOp, InsertOp, Operation, QueryOp, UpdateOp
from ..workloads.pacing import ArrivalPacer
from .breaker import OPEN, CircuitBreaker, HealthMonitor
from .degraded import DegradedReader
from .queue import SHED_QUERIES_FIRST, AdmissionQueue, Request
from .retry import RetryPolicy
from .subscriptions import subscription_slo

#: Outcome statuses a request can end with.
STATUSES = ("ok", "degraded", "shed", "timeout", "failed")


@dataclass(frozen=True)
class FrontendConfig:
    """Tunable parameters of :class:`ServiceFrontend`.

    Parameters
    ----------
    queue_capacity : int
        Bounded admission queue size.
    shed_policy : str
        One of :data:`~repro.serve.queue.SHED_POLICIES`.
    service_time : float
        Virtual seconds one request occupies the server.
    query_deadline : float
        Relative deadline for queries, from arrival; a query that
        cannot start executing by ``arrival + query_deadline -
        service_time`` times out unexecuted.  Writes have no deadline.
    retry : RetryPolicy
        Backoff policy for transient storage faults.
    failure_threshold : int
        Consecutive attempt failures that trip the breaker.
    cooldown : float
        Virtual seconds the breaker stays open before a probe.
    checkpoint_interval : int
        Served requests between checkpoint-plus-snapshot refreshes
        (durable indexes only).
    backlog_capacity : int
        Maximum write *atoms* held while the breaker is open; overflow
        sheds the arriving write.
    seed : int
        Seed for the backoff-jitter RNG.
    batch_queries : int
        Maximum queries served per tick.  Above 1, a run of already-
        arrived queries at the head of the admission queue is answered
        through the index's ``query_batch`` (one shared traversal, one
        ``service_time`` for the whole run); the default of 1 keeps the
        one-request-per-tick serving model bit-identical to earlier
        revisions.
    """

    queue_capacity: int = 64
    shed_policy: str = SHED_QUERIES_FIRST
    service_time: float = 0.05
    query_deadline: float = 5.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_threshold: int = 3
    cooldown: float = 5.0
    checkpoint_interval: int = 25
    backlog_capacity: int = 256
    seed: int = 0
    batch_queries: int = 1


@dataclass
class QueryOutcome:
    """What the frontend answered (or didn't) for one query request.

    Attributes
    ----------
    index : int
        The request's position in the workload stream.
    time : float
        The query's workload timestamp.
    status : str
        One of :data:`STATUSES`.
    answer : tuple of int or None
        Sorted matching oids; ``None`` unless status is ``ok`` or
        ``degraded``.
    degraded : bool
        Whether the answer came from the snapshot path.
    staleness : float
        Snapshot age at answer time (0.0 for fresh answers).
    snapshot_op_index : int
        Stream index the backing snapshot was current through
        (degraded answers only).
    overlay_oids : tuple of int
        Oids answered from the post-snapshot overlay (degraded only).
    evidence : dict
        Degraded answers: the motion point that matched, per oid.
    source : str
        Where the answer's base state came from: ``live`` for healthy
        index answers, ``snapshot`` for checkpoint-backed degraded
        answers, ``replica`` when the degraded reader was rebased onto
        a fresher live-follower state.
    """

    index: int
    time: float
    status: str
    answer: Optional[Tuple[int, ...]] = None
    degraded: bool = False
    staleness: float = 0.0
    snapshot_op_index: int = 0
    overlay_oids: Tuple[int, ...] = ()
    evidence: Dict[int, object] = field(default_factory=dict)
    source: str = "live"


@dataclass
class ServiceReport:
    """Counters and per-query outcomes of one :meth:`ServiceFrontend.run`.

    All counts are plain integers mirrored into the metrics registry;
    the report is the source of truth the soak harness asserts against.
    """

    admitted: int = 0
    served_queries: int = 0
    served_writes: int = 0
    shed_queries: int = 0
    shed_writes: int = 0
    retries: int = 0
    retry_successes: int = 0
    retry_exhausted: int = 0
    deadline_timeouts: int = 0
    trips: int = 0
    probes: int = 0
    probe_failures: int = 0
    recoveries: int = 0
    degraded_answers: int = 0
    backlog_enqueued: int = 0
    backlog_replayed: int = 0
    backlog_peak: int = 0
    backlog_remaining: int = 0
    kills: int = 0
    reopens: int = 0
    promotions: int = 0
    replica_answers: int = 0
    checkpoints: int = 0
    failed_queries: int = 0
    max_staleness: float = 0.0
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def summary(self) -> str:
        """One line of the headline counters."""
        return (
            f"served {self.served_queries}q+{self.served_writes}w "
            f"(degraded {self.degraded_answers}, shed "
            f"{self.shed_queries}q/{self.shed_writes}w, timeout "
            f"{self.deadline_timeouts}); retries {self.retries}, trips "
            f"{self.trips}, recoveries {self.recoveries}, kills "
            f"{self.kills}; backlog {self.backlog_replayed}/"
            f"{self.backlog_enqueued} replayed"
        )


def _atoms_of(op: Operation) -> List[tuple]:
    """Split one workload write into single-commit index atoms."""
    if isinstance(op, InsertOp):
        return [("insert", op.time, op.oid, op.point)]
    if isinstance(op, UpdateOp):
        return [
            ("delete", op.time, op.oid, op.old_point),
            ("insert", op.time, op.oid, op.new_point),
        ]
    if isinstance(op, DeleteOp):
        return [("delete", op.time, op.oid, op.point)]
    raise TypeError(f"not a write operation: {op!r}")


class ServiceFrontend:
    """Serve a workload stream against an index, riding out faults.

    Parameters
    ----------
    index : MovingObjectTree or PartitionedMovingObjectForest
        The wrapped index.  With no faults and default pacing the
        frontend drives it exactly as the plain workload runner would.
    config : FrontendConfig, optional
        Serving parameters; defaults throughout.
    registry : MetricsRegistry, optional
        Receives ``serve.*`` counters and histograms.
    tracer : Tracer, optional
        Receives retry spans and trip/probe/recovery/kill events.
    injector : FaultInjector, optional
        The injector armed on the index's stores; the frontend manages
        its read-guard arming (reads are only guarded during queries).
    reopen : callable, optional
        Zero-argument callback invoked after a simulated crash; must
        return ``(new_index, new_injector)`` with recovery already run.
        Without it a crash propagates.
    slos : sequence of SLO, optional
        Objectives for the frontend's :class:`~repro.obs.slo.SLOTracker`;
        defaults to :func:`~repro.obs.slo.default_serve_slos`.  The
        tracker only exists when a real ``registry`` is given — the
        disabled path stays a ``None``-guard no-op.
    subscriptions : SubscriptionIndex, optional
        Standing-query index notified after every successfully applied
        write atom (and advanced with the index clock, sweeping
        expirations).  Notifications are idempotent, so the frontend's
        at-least-once redo paths (crash recovery, backlog replay) never
        double-publish a delta.  With a registry, the tracker
        additionally watches the
        :func:`~repro.serve.subscriptions.subscription_slo` delivery
        objective.
    replication : ReplicaLink, optional
        A :class:`~repro.replication.link.ReplicaLink` ticked once per
        served request (shipping poll, staleness accounting, online
        WAL maintenance).  When present it upgrades two paths: degraded
        reads rebase onto the follower's state whenever it is fresher
        than the last checkpoint snapshot (freshest wins), and a crash
        prefers promoting the follower over reopening the dead store —
        ``reopen`` becomes the fallback for when no follower is ready.
    """

    def __init__(
        self,
        index,
        config: Optional[FrontendConfig] = None,
        *,
        registry=None,
        tracer=None,
        injector=None,
        reopen=None,
        slos=None,
        subscriptions=None,
        replication=None,
    ):
        self.index = index
        self.config = config if config is not None else FrontendConfig()
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector
        self._reopen = reopen
        self._rng = random.Random(self.config.seed)
        self._queue = AdmissionQueue(
            self.config.queue_capacity, self.config.shed_policy
        )
        self._breaker = CircuitBreaker(
            self.config.failure_threshold, self.config.cooldown
        )
        self.health = HealthMonitor()
        self.report = ServiceReport()
        self._reader: Optional[DegradedReader] = None
        self._backlog: List[tuple] = []
        self._pending: List[Tuple[tuple, int]] = []
        self._vfree = 0.0
        self._retry_budget = self.config.retry.budget
        self._snapshot = None
        self._snapshot_op_index = 0
        self._served = 0
        self._since_checkpoint = 0
        self._disarm_reads()
        reg = self._registry
        self._c = {
            name: reg.counter(f"serve.{name}")
            for name in (
                "admitted", "shed_queries", "shed_writes", "retries",
                "retry_exhausted", "deadline_timeouts", "breaker_trips",
                "breaker_probes", "breaker_recoveries", "degraded_answers",
                "backlog_enqueued", "backlog_replayed", "kills", "reopens",
                "queries_ok", "failed_queries", "promotions",
                "replica_answers",
            )
        }
        self._queue_depth = reg.histogram("serve.queue_depth")
        self._queue_wait = reg.histogram("serve.queue_wait", kind="latency")
        self._retry_latency = reg.histogram(
            "serve.retry_latency", bounds=LATENCY_BUCKETS
        )
        reg.gauge("serve.backlog", fn=lambda: len(self._backlog))
        reg.gauge("serve.breaker_open", fn=lambda: int(self._is_open))
        self._staleness = reg.gauge("serve.staleness")
        # SLO accounting exists only alongside a real registry: the
        # tracker reads the serve.* counters straight off it, and the
        # registry-less path stays the zero-overhead no-op.
        self._subs = subscriptions
        self._replication = replication
        self._slo: Optional[SLOTracker] = None
        if registry is not None:
            slos = list(
                slos if slos is not None else default_serve_slos()
            )
            if subscriptions is not None:
                slos.append(subscription_slo())
            if replication is not None:
                slos.extend(replication.slos())
            self._slo = SLOTracker(registry, slos)

    # -- plumbing -----------------------------------------------------------

    @property
    def breaker(self) -> CircuitBreaker:
        """The frontend's circuit breaker (read-mostly introspection)."""
        return self._breaker

    @property
    def slo_tracker(self) -> Optional[SLOTracker]:
        """The frontend's SLO tracker (``None`` without a registry)."""
        return self._slo

    def slo_status(self) -> Dict[str, Dict[str, object]]:
        """Current per-objective SLO status (empty without a registry).

        Maps objective name to its
        :meth:`~repro.obs.slo.SLOStatus.to_dict` export — the payload
        ``repro soak`` asserts on and ``repro top`` renders.
        """
        if self._slo is None:
            return {}
        return self._slo.to_dict()

    def _tick_slo(self) -> None:
        """Advance the SLO burn window by one served-request checkpoint."""
        if self._slo is not None:
            self._slo.checkpoint()

    def _maintain(self, serving_now: float, force: bool = False) -> None:
        """Tick the replication link between requests.

        The tick interleaves shipping polls and one online-maintenance
        step with serving; a simulated kill during maintenance (the
        injector counts those writes like any others) is a primary
        death and goes through the normal crash path — which, with a
        ready follower, means failover.
        """
        link = self._replication
        if link is None:
            return
        try:
            link.tick(force=force)
        except SimulatedCrash:
            self._handle_crash(serving_now)

    @property
    def _is_open(self) -> bool:
        return self._breaker.state == OPEN

    def _stores(self):
        local = getattr(self.index, "local_stores", None)
        if local is not None:
            # Sharded indexes keep their page stores in worker
            # processes; commit bookkeeping happens there, not here.
            return local()
        if hasattr(self.index, "trees"):
            return [tree.disk for tree in self.index.trees]
        return [self.index.disk]

    @property
    def _durable(self) -> bool:
        return all(
            isinstance(store, FilePageStore) for store in self._stores()
        )

    def _op_seq_mark(self) -> int:
        if not self._durable:
            return 0
        return sum(store.op_seq for store in self._stores())

    def _disarm_reads(self) -> None:
        if self._injector is not None:
            self._injector.reads_armed = False

    def _arm_reads(self) -> None:
        if self._injector is not None:
            self._injector.reads_armed = True

    # -- snapshots and degraded state ---------------------------------------

    def _refresh_snapshot(self) -> None:
        """Checkpoint (durable only) and re-cut the degraded-read snapshot.

        Skipped wholesale when the checkpoint faults transiently — the
        previous snapshot stays valid (it is merely staler).
        """
        if self._durable:
            try:
                self.index.checkpoint()
            except TransientIOError:
                return
            self.report.checkpoints += 1
        self._snapshot = self.index.snapshot()
        self._snapshot_op_index = self._served
        self._since_checkpoint = 0

    def _open_degraded(self, now: float) -> None:
        """Enter degraded mode: build the snapshot-plus-overlay reader."""
        if self._reader is None:
            self._reader = DegradedReader(
                self._snapshot, self._snapshot_op_index
            )
        self.report.trips += 1
        self._c["breaker_trips"].inc()
        self._tracer.event("serve.trip", at=now)

    # -- atom application with crash/pending bookkeeping --------------------

    def _drive(self, atom: tuple) -> None:
        """Apply one atom to the live index at its workload time.

        A successfully applied atom also notifies the subscription
        index (when one is attached): the clock advance sweeps
        expirations, then the atom itself publishes add/remove deltas.
        A faulted apply notifies nothing — the atom re-drives later and
        notification is idempotent anyway.
        """
        kind, time, oid, point = atom
        self.index.clock.advance_to(time)
        if kind == "insert":
            self.index.insert(oid, point)
        else:
            self.index.delete(oid, point)
        if self._subs is not None:
            self._subs.advance_to(time)
            if kind == "insert":
                self._subs.notify_insert(oid, point)
            else:
                self._subs.notify_delete(oid)

    def _apply_atom(self, atom: tuple, serving_now: float) -> None:
        """Apply and commit one atom, surviving crashes.

        Raises
        ------
        TransientIOError
            The atom is applied in memory but its commit is pending;
            it has been recorded so a later commit (or crash redo)
            lands it exactly once.
        """
        mark = self._op_seq_mark()
        try:
            self._drive(atom)
        except TransientIOError:
            self._pending.append((atom, mark))
            raise
        except SimulatedCrash:
            self._pending.append((atom, mark))
            self._handle_crash(serving_now)
            return
        # A successful op group-commits everything staged, including
        # any previously pending images merged into the same batch.
        self._pending.clear()

    def _commit_pending(self, serving_now: float) -> None:
        """Re-drive any pending commit on every store.

        Raises
        ------
        TransientIOError
            The commit faulted again; everything stays pending.
        """
        try:
            for store in self._stores():
                store.commit()
        except SimulatedCrash:
            self._handle_crash(serving_now)
            return
        self._pending.clear()

    def _handle_crash(self, serving_now: float) -> None:
        """Take over after a simulated kill and re-drive lost atoms.

        With a ready replica attached, failover wins: the follower is
        promoted into the primary role (zero committed writes lost —
        the promotion path drains and verifies the committed prefix)
        and ``reopen`` is never consulted.  Otherwise the dead store is
        reopened through the caller's callback, as before.  Either way
        the atoms whose commits did not survive are re-driven against
        the new incarnation.
        """
        self.report.kills += 1
        self._c["kills"].inc()
        self._tracer.event("serve.kill", at=serving_now)
        link = self._replication
        failing_over = link is not None and link.can_failover
        if not failing_over and self._reopen is None:
            raise SimulatedCrash("no reopen callback configured")
        for store in self._stores():
            if isinstance(store, FilePageStore):
                store.abandon()
        if failing_over:
            self.index, self._injector = link.failover()
            self.report.promotions += 1
            self._c["promotions"].inc()
            self._tracer.event("serve.failover", at=serving_now)
        else:
            self.index, self._injector = self._reopen()
            self.report.reopens += 1
            self._c["reopens"].inc()
        self._disarm_reads()
        recovered = self._op_seq_mark()
        redo = [(atom, m) for atom, m in self._pending if recovered <= m]
        self._pending = []
        for atom, _ in redo:
            # May itself fault transiently (re-pending the atom and
            # propagating) or crash again (recursing, bounded by the
            # injector's finite kill schedule).
            self._apply_atom(atom, serving_now)
        # The old snapshot describes pages of the dead incarnation's
        # store; content-wise it is still a committed prefix, but after
        # a clean recovery a fresh cut is both newer and cheaper than
        # reasoning about staleness across incarnations.
        if not self._is_open:
            self._refresh_snapshot()

    # -- probe and backlog replay -------------------------------------------

    def _attempt_probe(self, serving_now: float) -> None:
        """Half-open probe: land pending commits, replay the backlog."""
        self._breaker.begin_probe()
        self.report.probes += 1
        self._c["breaker_probes"].inc()
        self._tracer.event("serve.probe", at=serving_now)
        try:
            self._commit_pending(serving_now)
            while self._backlog:
                atom = self._backlog[0]
                self._apply_atom(atom, serving_now)
                self._backlog.pop(0)
                self.report.backlog_replayed += 1
                self._c["backlog_replayed"].inc()
        except TransientIOError:
            # A transiently faulted atom is applied with its commit
            # pending: it must leave the backlog now or a later replay
            # would apply it twice.  The pending commit lands it.
            if self._backlog and self._pending and (
                self._backlog[0] is self._pending[-1][0]
            ):
                self._backlog.pop(0)
                self.report.backlog_replayed += 1
                self._c["backlog_replayed"].inc()
            self._breaker.probe_failed(serving_now)
            self.report.probe_failures += 1
            return
        self._breaker.probe_succeeded()
        self.report.recoveries += 1
        self._c["breaker_recoveries"].inc()
        self._tracer.event("serve.recovery", at=serving_now)
        self._reader = None
        self._refresh_snapshot()

    # -- the serving loop ---------------------------------------------------

    def run(
        self,
        ops: Sequence[Operation],
        arrivals: Optional[Sequence[float]] = None,
        pacer: Optional[ArrivalPacer] = None,
    ) -> ServiceReport:
        """Serve a whole operation stream and return the report.

        Parameters
        ----------
        ops : sequence of Operation
            The workload stream, in timestamp order.
        arrivals : sequence of float, optional
            Arrival time per operation on the serving clock; derived
            from ``pacer`` (or the identity pacing) when omitted.
        pacer : ArrivalPacer, optional
            Used to derive arrivals when none are given.
        """
        ops = list(ops)
        if arrivals is None:
            arrivals = (pacer or ArrivalPacer()).arrivals(ops)
        if len(arrivals) != len(ops):
            raise ValueError(
                f"{len(ops)} ops but {len(arrivals)} arrival times"
            )
        self._refresh_snapshot()
        for i, (op, arrival) in enumerate(zip(ops, arrivals)):
            self._drain_until(arrival)
            deadline = (
                arrival + self.config.query_deadline
                if isinstance(op, QueryOp)
                else float("inf")
            )
            request = Request(i, op, arrival, deadline)
            self._queue_depth.record(len(self._queue))
            shed = self._queue.offer(request)
            if shed is not None:
                self._record_shed(shed)
            else:
                self.report.admitted += 1
                self._c["admitted"].inc()
        self._drain_until(float("inf"))
        self._finalize()
        return self.report

    def _drain_until(self, horizon: float) -> None:
        """Serve queued requests whose start time is within ``horizon``."""
        while len(self._queue):
            start = max(self._vfree, self._queue.peek().arrival)
            if start > horizon:
                return
            batch = self._pop_query_batch(start)
            if batch is not None:
                self._serve_query_batch(batch, start)
            else:
                self._serve(self._queue.pop(), start)

    def _pop_query_batch(self, start: float) -> Optional[List[Request]]:
        """Pop up to ``batch_queries`` compatible head queries, or ``None``.

        Compatible means: the breaker is closed, the head request is a
        query, and every further query has already arrived by ``start``
        (a tick cannot serve a request from the future).  Returns
        ``None`` — leaving the queue untouched — whenever batching is
        off or the head must go through the one-request path.
        """
        limit = self.config.batch_queries
        if limit <= 1 or self._is_open or not self._queue.peek().is_query:
            return None
        batch = [self._queue.pop()]
        while len(batch) < limit and len(self._queue):
            head = self._queue.peek()
            if not head.is_query or head.arrival > start:
                break
            batch.append(self._queue.pop())
        return batch

    def _serve_query_batch(self, batch: List[Request], start: float) -> None:
        """Answer a run of queries in one serving tick.

        Requests whose deadline cannot fit ``start + service_time``
        time out individually; the survivors are answered through the
        index's ``query_batch`` (bit-identical to one-by-one queries)
        and share a single ``service_time``.  A transient fault or a
        crash during the shared traversal falls back to serving each
        survivor through the sequential path, which owns the full
        retry/degraded machinery; the failed batch attempt itself is
        not counted against the retry budget or the breaker.
        """
        live: List[Request] = []
        for request in batch:
            self._queue_wait.record(max(0.0, start - request.arrival))
            if start + self.config.service_time > request.deadline:
                self._timeout(request, start)
            else:
                live.append(request)
        if live:
            for request in live:
                self.index.clock.advance_to(request.op.time)
            try:
                self._arm_reads()
                try:
                    if hasattr(self.index, "query_batch"):
                        answers = self.index.query_batch(
                            [request.op.query for request in live]
                        )
                    else:
                        answers = [
                            self.index.query(request.op.query)
                            for request in live
                        ]
                finally:
                    self._disarm_reads()
            except SimulatedCrash:
                self._handle_crash(start)
                self._serve_queries_sequentially(live, start)
            except TransientIOError:
                self._serve_queries_sequentially(live, start)
            else:
                self._breaker.record_success()
                self.health.record(True)
                self._vfree = start + self.config.service_time
                self.report.served_queries += len(live)
                self._since_checkpoint += len(live)
                self._c["queries_ok"].inc(len(live))
                for request, answer in zip(live, answers):
                    self.report.outcomes.append(
                        QueryOutcome(
                            request.index, request.op.time, "ok",
                            answer=tuple(sorted(answer)),
                        )
                    )
        for request in batch:
            self._served = max(self._served, request.index + 1)
        self._maintain(start)
        self._tick_slo()
        if (
            not self._is_open
            and self._since_checkpoint >= self.config.checkpoint_interval
        ):
            self._refresh_snapshot()

    def _serve_queries_sequentially(
        self, requests: List[Request], start: float
    ) -> None:
        """Fallback after a failed batch attempt: one query at a time."""
        cur = start
        for request in requests:
            self._serve_query(request, cur)
            cur = max(cur, self._vfree)

    def _record_shed(self, shed: Request) -> None:
        if shed.is_query:
            self.report.shed_queries += 1
            self._c["shed_queries"].inc()
            self.report.outcomes.append(
                QueryOutcome(shed.index, shed.op.time, "shed")
            )
        else:
            self.report.shed_writes += 1
            self._c["shed_writes"].inc()
        self._tracer.event(
            "serve.shed", index=shed.index, query=shed.is_query
        )

    def _serve(self, request: Request, start: float) -> None:
        self._queue_wait.record(max(0.0, start - request.arrival))
        if self._is_open and self._breaker.ready_to_probe(start):
            self._attempt_probe(start)
        if self._is_open:
            self._serve_open(request, start)
        elif request.is_query:
            self._serve_query(request, start)
        else:
            self._serve_write(request, start)
        self._served = max(self._served, request.index + 1)
        if self._replication is not None and not request.is_query:
            # Same convention as _refresh_snapshot: the store's commit
            # sequence as of this write is current through the number
            # of requests served so far.  stream_mark() inverts this
            # when a degraded read rebases onto the replica.
            self._replication.note_write(self._op_seq_mark(), self._served)
        self._maintain(start)
        self._tick_slo()
        if (
            not self._is_open
            and self._since_checkpoint >= self.config.checkpoint_interval
        ):
            self._refresh_snapshot()

    # -- closed-breaker paths -----------------------------------------------

    def _serve_query(self, request: Request, start: float) -> None:
        now = request.op.time
        self.index.clock.advance_to(now)
        cur = start
        attempt = 1
        while True:
            if cur + self.config.service_time > request.deadline:
                self._timeout(request, cur)
                return
            try:
                self._arm_reads()
                try:
                    answer = self.index.query(request.op.query)
                finally:
                    self._disarm_reads()
            except TransientIOError:
                cur = self._retry_or_fail(request, cur, attempt)
                if cur is None:
                    return
                attempt += 1
            except SimulatedCrash:
                self._handle_crash(cur)
                # Recovery re-drove every lost write; re-run the query.
            else:
                self._breaker.record_success()
                self.health.record(True)
                self._vfree = cur + self.config.service_time
                if attempt > 1:
                    self.report.retry_successes += 1
                self.report.served_queries += 1
                self._since_checkpoint += 1
                self._c["queries_ok"].inc()
                self.report.outcomes.append(
                    QueryOutcome(
                        request.index, now, "ok",
                        answer=tuple(sorted(answer)),
                    )
                )
                return

    def _retry_or_fail(
        self, request: Request, cur: float, attempt: int
    ) -> Optional[float]:
        """Handle one transient query failure; return the next try time.

        Returns ``None`` when the request will not be retried (the
        outcome has been recorded: degraded, timeout or failed).
        """
        self.health.record(False)
        tripped = self._breaker.record_failure(cur)
        if tripped:
            self._open_degraded(cur)
            self._answer_degraded(request, cur)
            self._vfree = cur
            return None
        if (
            attempt >= self.config.retry.max_attempts
            or self._retry_budget <= 0
        ):
            self.report.retry_exhausted += 1
            self._c["retry_exhausted"].inc()
            if self._breaker.trip(cur):
                self._open_degraded(cur)
                self._answer_degraded(request, cur)
            else:
                self.report.failed_queries += 1
                self._c["failed_queries"].inc()
                self.report.outcomes.append(
                    QueryOutcome(request.index, request.op.time, "failed")
                )
            self._vfree = cur
            return None
        delay = self.config.retry.delay(attempt, self._rng)
        self._retry_budget -= 1
        self.report.retries += 1
        self._c["retries"].inc()
        self._retry_latency.record(delay)
        with self._tracer.span(
            "serve.retry", index=request.index, attempt=attempt
        ):
            pass
        return cur + delay

    def _timeout(self, request: Request, cur: float) -> None:
        self.report.deadline_timeouts += 1
        self._c["deadline_timeouts"].inc()
        self.health.record(False)
        if self._breaker.record_failure(cur):
            self._open_degraded(cur)
        self.report.outcomes.append(
            QueryOutcome(request.index, request.op.time, "timeout")
        )

    def _serve_write(self, request: Request, start: float) -> None:
        atoms = _atoms_of(request.op)
        cur = start
        for position, atom in enumerate(atoms):
            cur = self._write_atom(atom, cur)
            if self._is_open:
                # The breaker tripped under this write: whatever was
                # not applied joins the backlog behind it.
                for rest in atoms[position + 1:]:
                    self._backlog_atom(rest)
                self._vfree = cur
                self.report.served_writes += 1
                self._since_checkpoint += 1
                return
        self._vfree = cur + self.config.service_time
        self.report.served_writes += 1
        self._since_checkpoint += 1

    def _write_atom(self, atom: tuple, cur: float) -> float:
        """Apply one write atom with retries; return the serving time."""
        attempt = 1
        applied = False
        while True:
            try:
                if applied:
                    # The first fault left the atom applied in memory
                    # with its commit pending (the TransientIOError
                    # contract of _apply_atom); re-driving it would
                    # apply it twice, so retries land the commit only.
                    self._commit_pending(cur)
                else:
                    self._apply_atom(atom, cur)
            except TransientIOError:
                applied = True
                self.health.record(False)
                tripped = self._breaker.record_failure(cur)
                exhausted = (
                    attempt >= self.config.retry.max_attempts
                    or self._retry_budget <= 0
                )
                if not tripped and exhausted:
                    self.report.retry_exhausted += 1
                    self._c["retry_exhausted"].inc()
                    tripped = self._breaker.trip(cur)
                if tripped:
                    self._open_degraded(cur)
                    # The atom is applied with its commit pending (it
                    # lands with the probe's first commit), so it must
                    # not join the backlog — but degraded reads need it.
                    if self._reader is not None:
                        self._reader.apply(atom)
                    return cur
                delay = self.config.retry.delay(attempt, self._rng)
                self._retry_budget -= 1
                self.report.retries += 1
                self._c["retries"].inc()
                self._retry_latency.record(delay)
                with self._tracer.span("serve.retry", attempt=attempt):
                    pass
                cur += delay
                attempt += 1
            else:
                self._breaker.record_success()
                self.health.record(True)
                if attempt > 1:
                    self.report.retry_successes += 1
                return cur

    # -- open-breaker paths -------------------------------------------------

    def _serve_open(self, request: Request, start: float) -> None:
        if request.is_query:
            self._answer_degraded(request, start)
            return
        for atom in _atoms_of(request.op):
            self._backlog_atom(atom)
        self.report.served_writes += 1
        self._since_checkpoint += 1

    def _backlog_atom(self, atom: tuple) -> None:
        if len(self._backlog) >= self.config.backlog_capacity:
            self.report.shed_writes += 1
            self._c["shed_writes"].inc()
            return
        self._backlog.append(atom)
        self.report.backlog_enqueued += 1
        self._c["backlog_enqueued"].inc()
        self.report.backlog_peak = max(
            self.report.backlog_peak, len(self._backlog)
        )
        if self._reader is not None:
            self._reader.apply(atom)

    def _answer_degraded(self, request: Request, cur: float) -> None:
        """Answer a query from the freshest committed base available.

        Zero service cost either way.  The base is the last checkpoint
        snapshot unless a replication link holds a follower state that
        is strictly fresher *and* whose stream mark has caught up —
        then the reader rebases onto the follower (freshest wins),
        keeping its overlay: the overlay holds strictly newer per-oid
        information than any committed base.
        """
        now = request.op.time
        reader = self._reader
        if self._replication is not None:
            base = self._replication.fresher_base(reader.snapshot.taken_at)
            if (
                base is not None
                and self._replication.stream_mark() >= reader.snapshot_op_index
            ):
                reader.rebase(base, self._replication.stream_mark())
        source = (
            "replica"
            if getattr(reader.snapshot, "applied_op_seq", None) is not None
            else "snapshot"
        )
        answer = reader.query(request.op.query, now)
        self.report.degraded_answers += 1
        self._c["degraded_answers"].inc()
        if source == "replica":
            self.report.replica_answers += 1
            self._c["replica_answers"].inc()
        self.report.served_queries += 1
        self._since_checkpoint += 1
        self.report.max_staleness = max(
            self.report.max_staleness, answer.staleness
        )
        self._staleness.set(answer.staleness)
        self.report.outcomes.append(
            QueryOutcome(
                request.index, now, "degraded",
                answer=answer.oids,
                degraded=True,
                staleness=answer.staleness,
                snapshot_op_index=answer.snapshot_op_index,
                overlay_oids=answer.overlay_oids,
                evidence=answer.evidence,
                source=source,
            )
        )

    # -- shutdown -----------------------------------------------------------

    def _finalize(self, max_probes: int = 100) -> None:
        """Drain the backlog, land pending commits, final checkpoint."""
        probes = 0
        while self._is_open and (self._backlog or self._pending):
            if probes >= max_probes:
                raise RuntimeError(
                    f"backlog not drained after {max_probes} probes"
                )
            cur = max(self._vfree, self._breaker.open_until)
            self._vfree = cur
            self._attempt_probe(cur)
            probes += 1
        if self._is_open and self._breaker.ready_to_probe(
            max(self._vfree, self._breaker.open_until)
        ):
            # Nothing left to replay; close the breaker so the final
            # checkpoint runs against a healthy store.
            self._attempt_probe(max(self._vfree, self._breaker.open_until))
        for _ in range(max_probes):
            if not self._pending:
                break
            try:
                self._commit_pending(self._vfree)
            except TransientIOError:
                continue
        if self._durable:
            self._refresh_snapshot()
        # Let the replica catch up to the final committed state so the
        # run ends with a measured (not merely scheduled) staleness.
        self._maintain(self._vfree, force=True)
        self.report.backlog_remaining = len(self._backlog)
