"""Circuit breaker and health monitor for the serving frontend.

The breaker watches per-attempt outcomes against the storage layer.  A
run of consecutive failures (transient faults, deadline timeouts) trips
it ``CLOSED -> OPEN``: reads flip to the degraded snapshot path and
writes are backlogged, so a struggling store stops absorbing traffic.
After a cooldown the breaker goes ``HALF_OPEN`` and the frontend sends
one probe through the real path; success (including a full backlog
replay) closes the breaker, failure re-opens it for another cooldown.

The :class:`HealthMonitor` is a passive sliding window over the same
outcomes, exposing an error rate for gauges and reports — it informs
observability, while the breaker alone decides state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

#: Breaker state names.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip on consecutive failures; recover via cooldown and probe.

    Parameters
    ----------
    failure_threshold : int
        Consecutive attempt failures that trip the breaker.
    cooldown : float
        Virtual seconds the breaker stays OPEN before allowing a probe.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: float = 5.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be nonnegative, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.recoveries = 0
        self.probe_failures = 0
        self._open_until = 0.0

    @property
    def open_until(self) -> float:
        """Virtual time at which the current cooldown elapses."""
        return self._open_until

    def record_success(self) -> None:
        """Note a successful attempt while CLOSED."""
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> bool:
        """Note a failed attempt; trip when the threshold is reached.

        Returns
        -------
        bool
            ``True`` if this failure tripped the breaker open.
        """
        self.consecutive_failures += 1
        if (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.trip(now)
            return True
        return False

    def trip(self, now: float) -> bool:
        """Force the breaker OPEN (e.g. on retry-budget exhaustion).

        Returns
        -------
        bool
            ``True`` if the breaker was not already open.
        """
        if self.state == OPEN:
            return False
        self.state = OPEN
        self.trips += 1
        self._open_until = now + self.cooldown
        return True

    def ready_to_probe(self, now: float) -> bool:
        """Whether the cooldown has elapsed and a probe may be sent."""
        return self.state == OPEN and now >= self._open_until

    def begin_probe(self) -> None:
        """Enter HALF_OPEN for the duration of one probe."""
        self.state = HALF_OPEN

    def probe_succeeded(self) -> None:
        """Probe worked: close the breaker and reset the failure run."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self.recoveries += 1

    def probe_failed(self, now: float) -> None:
        """Probe failed: re-open for another full cooldown."""
        self.state = OPEN
        self.probe_failures += 1
        self._open_until = now + self.cooldown


class HealthMonitor:
    """Sliding-window error rate over recent attempt outcomes.

    Parameters
    ----------
    window : int
        Number of most-recent attempts retained.
    """

    def __init__(self, window: int = 64):
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self._outcomes: Deque[bool] = deque(maxlen=window)

    def record(self, ok: bool) -> None:
        """Append one attempt outcome (``True`` for success)."""
        self._outcomes.append(ok)

    @property
    def sample_count(self) -> int:
        """Attempts currently inside the window."""
        return len(self._outcomes)

    @property
    def error_rate(self) -> float:
        """Fraction of windowed attempts that failed (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes)
