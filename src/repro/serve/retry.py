"""Retry policy: capped exponential backoff with jitter and a budget.

Transient storage faults (:class:`~repro.storage.faults.TransientIOError`)
are retryable: the process survives and the operation can simply be
re-driven.  The policy below bounds how hard the frontend tries — a
per-request attempt cap, a per-run retry budget (so a fault storm cannot
stall the whole stream behind one request), and capped exponential
backoff with multiplicative jitter drawn from a seeded RNG so every run
of the same schedule backs off identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How the frontend retries transiently failing operations.

    Parameters
    ----------
    max_attempts : int
        Total tries per request, including the first (so 4 means up to
        3 retries).
    base_delay : float
        Backoff before the first retry, in virtual seconds.
    multiplier : float
        Growth factor between consecutive backoffs.
    max_delay : float
        Cap on a single backoff delay.
    jitter : float
        Fractional jitter: each delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``.
    budget : int
        Total retries (not first attempts) the frontend may spend over
        a whole run; once exhausted, transient failures are terminal.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    budget: int = 1000

    def __post_init__(self) -> None:
        """Validate the backoff ladder's shape."""
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be nonnegative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be at least 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.budget < 0:
            raise ValueError(f"budget must be nonnegative, got {self.budget}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        Parameters
        ----------
        attempt : int
            Which retry this is: 1 for the first retry, 2 for the
            second, and so on.
        rng : random.Random
            Seeded generator supplying the jitter draw; one draw is
            consumed per call, keeping schedules reproducible.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be at least 1, got {attempt}")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
