"""The shipping transport: encoded batches over an unreliable channel.

Batches cross the channel in the WAL wire format itself (dense LSNs
from 0, one COMMIT per batch), so the receiving side validates them
with the same CRC-checked scan the log uses.  The channel routes every
transfer through an optional
:class:`~repro.storage.faults.FaultInjector`, mapping its failure modes
onto transport semantics:

* a scheduled transient write fault → the transfer never happened
  (:class:`~repro.storage.faults.TransientIOError`, retryable);
* ``torn`` mode at the crash point → the connection died mid-transfer
  and the *truncated* bytes were delivered; the CRC scan detects the
  torn tail and the receiver retries;
* ``kill`` mode → the connection died before any byte made it out.

After a simulated connection death the channel drops the spent injector
("reconnects"), because a dead :class:`FaultInjector` fails every
subsequent call — the transport recovered even though that one process
did not.
"""

from __future__ import annotations

from typing import List, Optional

from ..storage.faults import SimulatedCrash, TransientIOError
from ..storage.wal import _COMMIT, COMMIT_RECORD, encode_record, scan_wal_bytes
from .shipper import ShippedBatch, WalShipper, batches_of


def encode_batch(batch: ShippedBatch) -> bytes:
    """Serialize one batch in WAL wire format (fresh LSNs from 0)."""
    lsn = 0
    blob = bytearray()
    for record in batch.records:
        blob += encode_record(record.kind, lsn, record.payload)
        lsn += 1
    blob += encode_record(
        COMMIT_RECORD, lsn, _COMMIT.pack(batch.op_seq, batch.clock_time)
    )
    return bytes(blob)


def decode_batch(data: bytes) -> ShippedBatch:
    """Validate and decode one shipped batch.

    Raises
    ------
    TransientIOError
        On a torn tail, CRC mismatch, or a missing closing COMMIT —
        all the signatures of a transfer cut short, and all retryable.
    """
    records, _valid, torn = scan_wal_bytes(data)
    if torn:
        raise TransientIOError(f"torn shipment: {torn} trailing bytes")
    if not records or records[-1].kind != COMMIT_RECORD:
        raise TransientIOError("shipment missing its commit record")
    _base, _clock, batches = batches_of(records)
    if len(batches) != 1:
        raise TransientIOError(
            f"shipment decoded to {len(batches)} batches, expected 1"
        )
    return batches[0]


class ShippingChannel:
    """Deliver batches from a :class:`WalShipper` through injected faults.

    Parameters
    ----------
    shipper : WalShipper
        The primary-side source of committed batches.
    injector : FaultInjector, optional
        Deterministic fault schedule applied to each batch transfer.
    registry : MetricsRegistry, optional
        Receives ``replication.shipped_bytes`` and
        ``replication.channel_faults`` counters.
    """

    def __init__(self, shipper: WalShipper, injector=None, registry=None):
        self.shipper = shipper
        self._injector = injector
        if registry is not None:
            self._bytes = registry.counter("replication.shipped_bytes")
            self._faults = registry.counter("replication.channel_faults")
        else:
            self._bytes = None
            self._faults = None

    def _transfer(self, data: bytes) -> ShippedBatch:
        delivered: Optional[bytes] = None
        injector = self._injector
        if injector is not None:
            try:
                delivered = injector.before_write(data)
                injector.after_write()
                data = delivered
            except TransientIOError:
                if self._faults is not None:
                    self._faults.inc()
                raise
            except SimulatedCrash:
                # The connection died.  Whatever before_write handed
                # back (torn mode truncates it) made it onto the wire;
                # a death before that delivered nothing at all.  Either
                # way this injector is spent — reconnect without it.
                self._injector = None
                if self._faults is not None:
                    self._faults.inc()
                if delivered is None:
                    raise TransientIOError(
                        "shipping connection lost before transfer"
                    ) from None
                data = delivered
        batch = decode_batch(data)
        if self._bytes is not None:
            self._bytes.inc(len(data))
        return batch

    def poll(self, limit: Optional[int] = None) -> List[ShippedBatch]:
        """Fetch and deliver pending batches, oldest first.

        Raises
        ------
        TransientIOError
            A transfer faulted; nothing was acknowledged, so a retry
            re-fetches the same batches.
        ShippingGapError
            Batches past the cursor are gone — re-bootstrap territory,
            never retryable.
        """
        return [
            self._transfer(encode_batch(batch))
            for batch in self.shipper.fetch(limit)
        ]

    def ack(self, op_seq: int) -> None:
        """Acknowledge application through ``op_seq`` on the shipper."""
        self.shipper.ack(op_seq)
