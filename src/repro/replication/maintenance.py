"""Online WAL maintenance: incremental checkpoints that never block.

A full :meth:`repro.storage.pagefile.FilePageStore.checkpoint` rewrites
the whole free chain, the header, fsyncs and truncates the log in one
blocking call.  The :class:`OnlineMaintainer` spreads the same work over
many tiny steps interleaved with serving — each step is a handful of
slot writes at most — so a long-running primary keeps its WAL footprint
bounded without ever stalling a request behind a checkpoint.

The decomposition is safe because of two standing invariants:

* **Commits apply images immediately.**  At any quiescent point (no
  staged changes, no pending commit) the page file already holds every
  committed image, so the only work left before a log truncation is the
  free chain, the header and an fsync.
* **The free chain is advisory.**  Readers scan slot states and
  recovery rebuilds the chain from scratch, so a chain written
  incrementally — possibly stale by the time the header lands — can
  never corrupt allocation.  The maintainer still skips any snapshotted
  pid that was reallocated mid-cycle: overwriting a live slot with a
  free mark would destroy committed data.

The final step goes through the store's shipping gate
(:meth:`~repro.storage.pagefile.FilePageStore.finish_checkpoint`), so
truncation racing shipment resolves the same way a blocking checkpoint
does: unshipped batches spill to an archive segment, or the cycle is
deferred in refuse mode.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..storage.faults import TransientIOError
from ..storage.pagefile import FilePageStore
from .shipper import ShippingLagError


class OnlineMaintainer:
    """Incrementally checkpoint a store to bound its WAL footprint.

    Parameters
    ----------
    store : FilePageStore
        The primary's page store (the maintainer only writes free-chain
        slots and the final header through the store's own methods).
    wal_soft_limit : int, optional
        Log size in bytes that arms the next checkpoint cycle.
    chain_budget : int, optional
        Maximum free-chain slot writes per :meth:`step`.
    registry : MetricsRegistry, optional
        Receives the ``replication.truncation_*`` counters and the
        ``replication.primary_wal_bytes`` gauge.
    """

    def __init__(
        self,
        store: FilePageStore,
        wal_soft_limit: int = 64 * 1024,
        chain_budget: int = 8,
        registry=None,
    ):
        self.store = store
        self.wal_soft_limit = wal_soft_limit
        self.chain_budget = chain_budget
        self.cycles = 0
        self.deferred = 0
        self.high_water = 0
        self._phase = "idle"
        self._pids: List[int] = []
        self._pos = 0
        self._prev = -1
        self._count = 0
        if registry is not None:
            self._c_cycles = registry.counter("replication.truncation_cycles")
            self._c_deferred = registry.counter(
                "replication.truncation_deferred"
            )
            registry.gauge(
                "replication.primary_wal_bytes", fn=self.wal_bytes
            )
            registry.gauge(
                "replication.primary_wal_high_water", fn=lambda: self.high_water
            )
        else:
            self._c_cycles = None
            self._c_deferred = None

    def wal_bytes(self) -> int:
        """Current size of the primary's live write-ahead log."""
        wal = self.store.wal
        if wal is None or not os.path.exists(wal.path):
            return 0
        return os.path.getsize(wal.path)

    def _observe(self) -> int:
        size = self.wal_bytes()
        self.high_water = max(self.high_water, size)
        return size

    def step(self) -> bool:
        """Run one bounded maintenance step; return whether work was done.

        Phases: ``idle`` (watch the log size) → ``chain`` (persist up to
        ``chain_budget`` free-chain links) → ``final`` (header + fsync +
        gated truncation).  Every phase transition re-checks that the
        store is quiescent and open; transient faults and refuse-mode
        lag abandon the cycle — the next step starts over, nothing is
        half-truncated.
        """
        if self.store.closed:
            return False
        size = self._observe()
        if self._phase == "idle":
            if size < self.wal_soft_limit or not self.store.quiescent:
                return False
            self._pids = self.store.free_page_ids()
            self._pos = 0
            self._prev = -1
            self._count = 0
            self._phase = "chain"
            return True
        if self._phase == "chain":
            live_free = set(self.store.free_page_ids())
            batch = [
                pid for pid in self._pids[self._pos:self._pos +
                                          self.chain_budget]
                if pid in live_free
            ]
            self._pos += self.chain_budget
            try:
                self._prev = self.store.link_free_slots(batch, self._prev)
            except TransientIOError:
                self._phase = "idle"
                return True
            self._count += len(batch)
            if self._pos >= len(self._pids):
                self._phase = "final"
            return True
        # final
        if not self.store.quiescent:
            return False
        try:
            self.store.finish_checkpoint(self._prev, self._count)
        except ShippingLagError:
            self.deferred += 1
            if self._c_deferred is not None:
                self._c_deferred.inc()
            self._phase = "idle"
            return True
        except TransientIOError:
            self._phase = "idle"
            return True
        self.cycles += 1
        if self._c_cycles is not None:
            self._c_cycles.inc()
        self._phase = "idle"
        self._observe()
        return True

    def run_cycle(self, max_steps: int = 10_000) -> Optional[int]:
        """Drive steps until one full cycle completes (tests and CLI).

        Returns the total steps taken, or ``None`` if the log never
        crossed the soft limit (nothing to do).
        """
        target = self.cycles + 1
        for taken in range(1, max_steps + 1):
            if not self.step() and self._phase == "idle":
                return None
            if self.cycles >= target:
                return taken
        raise RuntimeError(f"cycle did not complete in {max_steps} steps")
