"""The replica: apply shipped batches, serve reads, promote on failover.

A :class:`Replica` owns its own store directory — a page file plus a
write-ahead log, byte-compatible with the primary's.  Application is
deliberately *not* a private re-implementation of redo: each poll's
batches are appended to the replica's own log and then replayed through
the very same :func:`repro.storage.wal.recover` machinery the primary's
crash path uses, TR-82 expired-page skip included.  Whatever recovery
would reconstruct on the primary, the replica holds — which is exactly
the invariant :meth:`Replica.promote` cashes in.

Serving: the replica answers all five query classes — timeslice, window
and moving-window queries (:meth:`Replica.query`), batched queries
(:meth:`Replica.query_batch`) and k-nearest-neighbor requests
(:meth:`Replica.knn`) — from its applied page set, with the same
expiration-clipping predicates the live tree uses.  Staleness is
whatever the shipping lag makes it, and is measured, not assumed.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.tree import MovingObjectTree, TreeSnapshot
from ..geometry.intersection import region_matches_point
from ..geometry.knn import brute_force_knn
from ..rstar.node import Node
from ..storage.faults import TransientIOError
from ..storage.pagefile import (
    PAGES_FILENAME,
    SLOT_ALLOCATED,
    WAL_FILENAME,
    FilePageStore,
    PageFile,
    _all_expired_predicate,
)
from ..storage.serial import NodeCodec
from ..storage.wal import FREE_RECORD, WriteAheadLog, recover, scan_wal
from .shipper import (
    ReplicationError,
    ShippedBatch,
    WalShipper,
    batches_of,
)


class PromotionError(ReplicationError):
    """The replica's committed prefix failed verification at promotion."""


class ReplicaSnapshot(TreeSnapshot):
    """A :class:`~repro.core.tree.TreeSnapshot` cut from a replica.

    Identical query semantics (brute-force scan over leaf entries with
    expiration clipping), so the frontend's
    :class:`~repro.serve.degraded.DegradedReader` can rebase onto it
    without special cases.  The extra attribute records how far the
    replica had applied when the snapshot was cut.
    """

    __slots__ = ("applied_op_seq",)

    def __init__(self, root_pid, pages, taken_at, applied_op_seq):
        super().__init__(root_pid, pages, taken_at)
        self.applied_op_seq = applied_op_seq


class Replica:
    """A WAL-tailing follower of one durable primary store.

    Use :meth:`bootstrap` to seed a replica from a live primary, or the
    constructor to (re)open an existing replica directory — the latter
    replays the replica's own log first, so a replica that died
    mid-apply resumes consistently.

    Parameters
    ----------
    directory : str
        The replica's store directory.
    layout : EntryLayout
        Entry layout of the replicated pages (must match the primary).
    registry : MetricsRegistry, optional
        Receives ``replication.applied_*`` and skip counters.
    """

    def __init__(self, directory: str, layout, registry=None):
        self.directory = directory
        self.layout = layout
        self.codec = NodeCodec(layout)
        self.pages_path = os.path.join(directory, PAGES_FILENAME)
        self.wal_path = os.path.join(directory, WAL_FILENAME)
        self._all_expired = _all_expired_predicate(self.codec)
        self._file: Optional[PageFile] = PageFile.open(self.pages_path)
        self._promoted = False
        report = recover(self._file, self.wal_path, self._all_expired)
        self._applied_op_seq = report.op_seq
        self._applied_clock = report.clock_time
        header = self._file.read_header()
        self._root_pid = header.root_pid
        self._mirror: Dict[int, object] = {}
        for pid in range(self._file.slot_count):
            slot = self._file.read_slot(pid)
            if slot.state == SLOT_ALLOCATED:
                node, _t_ref = self.codec.decode(slot.payload)
                self._mirror[pid] = node
        if registry is not None:
            self._applied_batches = registry.counter(
                "replication.applied_batches"
            )
            self._applied_pages = registry.counter(
                "replication.applied_pages"
            )
            self._skipped = registry.counter("replication.skipped_expired")
        else:
            self._applied_batches = None
            self._applied_pages = None
            self._skipped = None

    # -- construction --------------------------------------------------------

    @classmethod
    def bootstrap(
        cls,
        store: FilePageStore,
        shipper: WalShipper,
        directory: str,
        registry=None,
    ) -> "Replica":
        """Seed a fresh replica from a live primary and start it tailing.

        Checkpoints the primary (making its page file self-contained),
        copies the page file, initializes the replica's log to a single
        checkpoint record at the primary's committed sequence number,
        advances the shipping cursor to that point, and only then
        attaches ``shipper`` to the store — so the pre-bootstrap history
        is never archived, and everything committed afterwards ships.

        Parameters
        ----------
        store : FilePageStore
            The primary's open page store.
        shipper : WalShipper
            A fresh shipper rooted at the primary's directory.
        directory : str
            Where to create the replica's store (created if missing).
        registry : MetricsRegistry, optional
            Passed through to the replica.
        """
        store.checkpoint()
        os.makedirs(directory, exist_ok=True)
        shutil.copyfile(
            store._file.path, os.path.join(directory, PAGES_FILENAME)
        )
        wal = WriteAheadLog(os.path.join(directory, WAL_FILENAME))
        wal.reset(store.op_seq, store._file.read_header().clock_time)
        wal.close()
        shipper.ack(store.op_seq)
        store.attach_shipper(shipper)
        return cls(directory, store.layout, registry=registry)

    # -- application ---------------------------------------------------------

    @property
    def applied_op_seq(self) -> int:
        """Operation sequence number the replica has applied through."""
        return self._applied_op_seq

    @property
    def applied_clock_time(self) -> float:
        """Simulation clock time of the last applied commit."""
        return self._applied_clock

    @property
    def promoted(self) -> bool:
        """Whether :meth:`promote` has consumed this replica."""
        return self._promoted

    def apply(self, batches: Sequence[ShippedBatch]) -> int:
        """Apply shipped batches through the recovery machinery.

        Already-applied batches (at or below :attr:`applied_op_seq`)
        are skipped — redelivery after a lost acknowledgment is
        harmless.  The fresh suffix is appended to the replica's own
        log (records first, one COMMIT per batch) and then replayed by
        :func:`repro.storage.wal.recover`, which applies the TR-82
        expired-page skip, rewrites the header and free chain, and
        truncates the replayed log — so the replica's WAL never grows
        beyond one poll's worth of batches.

        Returns
        -------
        int
            Number of batches newly applied.

        Raises
        ------
        ReplicationError
            On a sequence gap (a batch arrived out of order) or after
            promotion.
        """
        if self._promoted:
            raise ReplicationError("replica was promoted; cannot apply")
        fresh = [b for b in batches if b.op_seq > self._applied_op_seq]
        if not fresh:
            return 0
        expected = self._applied_op_seq
        for batch in fresh:
            if batch.op_seq != expected + 1:
                raise ReplicationError(
                    f"batch {batch.op_seq} arrived after {expected}; "
                    "shipment out of order"
                )
            expected = batch.op_seq
        wal = WriteAheadLog(self.wal_path)
        for batch in fresh:
            for record in batch.records:
                wal.append_raw(record.kind, record.payload)
            wal.append_commit(batch.op_seq, batch.clock_time)
        wal.flush()
        wal.close()
        report = recover(self._file, self.wal_path, self._all_expired)
        for batch in fresh:
            for record in batch.records:
                if record.kind == FREE_RECORD:
                    self._mirror.pop(record.page_id, None)
                else:
                    node, _t_ref = self.codec.decode(record.page_bytes)
                    self._mirror[record.page_id] = node
        self._applied_op_seq = report.op_seq
        self._applied_clock = report.clock_time
        if self._applied_batches is not None:
            self._applied_batches.inc(len(fresh))
            self._applied_pages.inc(report.pages_replayed)
            self._skipped.inc(report.wal_skipped_expired)
        return len(fresh)

    def wal_bytes(self) -> int:
        """Current size of the replica's own write-ahead log."""
        if not os.path.exists(self.wal_path):
            return 0
        return os.path.getsize(self.wal_path)

    # -- serving -------------------------------------------------------------

    def _reachable_pages(self) -> Dict[int, object]:
        pages: Dict[int, object] = {}
        if self._root_pid < 0 or self._root_pid not in self._mirror:
            return pages
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            if pid in pages:
                continue
            node = self._mirror[pid]
            pages[pid] = node
            if not node.is_leaf:
                stack.extend(node.child_ids())
        return pages

    def leaf_entries(self):
        """Iterate ``(point, oid)`` over all root-reachable leaf entries."""
        for node in self._reachable_pages().values():
            if node.is_leaf:
                yield from node.entries

    def snapshot(self) -> ReplicaSnapshot:
        """Cut an isolated snapshot of the applied page set.

        Entry lists are copied, so later applies cannot leak into a
        reader holding the snapshot — the same isolation contract as
        :meth:`repro.core.tree.MovingObjectTree.snapshot`.
        """
        pages = {
            pid: Node(node.level, list(node.entries))
            for pid, node in self._reachable_pages().items()
        }
        return ReplicaSnapshot(
            self._root_pid, pages, self._applied_clock, self._applied_op_seq
        )

    def query(self, query) -> List[int]:
        """Answer one timeslice/window/moving query from applied state.

        Brute-force scan with the same expiration-clipping predicate the
        live tree's descent uses, so for any fully applied prefix the
        answer equals the primary's at the same clock time.
        """
        region = query.region()
        return sorted(
            oid for point, oid in self.leaf_entries()
            if region_matches_point(region, point)
        )

    def query_batch(self, queries: Sequence) -> List[List[int]]:
        """Answer a batch of queries (one scan per query, same answers)."""
        return [self.query(query) for query in queries]

    def knn(self, x, t: float, k: int) -> List[int]:
        """The ``k`` nearest live objects at ``t``, nearest first.

        Delegates to the brute-force oracle
        :func:`repro.geometry.knn.brute_force_knn` over the replica's
        leaf entries — bit-identical, by definition, to the answer the
        primary's best-first descent gives over the same entry set.
        """
        return [
            oid for _dist, oid in brute_force_knn(
                list(self.leaf_entries()), x, t, k
            )
        ]

    # -- promotion -----------------------------------------------------------

    def verify_committed_prefix(self) -> Tuple[int, int]:
        """Verify the replica log holds a dense committed prefix.

        Returns
        -------
        base_op_seq : int
            Sequence number asserted by the log's checkpoint record.
        batches : int
            Committed batches after it (each exactly one past its
            predecessor).

        Raises
        ------
        PromotionError
            On a sequence gap or a log without a checkpoint base.
        """
        records, _valid, _torn = scan_wal(self.wal_path)
        try:
            base, _clock, batches = batches_of(records)
        except ReplicationError as exc:
            raise PromotionError(str(exc)) from exc
        if not records:
            raise PromotionError("replica log is empty")
        expected = base
        for batch in batches:
            if batch.op_seq != expected + 1:
                raise PromotionError(
                    f"committed prefix has a gap: batch {expected + 1} "
                    f"missing before {batch.op_seq}"
                )
            expected = batch.op_seq
        if expected != self._applied_op_seq:
            raise PromotionError(
                f"log prefix ends at {expected} but replica applied "
                f"{self._applied_op_seq}"
            )
        return base, len(batches)

    def promote(
        self,
        config,
        clock=None,
        *,
        channel=None,
        registry=None,
        tracer=None,
        drain_attempts: int = 8,
    ) -> MovingObjectTree:
        """Seal, verify and reopen this replica as the new primary.

        Controlled or crash failover both land here.  With a ``channel``
        the replica first drains every still-fetchable committed batch —
        the shipper reads the (possibly dead) primary's on-disk log, so
        nothing committed is ever left behind; transient channel faults
        are retried up to ``drain_attempts`` times.  The replica's log
        tail is then sealed (the torn-tail scan inside recovery), the
        committed prefix verified dense, and the directory reopened
        through :meth:`repro.core.tree.MovingObjectTree.open_from` —
        the same recovery path a restarted primary takes.

        Parameters
        ----------
        config : TreeConfig
            The primary's tree configuration (layout must match).
        clock : SimulationClock, optional
            Fresh clock for the promoted tree; advanced to the
            recovered time.
        channel : ShippingChannel, optional
            Drain source for the final catch-up fetch.
        registry, tracer : optional
            Observability sinks for the recovery pass.
        drain_attempts : int, optional
            Transient-fault retries for the final drain.

        Returns
        -------
        MovingObjectTree
            The promoted tree, serving reads and writes at the exact
            committed prefix of the old primary.
        """
        if self._promoted:
            raise ReplicationError("replica already promoted")
        if channel is not None:
            for attempt in range(drain_attempts):
                try:
                    batches = channel.poll()
                except TransientIOError:
                    if attempt == drain_attempts - 1:
                        raise
                    continue
                if not batches:
                    break
                self.apply(batches)
                channel.ack(self._applied_op_seq)
        self.verify_committed_prefix()
        self._file.close()
        self._file = None
        self._promoted = True
        tree = MovingObjectTree.open_from(
            self.directory, config, clock,
            registry=registry, tracer=tracer,
        )
        return tree

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the page-file handle (idempotent; promote also does)."""
        if self._file is not None:
            self._file.close()
            self._file = None
