"""WAL-shipped read replicas, primary failover, online WAL maintenance.

This package turns the durable single-process store of
:mod:`repro.storage` into a small replicated serving cell:

* :class:`~repro.replication.shipper.WalShipper` sits on the primary and
  exposes committed WAL batches past a durable shipping cursor, spilling
  batches to archive segments whenever a checkpoint would otherwise
  truncate them out from under a tailing replica.
* :class:`~repro.replication.channel.ShippingChannel` moves encoded
  batches across a (deliberately unreliable) transport; torn and
  transient transfers surface as retryable
  :class:`~repro.storage.faults.TransientIOError`.
* :class:`~repro.replication.replica.Replica` applies shipped batches
  through the existing :func:`repro.storage.wal.recover` machinery onto
  its own page store — honoring the TR-82 expired-page skip — serves all
  five query classes from the applied state, and can
  :meth:`~repro.replication.replica.Replica.promote` itself to a full
  primary with zero committed writes lost.
* :class:`~repro.replication.maintenance.OnlineMaintainer` keeps the
  primary's WAL footprint bounded with incremental checkpoints that
  never block serving.
* :class:`~repro.replication.link.ReplicaLink` bundles the above for the
  :class:`~repro.serve.frontend.ServiceFrontend`: paced polling, lag
  gauges and SLO counters, freshest-wins degraded reads and crash
  failover.

See DESIGN.md §14 for the ship/apply/promote protocol and the
truncation-vs-shipping rule.
"""

from .channel import ShippingChannel
from .link import ReplicaLink, replication_slos
from .maintenance import OnlineMaintainer
from .replica import PromotionError, Replica, ReplicaSnapshot
from .shipper import (
    ReplicationError,
    ShippedBatch,
    ShippingGapError,
    ShippingLagError,
    WalShipper,
)

__all__ = [
    "OnlineMaintainer",
    "PromotionError",
    "Replica",
    "ReplicaLink",
    "ReplicaSnapshot",
    "ReplicationError",
    "ShippedBatch",
    "ShippingChannel",
    "ShippingGapError",
    "ShippingLagError",
    "WalShipper",
    "replication_slos",
]
