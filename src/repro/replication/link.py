"""The frontend's handle on replication: paced polling, health, failover.

A :class:`ReplicaLink` bundles one :class:`~repro.replication.channel.
ShippingChannel`, one :class:`~repro.replication.replica.Replica` and an
optional :class:`~repro.replication.maintenance.OnlineMaintainer` into
the single object the :class:`~repro.serve.frontend.ServiceFrontend`
talks to.  The frontend ticks the link once per served request; the
link polls the channel on a fixed cadence (retrying transient transport
faults under the usual :class:`~repro.serve.retry.RetryPolicy` budget
discipline), applies what arrived, acknowledges, measures the staleness
lag, and steps the maintainer.  When the primary dies, the frontend
asks the link to :meth:`~ReplicaLink.failover` instead of re-opening
the corpse.

Staleness is defined on the index clock: the time of the newest commit
the primary's log asserts, minus the time of the newest commit the
replica has applied, clamped at zero.  With ``poll_every`` requests
between polls and mean inter-commit spacing ``d``, the lag a poll can
observe is bounded by ``poll_every * d`` plus one in-flight fetch —
the bound the ``replica_staleness`` SLO budgets (see DESIGN.md §14).
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Tuple

from ..obs.slo import SLO
from ..storage.faults import TransientIOError
from .channel import ShippingChannel
from .maintenance import OnlineMaintainer
from .replica import Replica
from .shipper import ShippingGapError


def replication_slos(staleness_target: float = 0.9) -> List[SLO]:
    """The replication health objective for the frontend's SLO tracker.

    Each poll cycle scores one event: *good* when the measured lag is
    within the link's staleness budget, *bad* otherwise.
    """
    return [
        SLO(
            name="replica_staleness",
            target=staleness_target,
            good=("replication.polls_within_budget",),
            bad=("replication.polls_over_budget",),
            description=(
                "fraction of replication polls observing lag within "
                "the configured staleness budget"
            ),
        )
    ]


class ReplicaLink:
    """Wire a tailing replica into the serving loop.

    Parameters
    ----------
    channel : ShippingChannel
        Transport from the primary's shipper.
    replica : Replica
        The follower applying shipped batches.
    maintainer : OnlineMaintainer, optional
        Primary-side incremental checkpointer, stepped once per tick.
    promote_config : TreeConfig
        Tree configuration for :meth:`failover`'s ``open_from``.
    registry : MetricsRegistry, optional
        Receives all ``replication.*`` gauges and counters.
    staleness_budget : float, optional
        Index-clock seconds of lag a poll may observe and still count
        as healthy (default: unbounded).
    slo_target : float, optional
        Target fraction of healthy polls for the ``replica_staleness``
        objective.
    poll_every : int, optional
        Served requests between poll cycles.
    retry_attempts : int, optional
        Transient-fault retries per poll cycle; a cycle that exhausts
        them gives up silently (the next cycle re-fetches).
    on_promote : callable, optional
        ``f(tree) -> injector | None`` invoked after a promotion (and
        after re-seeding), e.g. to arm a fresh fault injector on the
        new primary.  The returned injector is handed to the frontend.
    reseed : callable, optional
        ``f(tree) -> (channel, replica, maintainer)`` building a fresh
        follower for the promoted primary.  Without it the link goes
        inert after one failover.
    tracer : Tracer, optional
        Emits ``replication.promote`` events.
    """

    def __init__(
        self,
        channel: ShippingChannel,
        replica: Replica,
        maintainer: Optional[OnlineMaintainer] = None,
        *,
        promote_config=None,
        registry=None,
        staleness_budget: float = float("inf"),
        slo_target: float = 0.9,
        poll_every: int = 8,
        retry_attempts: int = 4,
        on_promote: Optional[Callable] = None,
        reseed: Optional[Callable] = None,
        tracer=None,
    ):
        self.channel: Optional[ShippingChannel] = channel
        self.replica: Optional[Replica] = replica
        self.maintainer: Optional[OnlineMaintainer] = maintainer
        self.promote_config = promote_config
        self.staleness_budget = staleness_budget
        self.slo_target = slo_target
        self.poll_every = max(1, poll_every)
        self.retry_attempts = max(1, retry_attempts)
        self.promotions = 0
        self.polls = 0
        self.max_staleness = 0.0
        self.footprint_high_water = 0
        self._on_promote = on_promote
        self._reseed = reseed
        self._tracer = tracer
        self._ticks = 0
        self._mark_seqs: List[int] = []
        self._mark_indices: List[int] = []
        self._snapshot_cache: Tuple[int, object] = (-1, None)
        self._registry = registry
        if registry is not None:
            self._g_staleness = registry.gauge("replication.staleness_seconds")
            self._g_lag = registry.gauge("replication.cursor_lag_batches")
            self._g_promoted = registry.gauge(
                "replication.last_promotion_time"
            )
            registry.gauge(
                "replication.wal_footprint_bytes", fn=self.wal_footprint
            )
            registry.gauge(
                "replication.footprint_high_water",
                fn=lambda: self.footprint_high_water,
            )
            self._c_polls = registry.counter("replication.polls")
            self._c_within = registry.counter(
                "replication.polls_within_budget"
            )
            self._c_over = registry.counter("replication.polls_over_budget")
            self._c_promotions = registry.counter("replication.promotions")
        else:
            self._g_staleness = self._g_lag = self._g_promoted = None
            self._c_polls = self._c_within = self._c_over = None
            self._c_promotions = None

    # -- health --------------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether a live follower is attached and unpromoted."""
        return (
            self.replica is not None
            and self.channel is not None
            and not self.replica.promoted
        )

    def slos(self) -> List[SLO]:
        """The link's SLOs, for appending to the frontend tracker."""
        return replication_slos(self.slo_target)

    def staleness(self) -> float:
        """Current index-clock replication lag in seconds (>= 0)."""
        if not self.ready:
            return 0.0
        shipper = self.channel.shipper
        last_seq, last_clock = shipper.last_committed()
        if last_seq <= self.replica.applied_op_seq:
            return 0.0
        return max(0.0, last_clock - self.replica.applied_clock_time)

    def wal_footprint(self) -> int:
        """Total replication-relevant disk footprint in bytes.

        Live primary WAL, archive segments plus cursor, and the
        replica's own WAL — the number whose high-water mark the soak
        asserts stays bounded across truncation cycles.
        """
        total = 0
        if self.maintainer is not None:
            total += self.maintainer.wal_bytes()
        if self.channel is not None:
            total += self.channel.shipper.archive_bytes()
        if self.replica is not None and not self.replica.promoted:
            total += self.replica.wal_bytes()
        return total

    # -- stream-index marks --------------------------------------------------

    def note_write(self, op_seq: int, served_through: int) -> None:
        """Record that the primary reached ``op_seq`` at stream position.

        Mirrors the frontend's snapshot convention: a state at
        ``op_seq`` is declared current through the number of requests
        served when that sequence number was observed.  Marks are
        consulted by :meth:`stream_mark` to translate the replica's
        applied position into the ``snapshot_op_index`` the soak
        harness verifies degraded answers against.
        """
        self._mark_seqs.append(op_seq)
        self._mark_indices.append(served_through)
        if len(self._mark_seqs) > 65536:
            del self._mark_seqs[:32768]
            del self._mark_indices[:32768]

    def stream_mark(self) -> int:
        """Stream index the replica's applied state is current through."""
        if self.replica is None:
            return 0
        pos = bisect.bisect_right(
            self._mark_seqs, self.replica.applied_op_seq
        )
        if pos == 0:
            return 0
        return self._mark_indices[pos - 1]

    # -- the per-request tick ------------------------------------------------

    def tick(self, force: bool = False) -> None:
        """One serving-loop tick: maintenance step, cadenced poll cycle.

        Transient transport faults are retried ``retry_attempts`` times
        and then dropped — the next cycle re-fetches from the durable
        cursor, so giving up loses nothing.  A
        :class:`~repro.replication.shipper.ShippingGapError` propagates:
        it means truncation bypassed the shipping gate and the replica
        must be re-bootstrapped, which is a wiring bug, not weather.
        """
        self._ticks += 1
        if self.maintainer is not None:
            self.maintainer.step()
        if not self.ready:
            return
        if not force and self._ticks % self.poll_every:
            self._observe_footprint()
            return
        batches = None
        for _attempt in range(self.retry_attempts):
            try:
                batches = self.channel.poll()
                break
            except TransientIOError:
                continue
        if batches is not None:
            # The lag this poll *observed*: how far behind the replica
            # was at fetch time.  Measured before applying — post-apply
            # staleness is ~0 by construction and would gate nothing.
            lag = self.staleness()
            self.polls += 1
            if batches:
                self.replica.apply(batches)
                self.channel.ack(self.replica.applied_op_seq)
            self.max_staleness = max(self.max_staleness, lag)
            if self._c_polls is not None:
                self._c_polls.inc()
                self._g_staleness.set(self.staleness())
                self._g_lag.set(self.channel.shipper.lag_batches())
                if lag <= self.staleness_budget:
                    self._c_within.inc()
                else:
                    self._c_over.inc()
        self._observe_footprint()

    def _observe_footprint(self) -> None:
        self.footprint_high_water = max(
            self.footprint_high_water, self.wal_footprint()
        )

    # -- degraded reads ------------------------------------------------------

    def fresher_base(self, taken_at: float):
        """A replica snapshot strictly fresher than ``taken_at``, or None.

        The frontend's degraded reader rebases onto this when the live
        follower has applied past the last checkpoint snapshot —
        freshest wins.  Snapshots are cached per applied position, so a
        burst of degraded answers between polls cuts one snapshot, not
        hundreds.
        """
        if not self.ready:
            return None
        if self.replica.applied_clock_time <= taken_at:
            return None
        cached_seq, cached = self._snapshot_cache
        if cached_seq != self.replica.applied_op_seq:
            cached = self.replica.snapshot()
            self._snapshot_cache = (self.replica.applied_op_seq, cached)
        return cached

    # -- failover ------------------------------------------------------------

    @property
    def can_failover(self) -> bool:
        """Whether a promotion is currently possible."""
        return self.ready

    def failover(self):
        """Promote the follower and re-seed; return ``(tree, injector)``.

        Drains every committed batch still fetchable from the dead
        primary's on-disk log, promotes the replica through the full
        verification path, re-seeds a fresh follower via the ``reseed``
        callback (when configured), and finally invokes ``on_promote``
        for a replacement fault injector.  Zero committed writes are
        lost: the drain reads the durable committed prefix, and
        promotion verifies the replica's log is dense up to it.
        """
        if not self.can_failover:
            raise ShippingGapError("no promotable replica attached")
        replica, channel = self.replica, self.channel
        tree = replica.promote(
            self.promote_config,
            channel=channel,
            registry=self._registry,
            tracer=self._tracer,
        )
        self.promotions += 1
        if self._c_promotions is not None:
            self._c_promotions.inc()
            self._g_promoted.set(tree.clock.time)
        if self._tracer is not None:
            self._tracer.event("replication.promote", at=tree.clock.time)
        self.channel = self.replica = self.maintainer = None
        self._snapshot_cache = (-1, None)
        if self._reseed is not None:
            self.channel, self.replica, self.maintainer = self._reseed(tree)
        injector = self._on_promote(tree) if self._on_promote else None
        return tree, injector
