"""WAL shipping on the primary: cursor, archive segments, batch fetch.

The shipper never talks to the primary's in-memory state.  It reads the
on-disk write-ahead log (and its own archive segments), which by the
group-commit discipline of :meth:`repro.storage.pagefile.FilePageStore.commit`
hold exactly the committed prefix — every commit record is flushed
before the images touch the page file.  A replica tailing a *dead*
primary therefore sees precisely what recovery would replay.

Three pieces of durable state live in the primary's store directory:

``wal.rexp``
    The live log (owned by the store; the shipper only reads it).
``wal_archive/seg-<first>-<last>.rexp``
    Archive segments in plain WAL wire format, re-encoded with fresh
    dense LSNs.  A checkpoint that would truncate not-yet-shipped
    committed batches first *spills* them here (or refuses, in
    ``"refuse"`` mode), so truncation can race shipment safely.
``ship.cursor``
    The durable shipping cursor: the highest operation sequence number
    the replica has acknowledged.  Written atomically (tmp + fsync +
    rename); archive segments at or below it are pruned on ack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..storage.pagefile import WAL_FILENAME
from ..storage.wal import (
    _COMMIT,
    CHECKPOINT_RECORD,
    COMMIT_RECORD,
    FREE_RECORD,
    PAGE_RECORD,
    WalRecord,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

#: File names of the shipper's durable state inside the store directory.
CURSOR_FILENAME = "ship.cursor"
ARCHIVE_DIRNAME = "wal_archive"

#: Truncation policies (see :meth:`WalShipper.before_truncate`).
SPILL = "spill"
REFUSE = "refuse"


class ReplicationError(Exception):
    """Base class for replication protocol violations."""


class ShippingLagError(ReplicationError):
    """A refuse-mode checkpoint would destroy unshipped committed batches."""


class ShippingGapError(ReplicationError):
    """Committed batches between cursor and log are no longer available."""


@dataclass(frozen=True)
class ShippedBatch:
    """One committed operation batch in shipping order.

    Attributes
    ----------
    op_seq : int
        The batch's operation sequence number (dense: each commit is
        exactly one past its predecessor).
    clock_time : float
        Simulation clock time stamped on the commit record.
    records : tuple of WalRecord
        The batch's PAGE/FREE records, in log order (the closing COMMIT
        is implied by ``op_seq``/``clock_time``).
    """

    op_seq: int
    clock_time: float
    records: Tuple[WalRecord, ...]


def batches_of(records) -> Tuple[int, float, List[ShippedBatch]]:
    """Group scanned WAL records into committed batches.

    Mirrors the grouping rule of :func:`repro.storage.wal.recover`: a
    leading checkpoint record sets the base sequence number, PAGE/FREE
    records accumulate until a COMMIT closes the batch, and a trailing
    batch without a COMMIT never happened.

    Parameters
    ----------
    records : iterable of WalRecord
        Intact records of one WAL-format file, in log order.

    Returns
    -------
    base_op_seq : int
        Sequence number asserted by the leading checkpoint (0 if none).
    base_clock : float
        Clock time of the leading checkpoint (0.0 if none).
    batches : list of ShippedBatch
        The committed batches, in order.

    Raises
    ------
    ReplicationError
        If a checkpoint record appears inside an open batch.
    """
    base_seq, base_clock = 0, 0.0
    batches: List[ShippedBatch] = []
    pending: List[WalRecord] = []
    for record in records:
        if record.kind == CHECKPOINT_RECORD:
            if pending:
                raise ReplicationError(
                    "checkpoint record inside an open batch"
                )
            base_seq = record.op_seq
            base_clock = record.clock_time
        elif record.kind == COMMIT_RECORD:
            batches.append(
                ShippedBatch(record.op_seq, record.clock_time, tuple(pending))
            )
            pending = []
        else:
            pending.append(record)
    return base_seq, base_clock, batches


class WalShipper:
    """Expose a primary's committed WAL batches past a durable cursor.

    Parameters
    ----------
    directory : str
        The primary store's directory (holds ``wal.rexp``; the cursor
        file and archive directory are created inside it).
    mode : str, optional
        Truncation policy: :data:`SPILL` (default) archives unshipped
        batches before a checkpoint truncates the log, :data:`REFUSE`
        raises :class:`ShippingLagError` instead.
    registry : MetricsRegistry, optional
        Receives ``replication.shipped_*`` counters and archive gauges.
    """

    def __init__(self, directory: str, mode: str = SPILL, registry=None):
        if mode not in (SPILL, REFUSE):
            raise ValueError(f"unknown shipping mode {mode!r}")
        self.directory = directory
        self.mode = mode
        self.wal_path = os.path.join(directory, WAL_FILENAME)
        self.cursor_path = os.path.join(directory, CURSOR_FILENAME)
        self.archive_dir = os.path.join(directory, ARCHIVE_DIRNAME)
        self._acked = self._read_cursor()
        self._registry = registry
        if registry is not None:
            self._shipped_batches = registry.counter(
                "replication.shipped_batches"
            )
            self._spills = registry.counter("replication.spills")
        else:
            self._shipped_batches = None
            self._spills = None

    # -- durable cursor ------------------------------------------------------

    def _read_cursor(self) -> int:
        if not os.path.exists(self.cursor_path):
            return 0
        with open(self.cursor_path, "r", encoding="ascii") as handle:
            return int(handle.read().strip() or "0")

    @property
    def acked(self) -> int:
        """Highest operation sequence number the replica acknowledged."""
        return self._acked

    def ack(self, op_seq: int) -> None:
        """Durably advance the cursor and prune fully shipped segments.

        The cursor write is atomic (tmp + fsync + rename), so a crash
        leaves either the old or the new cursor — never a torn one.
        Acknowledging below the current cursor is a protocol violation.
        """
        if op_seq < self._acked:
            raise ReplicationError(
                f"ack({op_seq}) below shipping cursor {self._acked}"
            )
        if op_seq == self._acked:
            return
        tmp = self.cursor_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write(f"{op_seq}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.cursor_path)
        self._acked = op_seq
        for path, _first, last in self._segments():
            if last <= op_seq:
                os.remove(path)

    # -- archive segments ----------------------------------------------------

    def _segments(self) -> List[Tuple[str, int, int]]:
        """List archive segments as ``(path, first, last)``, ascending."""
        if not os.path.isdir(self.archive_dir):
            return []
        out = []
        for name in sorted(os.listdir(self.archive_dir)):
            if not (name.startswith("seg-") and name.endswith(".rexp")):
                continue
            first, last = name[4:-5].split("-")
            out.append(
                (os.path.join(self.archive_dir, name), int(first), int(last))
            )
        return out

    def archive_bytes(self) -> int:
        """Total size of all archive segments plus the cursor file."""
        total = sum(os.path.getsize(path) for path, _f, _l in self._segments())
        if os.path.exists(self.cursor_path):
            total += os.path.getsize(self.cursor_path)
        return total

    def _write_segment(self, batches: List[ShippedBatch]) -> str:
        """Write ``batches`` as one archive segment (atomic, fsynced).

        Records are re-encoded with fresh dense LSNs starting at 0 so
        the segment is itself a valid WAL file for
        :func:`repro.storage.wal.scan_wal`.
        """
        os.makedirs(self.archive_dir, exist_ok=True)
        name = f"seg-{batches[0].op_seq:017d}-{batches[-1].op_seq:017d}.rexp"
        path = os.path.join(self.archive_dir, name)
        lsn = 0
        blob = bytearray()
        for batch in batches:
            for record in batch.records:
                kind = record.kind
                if kind not in (PAGE_RECORD, FREE_RECORD):
                    raise ReplicationError(
                        f"unexpected record kind {kind} inside a batch"
                    )
                blob += encode_record(kind, lsn, record.payload)
                lsn += 1
            blob += encode_record(
                COMMIT_RECORD, lsn, _COMMIT.pack(batch.op_seq, batch.clock_time)
            )
            lsn += 1
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(bytes(blob))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    # -- fetch ---------------------------------------------------------------

    def _available(self) -> List[ShippedBatch]:
        """All committed batches on disk, archive segments first."""
        batches: List[ShippedBatch] = []
        for path, _first, _last in self._segments():
            records, _valid, _torn = scan_wal(path)
            _base, _clock, segment = batches_of(records)
            batches.extend(segment)
        records, _valid, _torn = scan_wal(self.wal_path)
        _base, _clock, live = batches_of(records)
        batches.extend(live)
        return batches

    def fetch(self, limit: Optional[int] = None) -> List[ShippedBatch]:
        """Return committed batches past the cursor, oldest first.

        Parameters
        ----------
        limit : int, optional
            Maximum batches to return (all pending when omitted).

        Raises
        ------
        ShippingGapError
            If batches between the cursor and the oldest available one
            were destroyed (e.g. the log was truncated outside the
            shipping gate) — the replica must re-bootstrap.
        """
        raw = [b for b in self._available() if b.op_seq > self._acked]
        raw.sort(key=lambda b: b.op_seq)
        # A spill whose following log reset faulted leaves its batches
        # both archived and live; identical content, so keep the first.
        pending: List[ShippedBatch] = []
        for batch in raw:
            if pending and batch.op_seq == pending[-1].op_seq:
                continue
            pending.append(batch)
        expected = self._acked
        for batch in pending:
            if batch.op_seq != expected + 1:
                raise ShippingGapError(
                    f"batch {expected + 1} missing: cursor {self._acked}, "
                    f"next available {batch.op_seq}"
                )
            expected = batch.op_seq
        if limit is not None:
            pending = pending[:limit]
        if self._shipped_batches is not None and pending:
            self._shipped_batches.inc(len(pending))
        return pending

    def last_committed(self) -> Tuple[int, float]:
        """Sequence number and clock time of the newest committed batch.

        Falls back to the live log's checkpoint base when no batch is
        currently on disk (a freshly truncated log still asserts how far
        history reached).
        """
        records, _valid, _torn = scan_wal(self.wal_path)
        base, base_clock, live = batches_of(records)
        if live:
            return live[-1].op_seq, live[-1].clock_time
        newest = (base, base_clock)
        for _path, _first, last in self._segments():
            if last > newest[0]:
                newest = (last, newest[1])
        return newest

    def lag_batches(self) -> int:
        """Committed batches not yet acknowledged by the replica."""
        return max(0, self.last_committed()[0] - self._acked)

    # -- the truncation gate -------------------------------------------------

    def before_truncate(self, wal: WriteAheadLog, op_seq: int) -> None:
        """Gate a WAL truncation: spill unshipped batches, or refuse.

        Invoked by :meth:`repro.storage.pagefile.FilePageStore.checkpoint`
        just before it resets the log.  In spill mode the not-yet-acked
        committed suffix of the live log is re-encoded into an archive
        segment (durably, before the log is reset), so a tailing replica
        can still fetch it; in refuse mode the truncation is rejected.

        Raises
        ------
        ShippingLagError
            In refuse mode, when committed batches past the cursor
            would be destroyed.  The page file is already consistent at
            this point, so refusing loses nothing — the caller may ship
            first and checkpoint again.
        """
        wal.flush()
        records, _valid, _torn = scan_wal(wal.path)
        _base, _clock, live = batches_of(records)
        # Batches already sitting in an archive segment are safe even
        # though still live (a previous spill whose log reset faulted);
        # re-spilling them would only duplicate bytes.
        archived = max(
            (last for _path, _first, last in self._segments()), default=0
        )
        floor = max(self._acked, archived)
        unshipped = [b for b in live if b.op_seq > floor]
        if not unshipped:
            return
        if self.mode == REFUSE:
            raise ShippingLagError(
                f"truncation would destroy {len(unshipped)} unshipped "
                f"batches (cursor {self._acked}, committed {op_seq})"
            )
        self._write_segment(unshipped)
        if self._spills is not None:
            self._spills.inc()
