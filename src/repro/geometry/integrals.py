"""Time integrals of the R*-tree objective functions (Equation 1).

The R^exp/TPR insertion heuristics replace the R*-tree's area, margin,
overlap and center-distance objectives with their integrals over
``[t_upd, t_upd + min(H, t_exp - t_upd)]`` where H is the time horizon
and ``t_exp`` is the (maximum) expiration time of the rectangles
involved.  All integrands here are piecewise polynomials in ``t``, so
the integrals are evaluated analytically.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .tpbr import TPBR

#: A polynomial as a coefficient list, lowest degree first.
Poly = List[float]


def _poly_mul_linear(poly: Poly, c0: float, c1: float) -> Poly:
    """Multiply a polynomial by the linear ``c0 + c1*t``."""
    out = [0.0] * (len(poly) + 1)
    for k, c in enumerate(poly):
        out[k] += c * c0
        out[k + 1] += c * c1
    return out


def _poly_definite_integral(poly: Poly, a: float, b: float) -> float:
    """Integral of the polynomial over [a, b].

    Powers are built by repeated multiplication rather than ``pow`` so
    the batched kernels (:mod:`repro.geometry.kernels`) can reproduce
    the exact same floating-point results elementwise — vectorized
    ``pow`` implementations are not bit-compatible with libm's.
    """
    total = 0.0
    pa, pb = a, b
    for k, c in enumerate(poly):
        total += c * (pb - pa) / (k + 1)
        pa *= a
        pb *= b
    return total


def integration_end(
    t_start: float, horizon: Optional[float], t_exps: Sequence[float]
) -> float:
    """Upper integration bound of Equation 1.

    ``t_start + min(H, max(t_exps) - t_start)``, never before ``t_start``.
    """
    delta = math.inf if horizon is None else horizon
    t_exp = max(t_exps) if t_exps else math.inf
    if not math.isinf(t_exp):
        delta = min(delta, t_exp - t_start)
    if math.isinf(delta):
        raise ValueError(
            "unbounded integration window: supply a finite horizon for "
            "never-expiring rectangles"
        )
    return t_start + max(delta, 0.0)


def _linear_extent(br: TPBR, dim: int) -> Tuple[float, float]:
    """Extent of a TPBR in one dimension as (value at t=0, slope)."""
    slope = br.vhi[dim] - br.vlo[dim]
    value0 = (br.hi[dim] - br.lo[dim]) - slope * br.t_ref
    return value0, slope


def _clip_nonnegative(
    linears: Sequence[Tuple[float, float]], a: float, b: float
) -> Optional[float]:
    """Largest b' <= b such that all linears are >= 0 on [a, b'].

    Assumes each linear is non-negative at ``a`` (valid rectangles only
    shrink through zero, never re-grow).  Returns None if some linear is
    already negative at ``a``.
    """
    end = b
    for c0, c1 in linears:
        if c0 + c1 * a < -1e-12:
            return None
        if c1 < 0.0:
            end = min(end, -c0 / c1)
    return max(end, a)


def area_integral(br: TPBR, a: float, b: float) -> float:
    """Integral of the rectangle's (hyper-)area over [a, b].

    The area is the product of per-dimension extents clamped at zero: a
    shrinking rectangle contributes nothing after it collapses.
    """
    if b <= a:
        return 0.0
    extents = [_linear_extent(br, d) for d in range(br.dims)]
    end = _clip_nonnegative(extents, a, b)
    if end is None or end <= a:
        return 0.0
    poly: Poly = [1.0]
    for c0, c1 in extents:
        poly = _poly_mul_linear(poly, c0, c1)
    return _poly_definite_integral(poly, a, end)


def margin_integral(br: TPBR, a: float, b: float) -> float:
    """Integral of the rectangle's margin (sum of extents) over [a, b]."""
    if b <= a:
        return 0.0
    total = 0.0
    for d in range(br.dims):
        c0, c1 = _linear_extent(br, d)
        end = b
        if c1 < 0.0:
            end = min(end, -c0 / c1)
        start = a
        if c1 > 0.0 and c0 + c1 * a < 0.0:
            start = max(a, -c0 / c1)
        if end > start:
            total += _poly_definite_integral([c0, c1], start, end)
    return total


def _dim_lines(br: TPBR, dim: int) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """(lower, upper) bound of one dimension as (value at t=0, slope)."""
    lo = (br.lo[dim] - br.vlo[dim] * br.t_ref, br.vlo[dim])
    hi = (br.hi[dim] - br.vhi[dim] * br.t_ref, br.vhi[dim])
    return lo, hi


def overlap_integral(x: TPBR, y: TPBR, a: float, b: float) -> float:
    """Integral over [a, b] of the overlap (hyper-)area of two TPBRs.

    Per dimension the overlap extent is
    ``min(ux, uy)(t) - max(lx, ly)(t)`` clamped at zero — piecewise
    linear.  Breakpoints are collected from all bound crossings; within
    each piece the product of the active linears is integrated exactly.
    """
    if b <= a:
        return 0.0
    cuts = {a, b}
    per_dim = []
    for d in range(x.dims):
        lx, ux = _dim_lines(x, d)
        ly, uy = _dim_lines(y, d)
        per_dim.append((lx, ux, ly, uy))
        for p, q in (
            (ux, uy),  # active upper switches
            (lx, ly),  # active lower switches
            (ux, ly),  # overlap sign may flip
            (uy, lx),
            (ux, lx),
            (uy, ly),
        ):
            dc0 = p[0] - q[0]
            dc1 = p[1] - q[1]
            if dc1 != 0.0:
                root = -dc0 / dc1
                if a < root < b:
                    cuts.add(root)
    total = 0.0
    ordered = sorted(cuts)
    for seg_a, seg_b in zip(ordered, ordered[1:]):
        mid = (seg_a + seg_b) / 2.0
        poly: Poly = [1.0]
        positive = True
        for lx, ux, ly, uy in per_dim:
            upper = ux if ux[0] + ux[1] * mid <= uy[0] + uy[1] * mid else uy
            lower = lx if lx[0] + lx[1] * mid >= ly[0] + ly[1] * mid else ly
            c0 = upper[0] - lower[0]
            c1 = upper[1] - lower[1]
            if c0 + c1 * mid <= 0.0:
                positive = False
                break
            poly = _poly_mul_linear(poly, c0, c1)
        if positive:
            total += _poly_definite_integral(poly, seg_a, seg_b)
    return total


def center_distance_sq_integral(x: TPBR, y: TPBR, a: float, b: float) -> float:
    """Integral over [a, b] of the squared distance between centers.

    The centers move linearly, so the squared distance is a quadratic in
    ``t`` and integrates in closed form.  Used for the RemoveTop
    (forced-reinsert) ordering, where only the ranking matters.
    """
    if b <= a:
        return 0.0
    quad = [0.0, 0.0, 0.0]
    for d in range(x.dims):
        lx, ux = _dim_lines(x, d)
        ly, uy = _dim_lines(y, d)
        c0 = (lx[0] + ux[0]) / 2.0 - (ly[0] + uy[0]) / 2.0
        c1 = (lx[1] + ux[1]) / 2.0 - (ly[1] + uy[1]) / 2.0
        quad[0] += c0 * c0
        quad[1] += 2.0 * c0 * c1
        quad[2] += c1 * c1
    return _poly_definite_integral(quad, a, b)
