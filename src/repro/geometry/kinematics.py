"""Moving points: linear trajectories with expiration times.

An object's position is modeled as ``x(t) = x(t_ref) + v * (t - t_ref)``
(Section 2.1 of the paper).  The recorded information is considered valid
only until the object's expiration time ``t_exp``; afterwards the object
"expires" and must be ignored by queries and eventually purged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

Vector = Tuple[float, ...]

#: Expiration time meaning "never expires" (plain TPR-tree behaviour).
NEVER = math.inf


@dataclass(frozen=True)
class MovingPoint:
    """A d-dimensional point moving linearly, valid until ``t_exp``.

    Attributes:
        pos: reference position, i.e. the position at ``t_ref``.
        vel: velocity vector.
        t_ref: reference time of ``pos``.
        t_exp: expiration time; ``math.inf`` if the object never expires.
    """

    pos: Vector
    vel: Vector
    t_ref: float = 0.0
    t_exp: float = NEVER

    def __post_init__(self) -> None:
        if len(self.pos) != len(self.vel):
            raise ValueError(
                f"pos has {len(self.pos)} dims but vel has {len(self.vel)}"
            )
        if not self.pos:
            raise ValueError("zero-dimensional moving point")
        if self.t_exp != self.t_exp or self.t_ref != self.t_ref:
            # NaN compares False against everything, so it would slip
            # past the ordering check below and poison every expiration
            # comparison downstream (including durable-page replay).
            raise ValueError("t_ref and t_exp must not be NaN")
        if self.t_exp < self.t_ref:
            raise ValueError(
                f"t_exp {self.t_exp} precedes reference time {self.t_ref}"
            )

    @property
    def dims(self) -> int:
        return len(self.pos)

    def position_at(self, t: float) -> Vector:
        """Predicted position at time ``t`` (extrapolates beyond ``t_exp``)."""
        dt = t - self.t_ref
        return tuple(p + v * dt for p, v in zip(self.pos, self.vel))

    def coordinate_at(self, dim: int, t: float) -> float:
        """Predicted coordinate in one dimension at time ``t``."""
        return self.pos[dim] + self.vel[dim] * (t - self.t_ref)

    def is_expired(self, now: float) -> bool:
        """True if the recorded information is stale at time ``now``.

        An entry is *live* at its exact expiration instant, so that a
        deletion scheduled for ``t_exp`` always finds it.
        """
        return self.t_exp < now

    def with_reference_time(self, t_ref: float) -> "MovingPoint":
        """Re-express the same trajectory relative to a new reference time.

        The paper keeps all reference positions at a single index-wide
        reference time; this is the conversion it describes ("such a
        reference position can always be computed").
        """
        return MovingPoint(self.position_at(t_ref), self.vel, t_ref, self.t_exp)

    def speed(self) -> float:
        """Euclidean length of the velocity vector."""
        return math.sqrt(sum(v * v for v in self.vel))
