"""Intersection tests between queries, trajectories and TPBRs.

Everything in this index is linear in time, so "does the query trapezoid
intersect this bounding rectangle / trajectory?" reduces to the
feasibility of a system of linear inequalities in the single variable
``t``, clipped to the query's time interval and the participants'
expiration times (Section 4.1.5: intersection is checked between
``t1`` and ``min(t2, t_exp)``).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

from .kinematics import MovingPoint
from .queries import QueryRegion
from .tpbr import TPBR

#: Numerical slack for touching intersections.
EPS = 1e-9

#: A linear function of absolute time: value(t) = offset + slope * t.
Linear = Tuple[float, float]


def make_linear(value_at_ref: float, slope: float, t_ref: float) -> Linear:
    """Express ``value_at_ref + slope*(t - t_ref)`` as offset + slope*t."""
    return (value_at_ref - slope * t_ref, slope)


def feasible_window(
    constraints: Iterable[Linear], t_start: float, t_end: float
) -> Optional[Tuple[float, float]]:
    """Sub-interval of [t_start, t_end] where every constraint is >= 0.

    Args:
        constraints: linear functions required to be non-negative.
        t_start: interval start.
        t_end: interval end (may be ``inf``).

    Returns:
        The feasible (possibly degenerate) time window, or None if empty.
    """
    a, b = t_start, t_end
    if b < a:
        return None
    for offset, slope in constraints:
        # Constraints are enforced with EPS slack so that touching
        # configurations count as intersecting.  Slopes below EPS are
        # treated as constant: dividing by a near-zero slope produces
        # huge, numerically meaningless roots that can clip the window
        # in either direction depending on rounding.
        slack = offset + EPS
        if abs(slope) < EPS:
            if slack < 0.0:
                return None
            continue
        root = -slack / slope
        if slope > 0.0:
            a = max(a, root)
        else:
            b = min(b, root)
        if b < a:
            return None
    return (a, b)


def _pair_constraints(
    q_lo: Linear, q_hi: Linear, s_lo: Linear, s_hi: Linear
) -> Tuple[Linear, Linear]:
    """Constraints for 1-d overlap: s_hi >= q_lo and q_hi >= s_lo."""
    lower = (s_hi[0] - q_lo[0], s_hi[1] - q_lo[1])
    upper = (q_hi[0] - s_lo[0], q_hi[1] - s_lo[1])
    return lower, upper


def region_intersects_tpbr(region: QueryRegion, br: TPBR) -> bool:
    """Does the query trapezoid intersect the TPBR while both are valid?

    The time window is the query's [t1, t2] clipped at the rectangle's
    expiration time; an expired rectangle intersects nothing.
    """
    t_end = min(region.t2, br.t_exp)
    if t_end < region.t1:
        return False
    constraints = []
    for d in range(region.dims):
        q_lo = make_linear(region.lo[d], region.vlo[d], region.t1)
        q_hi = make_linear(region.hi[d], region.vhi[d], region.t1)
        b_lo = make_linear(br.lo[d], br.vlo[d], br.t_ref)
        b_hi = make_linear(br.hi[d], br.vhi[d], br.t_ref)
        constraints.extend(_pair_constraints(q_lo, q_hi, b_lo, b_hi))
    return feasible_window(constraints, region.t1, t_end) is not None


def region_matches_point(region: QueryRegion, point: MovingPoint) -> bool:
    """Does the trajectory pass through the query region before expiring?"""
    t_end = min(region.t2, point.t_exp)
    if t_end < region.t1:
        return False
    constraints = []
    for d in range(region.dims):
        q_lo = make_linear(region.lo[d], region.vlo[d], region.t1)
        q_hi = make_linear(region.hi[d], region.vhi[d], region.t1)
        p = make_linear(point.pos[d], point.vel[d], point.t_ref)
        constraints.extend(_pair_constraints(q_lo, q_hi, p, p))
    return feasible_window(constraints, region.t1, t_end) is not None


def tpbrs_intersect(a: TPBR, b: TPBR, t_start: float, t_end: float) -> bool:
    """Do two TPBRs overlap at some time in the given window?

    The window is additionally clipped at both expiration times.
    """
    t_end = min(t_end, a.t_exp, b.t_exp)
    if t_end < t_start:
        return False
    constraints = []
    for d in range(a.dims):
        a_lo = make_linear(a.lo[d], a.vlo[d], a.t_ref)
        a_hi = make_linear(a.hi[d], a.vhi[d], a.t_ref)
        b_lo = make_linear(b.lo[d], b.vlo[d], b.t_ref)
        b_hi = make_linear(b.hi[d], b.vhi[d], b.t_ref)
        constraints.extend(_pair_constraints(a_lo, a_hi, b_lo, b_hi))
    return feasible_window(constraints, t_start, t_end) is not None


def sample_region_match(
    region: QueryRegion, point: MovingPoint, samples: int = 256
) -> bool:
    """Brute-force oracle: sample the time window densely.

    Used only by tests to validate :func:`region_matches_point`.  Sampling
    can miss grazing intersections, so tests treat this as a one-sided
    check (if sampling finds a hit, the analytic test must agree).
    """
    t_end = min(region.t2, point.t_exp)
    if t_end < region.t1:
        return False
    if math.isinf(t_end):
        t_end = region.t1 + 1.0
    span = t_end - region.t1
    for i in range(samples + 1):
        t = region.t1 + span * i / samples if samples else region.t1
        x = point.position_at(t)
        inside = all(
            region.lower_at(d, t) - EPS <= x[d] <= region.upper_at(d, t) + EPS
            for d in range(region.dims)
        )
        if inside:
            return True
    return False
