"""Static axis-parallel hyper-rectangles.

Used for the spatial parts of queries, for the classic R*-tree substrate,
and as the time-slice evaluation of time-parameterized rectangles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

Vector = Tuple[float, ...]


@dataclass(frozen=True)
class Rect:
    """A d-dimensional rectangle given by its lower and upper corners."""

    lo: Vector
    hi: Vector

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"lo has {len(self.lo)} dims but hi has {len(self.hi)}"
            )
        if not self.lo:
            raise ValueError("zero-dimensional rectangle")
        for low, high in zip(self.lo, self.hi):
            if low > high:
                raise ValueError(f"degenerate rectangle: lo {low} > hi {high}")

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        p = tuple(point)
        return cls(p, p)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing all given rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("union of no rectangles")
        lo = tuple(min(r.lo[i] for r in rects) for i in range(rects[0].dims))
        hi = tuple(max(r.hi[i] for r in rects) for i in range(rects[0].dims))
        return cls(lo, hi)

    @property
    def dims(self) -> int:
        return len(self.lo)

    @property
    def area(self) -> float:
        """Hyper-volume (area in 2-d, length in 1-d)."""
        result = 1.0
        for low, high in zip(self.lo, self.hi):
            result *= high - low
        return result

    @property
    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree margin heuristic)."""
        return sum(high - low for low, high in zip(self.lo, self.hi))

    @property
    def center(self) -> Vector:
        return tuple((low + high) / 2.0 for low, high in zip(self.lo, self.hi))

    def extent(self, dim: int) -> float:
        return self.hi[dim] - self.lo[dim]

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersects(self, other: "Rect") -> bool:
        return all(
            slo <= ohi and olo <= shi
            for slo, shi, olo, ohi in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def overlap_area(self, other: "Rect") -> float:
        """Hyper-volume of the intersection (0 if disjoint)."""
        result = 1.0
        for slo, shi, olo, ohi in zip(self.lo, self.hi, other.lo, other.hi):
            side = min(shi, ohi) - max(slo, olo)
            if side <= 0.0:
                return 0.0
            result *= side
        return result

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(
            low <= p <= high for low, p, high in zip(self.lo, point, self.hi)
        )

    def contains_rect(self, other: "Rect") -> bool:
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also cover ``other``."""
        return self.union(other).area - self.area

    def center_distance(self, other: "Rect") -> float:
        return math.dist(self.center, other.center)
