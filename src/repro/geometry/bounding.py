"""Construction of time-parameterized bounding rectangles (Section 4.1).

Five candidate bounding-region types are studied by the paper:

* ``CONSERVATIVE`` — tight at computation time, edges move with the
  extreme member velocities (the TPR-tree's rectangles; the only sound
  choice when members never expire).
* ``STATIC`` — zero edge velocities; bounds each member over its whole
  remaining lifetime.  Velocities need not be stored, nearly doubling
  internal fan-out.
* ``UPDATE_MINIMUM`` — tight at computation time like conservative ones,
  but the edge speeds are relaxed as far as the members' expiration
  times allow (Figure 4).
* ``NEAR_OPTIMAL`` — per dimension, the minimal-integral bound is the
  line through the convex-hull *bridge* edge at a median line
  (Lemma 4.1); later dimensions shift their median using the already
  computed ones (Lemma 4.2); dimensions are visited in random order.
* ``OPTIMAL`` — exact minimal volume-integral TPBR found by sweeping the
  median over hull-edge combinations in the first d-1 dimensions and
  placing the last dimension by Lemma 4.2.

All algorithms handle members with infinite expiration times by imposing
velocity floors/ceilings on the computed bounds (the generalization the
paper mentions at the end of Section 4.1.4).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from .hull import (
    Line,
    Point2,
    bridge_edge,
    line_through,
    lower_hull,
    supporting_line,
    upper_hull,
)
from .kinematics import NEVER, MovingPoint
from .tpbr import TPBR, Boundable

#: Smallest horizon used when every member has already expired.
_MIN_DELTA = 1e-9


class BoundingKind(str, Enum):
    """The bounding-region types compared in Section 5."""

    CONSERVATIVE = "conservative"
    STATIC = "static"
    UPDATE_MINIMUM = "update_minimum"
    NEAR_OPTIMAL = "near_optimal"
    OPTIMAL = "optimal"


@dataclass
class _DimensionData:
    """Endpoint sets and velocity constraints for one dimension."""

    upper_points: List[Point2] = field(default_factory=list)
    lower_points: List[Point2] = field(default_factory=list)
    x_ref_min: float = math.inf
    x_ref_max: float = -math.inf
    vel_min: float = math.inf
    vel_max: float = -math.inf
    inf_vel_min: Optional[float] = None  # ceiling for the lower bound slope
    inf_vel_max: Optional[float] = None  # floor for the upper bound slope


def _item_bounds(item: Boundable, dim: int, t: float) -> Tuple[float, float]:
    """(lower, upper) coordinate of an item in one dimension at time t."""
    if isinstance(item, MovingPoint):
        x = item.coordinate_at(dim, t)
        return x, x
    return item.lower_at(dim, t), item.upper_at(dim, t)


def _item_velocities(item: Boundable, dim: int) -> Tuple[float, float]:
    """(lower-bound, upper-bound) velocity of an item in one dimension."""
    if isinstance(item, MovingPoint):
        return item.vel[dim], item.vel[dim]
    return item.vlo[dim], item.vhi[dim]


def _collect(items: Sequence[Boundable], dims: int, t_ref: float) -> List[_DimensionData]:
    """Build per-dimension endpoint sets P (Section 4.1.3).

    P contains, per dimension, the extreme coordinates at the computation
    time plus each member's bound evaluated at its expiration time.
    Members that never expire contribute velocity constraints instead of
    endpoints.
    """
    data = [_DimensionData() for _ in range(dims)]
    for item in items:
        t_exp = item.t_exp
        finite = not math.isinf(t_exp)
        t_end = max(t_exp, t_ref) if finite else t_ref
        for d in range(dims):
            dd = data[d]
            lo_ref, hi_ref = _item_bounds(item, d, t_ref)
            dd.x_ref_min = min(dd.x_ref_min, lo_ref)
            dd.x_ref_max = max(dd.x_ref_max, hi_ref)
            v_lo, v_hi = _item_velocities(item, d)
            dd.vel_min = min(dd.vel_min, v_lo)
            dd.vel_max = max(dd.vel_max, v_hi)
            if finite:
                if t_end > t_ref:
                    lo_end, hi_end = _item_bounds(item, d, t_end)
                    dd.upper_points.append((t_end, hi_end))
                    dd.lower_points.append((t_end, lo_end))
            else:
                if dd.inf_vel_max is None or v_hi > dd.inf_vel_max:
                    dd.inf_vel_max = v_hi
                if dd.inf_vel_min is None or v_lo < dd.inf_vel_min:
                    dd.inf_vel_min = v_lo
    for dd in data:
        dd.upper_points.append((t_ref, dd.x_ref_max))
        dd.lower_points.append((t_ref, dd.x_ref_min))
    return data


def _constrain_upper(line: Line, dd: _DimensionData) -> Line:
    """Raise the upper bound's slope to cover never-expiring members."""
    if dd.inf_vel_max is not None and line[1] < dd.inf_vel_max:
        return supporting_line(dd.upper_points, dd.inf_vel_max, upper=True)
    return line

def _constrain_lower(line: Line, dd: _DimensionData) -> Line:
    """Lower the lower bound's slope to cover never-expiring members."""
    if dd.inf_vel_min is not None and line[1] > dd.inf_vel_min:
        return supporting_line(dd.lower_points, dd.inf_vel_min, upper=False)
    return line


def _assemble(
    lines: Sequence[Tuple[Line, Line]], t_ref: float, t_exp: float
) -> TPBR:
    """Turn per-dimension (lower, upper) lines into a TPBR at ``t_ref``."""
    lo, hi, vlo, vhi = [], [], [], []
    for lower, upper in lines:
        low = lower[0] + lower[1] * t_ref
        high = upper[0] + upper[1] * t_ref
        if high < low:  # numerical noise on degenerate inputs
            low = high = (low + high) / 2.0
        lo.append(low)
        hi.append(high)
        vlo.append(lower[1])
        vhi.append(upper[1])
    return TPBR(tuple(lo), tuple(hi), tuple(vlo), tuple(vhi), t_ref, t_exp)


def _horizon_delta(t_ref: float, horizon: Optional[float], t_exp: float) -> float:
    """Integration length: min(H, t_exp - t_ref), per Section 4.1.1."""
    delta = math.inf if horizon is None else horizon
    if not math.isinf(t_exp):
        delta = min(delta, t_exp - t_ref)
    return max(delta, _MIN_DELTA)


def lemma42_median(
    computed: Sequence[Tuple[float, float]], delta: float
) -> float:
    """Median-line offset for the next dimension (Lemma 4.2).

    Args:
        computed: (extent, extent-velocity) of each already-fixed dimension.
        delta: integration length.

    Returns:
        The offset ``m`` from the computation time, in ``[0, delta]``.
    """
    # Coefficients of the product polynomial prod_i (h_i + w_i * tau).
    coeffs = [1.0]
    for h, w in computed:
        nxt = [0.0] * (len(coeffs) + 1)
        for k, c in enumerate(coeffs):
            nxt[k] += c * h
            nxt[k + 1] += c * w
        coeffs = nxt
    numerator = sum(
        c * delta ** (k + 2) / (k + 2) for k, c in enumerate(coeffs)
    )
    denominator = sum(
        c * delta ** (k + 1) / (k + 1) for k, c in enumerate(coeffs)
    )
    if denominator <= 0.0:
        return delta / 2.0
    return min(max(numerator / denominator, 0.0), delta)


def _volume_integral(
    spans: Sequence[Tuple[float, float]], delta: float
) -> float:
    """Integral over [0, delta] of prod_i (h_i + w_i * tau)."""
    coeffs = [1.0]
    for h, w in spans:
        nxt = [0.0] * (len(coeffs) + 1)
        for k, c in enumerate(coeffs):
            nxt[k] += c * h
            nxt[k + 1] += c * w
        coeffs = nxt
    return sum(c * delta ** (k + 1) / (k + 1) for k, c in enumerate(coeffs))


def _bridge_pair(
    dd: _DimensionData, median_t: float
) -> Tuple[Line, Line]:
    """(lower, upper) bridge lines at a median, with infinity constraints."""
    upper = line_through(*bridge_edge(upper_hull(dd.upper_points), median_t))
    lower = line_through(*bridge_edge(lower_hull(dd.lower_points), median_t))
    return _constrain_lower(lower, dd), _constrain_upper(upper, dd)


# ---------------------------------------------------------------------------
# The five algorithms
# ---------------------------------------------------------------------------


def conservative_tpbr(
    items: Sequence[Boundable], t_ref: float
) -> TPBR:
    """Tight at ``t_ref``; edges move with the extreme member velocities."""
    dims = _dims_of(items)
    data = _collect(items, dims, t_ref)
    lines = []
    for dd in data:
        lower = (dd.x_ref_min - dd.vel_min * t_ref, dd.vel_min)
        upper = (dd.x_ref_max - dd.vel_max * t_ref, dd.vel_max)
        lines.append((lower, upper))
    return _assemble(lines, t_ref, _max_expiration(items))


def static_tpbr(items: Sequence[Boundable], t_ref: float) -> TPBR:
    """Zero-velocity bound over every member's remaining lifetime.

    Raises:
        ValueError: if some member never expires — a static rectangle
            cannot bound an unbounded trajectory.
    """
    dims = _dims_of(items)
    data = _collect(items, dims, t_ref)
    lines = []
    for dd in data:
        if dd.inf_vel_max is not None and dd.inf_vel_max > 0.0:
            raise ValueError(
                "static bounding rectangles require finite expiration times"
            )
        if dd.inf_vel_min is not None and dd.inf_vel_min < 0.0:
            raise ValueError(
                "static bounding rectangles require finite expiration times"
            )
        lower = (min(x for _, x in dd.lower_points), 0.0)
        upper = (max(x for _, x in dd.upper_points), 0.0)
        lines.append((lower, upper))
    return _assemble(lines, t_ref, _max_expiration(items))


def update_minimum_tpbr(items: Sequence[Boundable], t_ref: float) -> TPBR:
    """Tight at ``t_ref`` with edge speeds relaxed by expiration times.

    The upper bound passes through the maximum coordinate at ``t_ref``
    with the smallest slope that still covers every member until it
    expires (Figure 4); symmetrically for the lower bound.
    """
    dims = _dims_of(items)
    data = _collect(items, dims, t_ref)
    lines = []
    for dd in data:
        up_slope = 0.0
        lo_slope = 0.0
        for t, x in dd.upper_points:
            if t > t_ref:
                up_slope = max(up_slope, (x - dd.x_ref_max) / (t - t_ref))
        for t, x in dd.lower_points:
            if t > t_ref:
                lo_slope = min(lo_slope, (x - dd.x_ref_min) / (t - t_ref))
        if dd.inf_vel_max is not None:
            up_slope = max(up_slope, dd.inf_vel_max)
        if dd.inf_vel_min is not None:
            lo_slope = min(lo_slope, dd.inf_vel_min)
        upper = (dd.x_ref_max - up_slope * t_ref, up_slope)
        lower = (dd.x_ref_min - lo_slope * t_ref, lo_slope)
        lines.append((lower, upper))
    return _assemble(lines, t_ref, _max_expiration(items))


def near_optimal_tpbr(
    items: Sequence[Boundable],
    t_ref: float,
    horizon: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> TPBR:
    """Bridge-based bound with Lemma 4.2 medians, dimensions in random order.

    Expected running time O(d * |P|) with a linear bridge algorithm; this
    implementation uses the Graham-scan based variant the paper's authors
    also chose.
    """
    dims = _dims_of(items)
    t_exp = _max_expiration(items)
    delta = _horizon_delta(t_ref, horizon, t_exp)
    if math.isinf(delta):
        # An unbounded horizon admits no finite-integral trapezoid other
        # than the conservative one.
        return conservative_tpbr(items, t_ref)
    data = _collect(items, dims, t_ref)
    order = list(range(dims))
    if rng is not None:
        rng.shuffle(order)
    lines: List[Optional[Tuple[Line, Line]]] = [None] * dims
    computed: List[Tuple[float, float]] = []
    for d in order:
        if computed:
            median = lemma42_median(computed, delta)
        else:
            median = delta / 2.0
        lower, upper = _bridge_pair(data[d], t_ref + median)
        lines[d] = (lower, upper)
        h = (upper[0] + upper[1] * t_ref) - (lower[0] + lower[1] * t_ref)
        computed.append((max(h, 0.0), upper[1] - lower[1]))
    return _assemble([ln for ln in lines if ln is not None], t_ref, t_exp)


def optimal_tpbr(
    items: Sequence[Boundable],
    t_ref: float,
    horizon: Optional[float] = None,
) -> TPBR:
    """Exact minimal volume-integral TPBR (Section 4.1.4).

    Sweeps the median line over hull-edge combinations in the first d-1
    dimensions; the last dimension's median follows from Lemma 4.2.
    Worst-case O(|P|^(d-1) log |P|).
    """
    dims = _dims_of(items)
    t_exp = _max_expiration(items)
    delta = _horizon_delta(t_ref, horizon, t_exp)
    if math.isinf(delta):
        return conservative_tpbr(items, t_ref)
    data = _collect(items, dims, t_ref)

    def candidates(dd: _DimensionData) -> List[Tuple[Line, Line]]:
        """Distinct (lower, upper) bridge pairs as the median sweeps (0, delta)."""
        breakpoints = {0.0, delta}
        for chain in (upper_hull(dd.upper_points), lower_hull(dd.lower_points)):
            for t, _ in chain:
                offset = t - t_ref
                if 0.0 < offset < delta:
                    breakpoints.add(offset)
        cuts = sorted(breakpoints)
        pairs = []
        seen = set()
        for a, b in zip(cuts, cuts[1:]):
            median = t_ref + (a + b) / 2.0
            pair = _bridge_pair(dd, median)
            key = (pair[0], pair[1])
            if key not in seen:
                seen.add(key)
                pairs.append(pair)
        return pairs

    head_candidates = [candidates(dd) for dd in data[:-1]]
    best: Optional[List[Tuple[Line, Line]]] = None
    best_value = math.inf
    for combo in itertools.product(*head_candidates) if head_candidates else [()]:
        spans = []
        for lower, upper in combo:
            h = (upper[0] + upper[1] * t_ref) - (lower[0] + lower[1] * t_ref)
            spans.append((max(h, 0.0), upper[1] - lower[1]))
        median = lemma42_median(spans, delta) if spans else delta / 2.0
        last = _bridge_pair(data[-1], t_ref + median)
        h_last = (last[1][0] + last[1][1] * t_ref) - (last[0][0] + last[0][1] * t_ref)
        value = _volume_integral(
            spans + [(max(h_last, 0.0), last[1][1] - last[0][1])], delta
        )
        if value < best_value:
            best_value = value
            best = list(combo) + [last]
    if best is None:
        # Degenerate (near-zero) expiration times can make every
        # candidate's volume integral non-finite — the bridge slopes
        # blow up and the coefficient products overflow to NaN, so no
        # candidate ever compares below ``best_value``.  The
        # near-optimal bound is well defined on the same input.
        return near_optimal_tpbr(items, t_ref, horizon)
    return _assemble(best, t_ref, t_exp)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def compute_tpbr(
    items: Sequence[Boundable],
    t_ref: float,
    kind: BoundingKind = BoundingKind.NEAR_OPTIMAL,
    horizon: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> TPBR:
    """Compute a bounding rectangle of the requested kind.

    Args:
        items: moving points and/or child TPBRs to enclose.
        t_ref: computation time (the rectangle is valid from here on).
        kind: which of the five algorithms to use.
        horizon: the time horizon H — how far into the future queries are
            expected to look at this rectangle (used by the near-optimal
            and optimal kinds).
        rng: randomness source for the near-optimal dimension order.

    Returns:
        A TPBR bounding every item from ``t_ref`` until the item expires.
    """
    if not items:
        raise ValueError("cannot bound an empty set of items")
    if kind is BoundingKind.CONSERVATIVE:
        return conservative_tpbr(items, t_ref)
    if kind is BoundingKind.STATIC:
        return static_tpbr(items, t_ref)
    if kind is BoundingKind.UPDATE_MINIMUM:
        return update_minimum_tpbr(items, t_ref)
    if kind is BoundingKind.NEAR_OPTIMAL:
        return near_optimal_tpbr(items, t_ref, horizon, rng)
    if kind is BoundingKind.OPTIMAL:
        return optimal_tpbr(items, t_ref, horizon)
    raise ValueError(f"unknown bounding kind: {kind!r}")


def _dims_of(items: Sequence[Boundable]) -> int:
    if not items:
        raise ValueError("cannot bound an empty set of items")
    dims = items[0].dims
    for item in items:
        if item.dims != dims:
            raise ValueError("items differ in dimensionality")
    return dims


def _max_expiration(items: Sequence[Boundable]) -> float:
    t = -math.inf
    for item in items:
        t = max(t, item.t_exp)
        if math.isinf(t):
            return NEVER
    return t
