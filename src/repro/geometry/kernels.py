"""Batched geometry kernels over struct-of-arrays inputs.

The scalar routines in :mod:`repro.geometry.bounding`,
:mod:`repro.geometry.intersection` and :mod:`repro.geometry.integrals`
are called once per entry on the tree's hot paths (query filtering,
split/reinsert scoring).  This module provides batched equivalents that
evaluate a whole node's entries in one call.

Two execution paths, one contract:

* when numpy is importable, inputs are packed into struct-of-arrays
  float64 arrays and evaluated with vectorized elementwise arithmetic;
* otherwise (numpy stays an *optional* dependency) the batch functions
  fall back to looping the scalar routines.

Both paths produce **identical** results.  This is not an accident of
"close enough" floating point: the vectorized code replicates the exact
operation order of the scalar code, restricted to IEEE-754 operations
that numpy evaluates identically to CPython (+, -, *, /, min, max and
comparisons).  Notably, powers are never computed with ``**`` — SIMD
``pow`` is not bit-compatible with libm's — which is why the scalar
integrals build powers by repeated multiplication.  Property tests in
``tests/geometry/test_kernels.py`` enforce the equivalence on random
inputs with and without numpy.

Kernels that cannot be vectorized profitably (hull-based TPBR kinds,
overlap integrals with data-dependent breakpoint sets) simply loop the
scalar code; callers get one uniform batch API either way.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .bounding import BoundingKind, compute_tpbr
from .integrals import (
    area_integral,
    center_distance_sq_integral,
    margin_integral,
    overlap_integral,
)
from .intersection import EPS, region_intersects_tpbr, region_matches_point
from .kinematics import MovingPoint
from .queries import QueryRegion
from .tpbr import TPBR, Boundable

try:  # pragma: no cover - exercised via monkeypatch in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Below this many items the scalar loop wins on packing overhead.
_MIN_BATCH = 4

#: Per-item integration window (lower, upper bound).
Window = Tuple[float, float]


def numpy_enabled() -> bool:
    """True when the vectorized paths are active."""
    return np is not None


# ---------------------------------------------------------------------------
# Intersection kernels
# ---------------------------------------------------------------------------


def _query_lines(region: QueryRegion):
    """Query bound lines as offset/slope arrays (offset + slope * t)."""
    t1 = region.t1
    q_lo = np.array(
        [region.lo[d] - region.vlo[d] * t1 for d in range(region.dims)]
    )
    q_hi = np.array(
        [region.hi[d] - region.vhi[d] * t1 for d in range(region.dims)]
    )
    q_vlo = np.array(region.vlo, dtype=np.float64)
    q_vhi = np.array(region.vhi, dtype=np.float64)
    return q_lo, q_hi, q_vlo, q_vhi


def _batch_feasible(region, s_lo_off, s_lo_vel, s_hi_off, s_hi_vel, t_exp):
    """Vectorized :func:`repro.geometry.intersection.feasible_window`.

    Mirrors the scalar routine: constraints with |slope| < EPS act as
    constants, the window start is the max of positive-slope roots and
    ``t1``, the end the min of negative-slope roots and the expiration-
    clipped ``t2``.  Max/min are exact, so sequential clipping and one
    global reduction agree bitwise.
    """
    q_lo, q_hi, q_vlo, q_vhi = _query_lines(region)
    # 1-d overlap per dimension: s_hi >= q_lo and q_hi >= s_lo.
    offsets = np.concatenate([s_hi_off - q_lo, q_hi - s_lo_off], axis=1)
    slopes = np.concatenate([s_hi_vel - q_vlo, q_vhi - s_lo_vel], axis=1)
    slack = offsets + EPS
    const = np.abs(slopes) < EPS
    violated = np.any(const & (slack < 0.0), axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        roots = -slack / np.where(const, 1.0, slopes)
    starts = np.where(~const & (slopes > 0.0), roots, -np.inf)
    ends = np.where(~const & (slopes < 0.0), roots, np.inf)
    t_end = np.minimum(region.t2, t_exp)
    a = np.maximum(region.t1, starts.max(axis=1))
    b = np.minimum(t_end, ends.min(axis=1))
    ok = (t_end >= region.t1) & ~violated & (b >= a)
    return [bool(v) for v in ok]


def pack_points(points: Sequence[MovingPoint]):
    """Precompute the SoA form consumed by :func:`batch_region_matches`.

    Returns ``None`` when the scalar loop would run anyway.  The pack is
    query-independent, so callers evaluating many queries against the
    same point set (the tree caches one per node) pay the array
    extraction once instead of per query.
    """
    if np is None or len(points) < _MIN_BATCH:
        return None
    pos = np.array([p.pos for p in points], dtype=np.float64)
    vel = np.array([p.vel for p in points], dtype=np.float64)
    t_ref = np.array([p.t_ref for p in points], dtype=np.float64)
    t_exp = np.array([p.t_exp for p in points], dtype=np.float64)
    base = pos - vel * t_ref[:, None]
    return (base, vel, base, vel, t_exp)


def pack_tpbrs(brs: Sequence[TPBR]):
    """Precompute the SoA form consumed by :func:`batch_region_intersects`.

    Returns ``None`` when the scalar loop would run anyway.
    """
    if np is None or len(brs) < _MIN_BATCH:
        return None
    lo, hi, vlo, vhi, t_ref, t_exp = _tpbr_soa(brs)
    s_lo = lo - vlo * t_ref[:, None]
    s_hi = hi - vhi * t_ref[:, None]
    return (s_lo, vlo, s_hi, vhi, t_exp)


def batch_region_matches(
    region: QueryRegion, points: Sequence[MovingPoint], packed=None
) -> List[bool]:
    """``[region_matches_point(region, p) for p in points]``, batched.

    ``packed`` — a cached :func:`pack_points` result for the same
    ``points`` — skips re-extraction; it is ignored when numpy is
    unbound so a cache populated earlier can never force the
    vectorized path.
    """
    if np is None:
        return [region_matches_point(region, p) for p in points]
    if packed is None:
        packed = pack_points(points)
    if packed is None:
        return [region_matches_point(region, p) for p in points]
    return _batch_feasible(region, *packed)


def batch_region_intersects(
    region: QueryRegion, brs: Sequence[TPBR], packed=None
) -> List[bool]:
    """``[region_intersects_tpbr(region, br) for br in brs]``, batched.

    ``packed`` — a cached :func:`pack_tpbrs` result for the same
    ``brs`` — skips re-extraction, as in :func:`batch_region_matches`.
    """
    if np is None:
        return [region_intersects_tpbr(region, br) for br in brs]
    if packed is None:
        packed = pack_tpbrs(brs)
    if packed is None:
        return [region_intersects_tpbr(region, br) for br in brs]
    return _batch_feasible(region, *packed)


# ---------------------------------------------------------------------------
# Multi-query intersection kernel
# ---------------------------------------------------------------------------


def pack_queries(regions: Sequence[QueryRegion]):
    """Precompute the struct-of-arrays form of K query regions.

    The per-query bound lines are evaluated with the same Python-float
    expressions as :func:`_query_lines`, so row ``k`` of the pack holds
    exactly the arrays a single-query evaluation of ``regions[k]``
    would see.  Returns ``None`` when numpy is unbound (callers fall
    back to per-query scalar loops).
    """
    if np is None or not regions:
        return None
    dims = regions[0].dims
    q_lo = np.array(
        [[r.lo[d] - r.vlo[d] * r.t1 for d in range(dims)] for r in regions]
    )
    q_hi = np.array(
        [[r.hi[d] - r.vhi[d] * r.t1 for d in range(dims)] for r in regions]
    )
    q_vlo = np.array([r.vlo for r in regions], dtype=np.float64)
    q_vhi = np.array([r.vhi for r in regions], dtype=np.float64)
    t1 = np.array([r.t1 for r in regions], dtype=np.float64)
    t2 = np.array([r.t2 for r in regions], dtype=np.float64)
    return (q_lo, q_hi, q_vlo, q_vhi, t1, t2)


def select_queries(packed, rows):
    """Row-select a :func:`pack_queries` result (one row per query)."""
    q_lo, q_hi, q_vlo, q_vhi, t1, t2 = packed
    return (q_lo[rows], q_hi[rows], q_vlo[rows], q_vhi[rows],
            t1[rows], t2[rows])


def multi_query_hits(queries, soa):
    """(K, N) boolean hit matrix of K packed queries against one node.

    ``queries`` is a (possibly row-selected) :func:`pack_queries`
    result; ``soa`` is the node's cached :func:`pack_points` /
    :func:`pack_tpbrs` tuple.  Row ``k`` is **bit-identical** to
    ``_batch_feasible(regions[k], *soa)``: every elementwise operation
    matches the single-query kernel, and the max/min reductions are
    order-independent for non-NaN inputs (no NaN can arise — slack is
    finite and const-masked divisors are at least EPS), so broadcasting
    K queries against N entries changes nothing.
    """
    q_lo, q_hi, q_vlo, q_vhi, t1, t2 = queries
    s_lo_off, s_lo_vel, s_hi_off, s_hi_vel, t_exp = soa
    offsets = np.concatenate(
        [s_hi_off[None, :, :] - q_lo[:, None, :],
         q_hi[:, None, :] - s_lo_off[None, :, :]], axis=2
    )
    slopes = np.concatenate(
        [s_hi_vel[None, :, :] - q_vlo[:, None, :],
         q_vhi[:, None, :] - s_lo_vel[None, :, :]], axis=2
    )
    slack = offsets + EPS
    const = np.abs(slopes) < EPS
    violated = np.any(const & (slack < 0.0), axis=2)
    with np.errstate(divide="ignore", invalid="ignore"):
        roots = -slack / np.where(const, 1.0, slopes)
    starts = np.where(~const & (slopes > 0.0), roots, -np.inf)
    ends = np.where(~const & (slopes < 0.0), roots, np.inf)
    t_end = np.minimum(t2[:, None], t_exp[None, :])
    a = np.maximum(t1[:, None], starts.max(axis=2))
    b = np.minimum(t_end, ends.min(axis=2))
    return (t_end >= t1[:, None]) & ~violated & (b >= a)


# ---------------------------------------------------------------------------
# Bounding kernel
# ---------------------------------------------------------------------------


def batch_compute_tpbr(
    groups: Sequence[Sequence[Boundable]],
    t_ref: float,
    kind: BoundingKind = BoundingKind.NEAR_OPTIMAL,
    horizon: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> List[TPBR]:
    """One TPBR per group, as if by :func:`compute_tpbr` on each.

    Only the conservative kind vectorizes: its bounds are pure min/max
    reductions over member endpoints.  The hull-based kinds (and the
    expiration-endpoint collection of static/update-minimum) are
    inherently sequential per group and loop the scalar code — which
    also keeps the near-optimal kind's rng consumption order identical
    to per-group scalar calls.
    """
    vectorize = (
        np is not None
        and kind is BoundingKind.CONSERVATIVE
        and groups
        and all(groups)
        and sum(len(g) for g in groups) >= _MIN_BATCH
    )
    if not vectorize:
        return [
            compute_tpbr(list(g), t_ref, kind, horizon=horizon, rng=rng)
            for g in groups
        ]
    items = [item for g in groups for item in g]
    dims = items[0].dims
    if any(item.dims != dims for item in items):
        # Let the scalar path raise its usual dimensionality error.
        return [
            compute_tpbr(list(g), t_ref, kind, horizon=horizon, rng=rng)
            for g in groups
        ]
    n = len(items)
    lo = np.empty((n, dims))
    hi = np.empty((n, dims))
    vlo = np.empty((n, dims))
    vhi = np.empty((n, dims))
    item_ref = np.empty(n)
    item_exp = np.empty(n)
    for i, item in enumerate(items):
        if isinstance(item, MovingPoint):
            lo[i] = item.pos
            hi[i] = item.pos
            vlo[i] = item.vel
            vhi[i] = item.vel
        else:
            lo[i] = item.lo
            hi[i] = item.hi
            vlo[i] = item.vlo
            vhi[i] = item.vhi
        item_ref[i] = item.t_ref
        item_exp[i] = item.t_exp
    dt = t_ref - item_ref
    lo_ref = lo + vlo * dt[:, None]
    hi_ref = hi + vhi * dt[:, None]
    offsets = [0]
    for g in groups[:-1]:
        offsets.append(offsets[-1] + len(g))
    starts = np.array(offsets, dtype=np.intp)
    x_min = np.minimum.reduceat(lo_ref, starts, axis=0)
    x_max = np.maximum.reduceat(hi_ref, starts, axis=0)
    v_min = np.minimum.reduceat(vlo, starts, axis=0)
    v_max = np.maximum.reduceat(vhi, starts, axis=0)
    g_exp = np.maximum.reduceat(item_exp, starts)
    # Same round trip as the scalar line assembly, so the results agree
    # bitwise even though the terms "should" cancel.
    low = (x_min - v_min * t_ref) + v_min * t_ref
    high = (x_max - v_max * t_ref) + v_max * t_ref
    crossed = high < low
    if crossed.any():
        mid = (low + high) / 2.0
        low = np.where(crossed, mid, low)
        high = np.where(crossed, mid, high)
    return [
        TPBR(
            tuple(float(v) for v in low[g]),
            tuple(float(v) for v in high[g]),
            tuple(float(v) for v in v_min[g]),
            tuple(float(v) for v in v_max[g]),
            t_ref,
            float(g_exp[g]),
        )
        for g in range(len(groups))
    ]


# ---------------------------------------------------------------------------
# Integral kernels
# ---------------------------------------------------------------------------


def _tpbr_soa(brs: Sequence[TPBR]):
    lo = np.array([b.lo for b in brs], dtype=np.float64)
    hi = np.array([b.hi for b in brs], dtype=np.float64)
    vlo = np.array([b.vlo for b in brs], dtype=np.float64)
    vhi = np.array([b.vhi for b in brs], dtype=np.float64)
    t_ref = np.array([b.t_ref for b in brs], dtype=np.float64)
    t_exp = np.array([b.t_exp for b in brs], dtype=np.float64)
    return lo, hi, vlo, vhi, t_ref, t_exp


def _windows_soa(windows: Sequence[Window]):
    a = np.array([w[0] for w in windows], dtype=np.float64)
    b = np.array([w[1] for w in windows], dtype=np.float64)
    return a, b


def batch_area_integral(
    brs: Sequence[TPBR], windows: Sequence[Window]
) -> List[float]:
    """``[area_integral(br, a, b) ...]`` for per-item windows, batched."""
    if np is None or len(brs) < _MIN_BATCH:
        return [area_integral(br, a, b) for br, (a, b) in zip(brs, windows)]
    lo, hi, vlo, vhi, t_ref, _ = _tpbr_soa(brs)
    a, b = _windows_soa(windows)
    with np.errstate(all="ignore"):
        c1 = vhi - vlo
        c0 = (hi - lo) - c1 * t_ref[:, None]
        # _clip_nonnegative: largest end <= b with all extents >= 0.
        at_a = c0 + c1 * a[:, None]
        invalid = np.any(at_a < -1e-12, axis=1)
        neg = c1 < 0.0
        roots = -c0 / np.where(neg, c1, 1.0)
        end = np.minimum(b, np.min(np.where(neg, roots, np.inf), axis=1))
        end = np.maximum(end, a)
        zero = invalid | (b <= a) | (end <= a)
        total = _poly_product_integral(c0, c1, a, end)
        result = np.where(zero, 0.0, total)
    return [float(v) for v in result]


def _poly_product_integral(c0, c1, a, b):
    """Integral over [a, b] of prod_d (c0[:, d] + c1[:, d] * t), per row.

    Replicates ``_poly_mul_linear`` + ``_poly_definite_integral``
    operation for operation (powers by repeated multiplication).
    """
    n = c0.shape[0]
    coeffs = [np.ones(n)]
    for d in range(c0.shape[1]):
        nxt = [np.zeros(n) for _ in range(len(coeffs) + 1)]
        for k, c in enumerate(coeffs):
            nxt[k] = nxt[k] + c * c0[:, d]
            nxt[k + 1] = nxt[k + 1] + c * c1[:, d]
        coeffs = nxt
    total = np.zeros(n)
    pa = a.copy()
    pb = b.copy()
    for k, c in enumerate(coeffs):
        total = total + c * (pb - pa) / (k + 1)
        pa = pa * a
        pb = pb * b
    return total


def batch_margin_integral(
    brs: Sequence[TPBR], windows: Sequence[Window]
) -> List[float]:
    """``[margin_integral(br, a, b) ...]`` for per-item windows, batched."""
    if np is None or len(brs) < _MIN_BATCH:
        return [margin_integral(br, a, b) for br, (a, b) in zip(brs, windows)]
    lo, hi, vlo, vhi, t_ref, _ = _tpbr_soa(brs)
    a, b = _windows_soa(windows)
    n = len(brs)
    with np.errstate(all="ignore"):
        slope = vhi - vlo
        value0 = (hi - lo) - slope * t_ref[:, None]
        total = np.zeros(n)
        for d in range(lo.shape[1]):
            c0 = value0[:, d]
            c1 = slope[:, d]
            sloped = c1 != 0.0
            root = -c0 / np.where(sloped, c1, 1.0)
            end = np.where(c1 < 0.0, np.minimum(b, root), b)
            shrinks_in = (c1 > 0.0) & (c0 + c1 * a < 0.0)
            start = np.where(shrinks_in, np.maximum(a, root), a)
            seg = np.zeros(n)
            pa = start.copy()
            pb = end.copy()
            seg = seg + c0 * (pb - pa) / 1
            pa = pa * start
            pb = pb * end
            seg = seg + c1 * (pb - pa) / 2
            total = total + np.where(end > start, seg, 0.0)
        result = np.where(b <= a, 0.0, total)
    return [float(v) for v in result]


def batch_center_distance_sq_integral(
    brs: Sequence[TPBR], anchor: TPBR, windows: Sequence[Window]
) -> List[float]:
    """``[center_distance_sq_integral(br, anchor, a, b) ...]``, batched."""
    if np is None or len(brs) < _MIN_BATCH:
        return [
            center_distance_sq_integral(br, anchor, a, b)
            for br, (a, b) in zip(brs, windows)
        ]
    lo, hi, vlo, vhi, t_ref, _ = _tpbr_soa(brs)
    a, b = _windows_soa(windows)
    n = len(brs)
    center0 = ((lo - vlo * t_ref[:, None]) + (hi - vhi * t_ref[:, None])) / 2.0
    center1 = (vlo + vhi) / 2.0
    q0 = np.zeros(n)
    q1 = np.zeros(n)
    q2 = np.zeros(n)
    for d in range(lo.shape[1]):
        y_lo0 = anchor.lo[d] - anchor.vlo[d] * anchor.t_ref
        y_hi0 = anchor.hi[d] - anchor.vhi[d] * anchor.t_ref
        c0 = center0[:, d] - (y_lo0 + y_hi0) / 2.0
        c1 = center1[:, d] - (anchor.vlo[d] + anchor.vhi[d]) / 2.0
        q0 = q0 + c0 * c0
        q1 = q1 + 2.0 * c0 * c1
        q2 = q2 + c1 * c1
    total = np.zeros(n)
    pa = a.copy()
    pb = b.copy()
    for k, q in enumerate((q0, q1, q2)):
        total = total + q * (pb - pa) / (k + 1)
        pa = pa * a
        pb = pb * b
    result = np.where(b <= a, 0.0, total)
    return [float(v) for v in result]


def batch_overlap_integral(
    anchor: TPBR, brs: Sequence[TPBR], windows: Sequence[Window]
) -> List[float]:
    """``[overlap_integral(anchor, br, a, b) ...]`` for per-item windows.

    Always loops the scalar routine: the breakpoint set (bound-crossing
    instants) differs per pair, so there is no fixed-shape vectorization
    to hand to numpy.  Provided so callers can stay on the batch API.
    """
    return [
        overlap_integral(anchor, br, a, b)
        for br, (a, b) in zip(brs, windows)
    ]
