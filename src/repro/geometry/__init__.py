"""Geometry of moving objects: trajectories, TPBRs, queries, integrals."""

from .bounding import (
    BoundingKind,
    compute_tpbr,
    conservative_tpbr,
    lemma42_median,
    near_optimal_tpbr,
    optimal_tpbr,
    static_tpbr,
    update_minimum_tpbr,
)
from .hull import bridge_edge, bridge_line, line_through, lower_hull, upper_hull
from .integrals import (
    area_integral,
    center_distance_sq_integral,
    integration_end,
    margin_integral,
    overlap_integral,
)
from .intersection import (
    feasible_window,
    region_intersects_tpbr,
    region_matches_point,
    tpbrs_intersect,
)
from .kinematics import NEVER, MovingPoint
from .knn import (
    brute_force_knn,
    point_distance_sq,
    tpbr_min_distance_sq,
)
from .queries import (
    MovingQuery,
    QueryRegion,
    SpatioTemporalQuery,
    TimesliceQuery,
    WindowQuery,
)
from .rect import Rect
from .tpbr import TPBR, Boundable

__all__ = [
    "Boundable",
    "BoundingKind",
    "MovingPoint",
    "MovingQuery",
    "NEVER",
    "QueryRegion",
    "Rect",
    "SpatioTemporalQuery",
    "TPBR",
    "TimesliceQuery",
    "WindowQuery",
    "area_integral",
    "bridge_edge",
    "brute_force_knn",
    "bridge_line",
    "center_distance_sq_integral",
    "compute_tpbr",
    "conservative_tpbr",
    "feasible_window",
    "integration_end",
    "lemma42_median",
    "line_through",
    "lower_hull",
    "margin_integral",
    "near_optimal_tpbr",
    "optimal_tpbr",
    "overlap_integral",
    "point_distance_sq",
    "region_intersects_tpbr",
    "region_matches_point",
    "static_tpbr",
    "tpbr_min_distance_sq",
    "tpbrs_intersect",
    "update_minimum_tpbr",
    "upper_hull",
]
