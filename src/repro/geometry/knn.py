"""Distance kernels for k-nearest-neighbor search over moving objects.

Best-first kNN descent (see :meth:`repro.core.tree.MovingObjectTree.query_knn`)
orders its priority queue by two quantities evaluated at the query time
``t``:

* the **exact squared distance** from the query point to a moving
  point's position at ``t`` (leaf entries), and
* an **admissible lower bound** on that distance for every point a TPBR
  can contain at ``t`` (internal entries): the squared distance from the
  query point to the rectangle the TPBR occupies at ``t``, shrunk by the
  TPBR containment tolerance so the bound never exceeds the true
  distance of an enclosed point.

Both quantities come in a scalar form and a numpy-batched form over the
struct-of-arrays node caches of :mod:`repro.geometry.kernels`
(:func:`~repro.geometry.kernels.pack_points` /
:func:`~repro.geometry.kernels.pack_tpbrs`).  As everywhere in the
kernel layer, the two paths are **bit-identical**: the vectorized code
replicates the exact operation order of the scalar code using only
IEEE-754 operations that numpy evaluates identically to CPython
(+, -, *, min, max and comparisons; never ``**``).  In particular the
scalar path evaluates positions through the same
``(pos - vel * t_ref) + vel * t`` offset form the packs store, so a
cached pack and the scalar loop agree to the last bit.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .kinematics import MovingPoint
from .tpbr import TPBR

from . import kernels as _kernels

#: Containment slack of :meth:`repro.geometry.tpbr.TPBR.contains_point`:
#: a bounded point may protrude from its TPBR by up to this much per
#: coordinate, so rectangle distances shrink by it to stay admissible.
TPBR_TOL = 1e-7

Vector = Tuple[float, ...]


def point_distance_sq(x: Vector, point: MovingPoint, t: float) -> float:
    """Exact squared distance from ``x`` to ``point``'s position at ``t``.

    Parameters
    ----------
    x : tuple of float
        The query location.
    point : MovingPoint
        The moving point (its expiration is *not* consulted here).
    t : float
        The evaluation time.

    Returns
    -------
    float
        ``sum((x_d - p_d(t))**2)``, accumulated in dimension order with
        positions evaluated as ``(pos - vel * t_ref) + vel * t`` — the
        exact float operations of the batched kernel, so scalar and
        vectorized answers are bit-identical.
    """
    acc = 0.0
    for d in range(len(x)):
        base = point.pos[d] - point.vel[d] * point.t_ref
        diff = (base + point.vel[d] * t) - x[d]
        acc += diff * diff
    return acc


def tpbr_min_distance_sq(x: Vector, br: TPBR, t: float) -> float:
    """Admissible lower bound on the distance to any point in ``br`` at ``t``.

    The TPBR's rectangle at ``t`` is evaluated per dimension through the
    packed offset form; crossed bounds (a rectangle shrunk past zero
    extent) are reordered with min/max.  The per-dimension gap from
    ``x`` to the interval is then shrunk by :data:`TPBR_TOL` (the
    containment slack of :meth:`~repro.geometry.tpbr.TPBR.contains_point`)
    and clamped at zero before squaring, so the bound never exceeds the
    exact distance of any point the TPBR bounds.

    Parameters
    ----------
    x : tuple of float
        The query location.
    br : TPBR
        The time-parameterized rectangle (expiration not consulted).
    t : float
        The evaluation time.

    Returns
    -------
    float
        A lower bound on :func:`point_distance_sq` over every point the
        TPBR contains at ``t``; 0.0 when ``x`` lies inside the
        rectangle.
    """
    acc = 0.0
    for d in range(br.dims):
        s_lo = br.lo[d] - br.vlo[d] * br.t_ref
        s_hi = br.hi[d] - br.vhi[d] * br.t_ref
        lo = s_lo + br.vlo[d] * t
        hi = s_hi + br.vhi[d] * t
        low = min(lo, hi)
        high = max(lo, hi)
        gap = max(low - x[d], x[d] - high)
        gap = max(gap - TPBR_TOL, 0.0)
        acc += gap * gap
    return acc


def batch_point_distances_sq(
    x: Vector, points: Sequence[MovingPoint], t: float, packed=None
) -> List[float]:
    """``[point_distance_sq(x, p, t) for p in points]``, batched.

    Parameters
    ----------
    x : tuple of float
        The query location.
    points : sequence of MovingPoint
        The points to score.
    t : float
        The evaluation time.
    packed : tuple, optional
        A cached :func:`~repro.geometry.kernels.pack_points` result for
        the same ``points``; ignored when numpy is unbound so a cache
        populated earlier can never force the vectorized path.

    Returns
    -------
    list of float
        Exact squared distances, bit-identical to the scalar loop.
    """
    np = _kernels.np
    if np is None or packed is None:
        return [point_distance_sq(x, p, t) for p in points]
    base, vel = packed[0], packed[1]
    acc = np.zeros(len(points), dtype=np.float64)
    for d in range(len(x)):
        diff = (base[:, d] + vel[:, d] * t) - x[d]
        acc = acc + diff * diff
    return [float(v) for v in acc]


def batch_tpbr_min_distances_sq(
    x: Vector, brs: Sequence[TPBR], t: float, packed=None
) -> List[float]:
    """``[tpbr_min_distance_sq(x, br, t) for br in brs]``, batched.

    Parameters
    ----------
    x : tuple of float
        The query location.
    brs : sequence of TPBR
        The rectangles to bound.
    t : float
        The evaluation time.
    packed : tuple, optional
        A cached :func:`~repro.geometry.kernels.pack_tpbrs` result for
        the same ``brs``; ignored when numpy is unbound.

    Returns
    -------
    list of float
        Admissible lower bounds, bit-identical to the scalar loop.
    """
    np = _kernels.np
    if np is None or packed is None:
        return [tpbr_min_distance_sq(x, br, t) for br in brs]
    s_lo, vlo, s_hi, vhi = packed[0], packed[1], packed[2], packed[3]
    acc = np.zeros(len(brs), dtype=np.float64)
    for d in range(len(x)):
        lo = s_lo[:, d] + vlo[:, d] * t
        hi = s_hi[:, d] + vhi[:, d] * t
        low = np.minimum(lo, hi)
        high = np.maximum(lo, hi)
        gap = np.maximum(low - x[d], x[d] - high)
        gap = np.maximum(gap - TPBR_TOL, 0.0)
        acc = acc + gap * gap
    return [float(v) for v in acc]


def validate_knn_args(x: Vector, t: float, k: int, dims: int) -> None:
    """Reject malformed kNN arguments with a clear error.

    Parameters
    ----------
    x : tuple of float
        The query location; must have ``dims`` finite coordinates.
    t : float
        The evaluation time; must be finite.
    k : int
        The neighbor count; must be a non-negative integer.
    dims : int
        The index's dimensionality.

    Raises
    ------
    ValueError
        On a dimension mismatch, non-finite input, or negative ``k``.
    """
    if len(x) != dims:
        raise ValueError(f"expected a {dims}-d query point, got {len(x)}-d")
    if not all(math.isfinite(c) for c in x):
        raise ValueError(f"non-finite query point {x!r}")
    if not math.isfinite(t):
        raise ValueError(f"non-finite query time {t!r}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")


def brute_force_knn(
    entries: Sequence[Tuple[MovingPoint, int]], x: Vector, t: float, k: int
) -> List[Tuple[float, int]]:
    """The brute-force kNN oracle over raw ``(point, oid)`` entries.

    Scores every entry that is live at ``t`` (``not t_exp < t`` — alive
    at the exact expiration instant, the tree's expiration convention)
    with :func:`point_distance_sq` and returns the ``k`` smallest under
    the canonical ``(squared distance, oid)`` order.  Index paths must
    reproduce this answer bit-identically.

    Parameters
    ----------
    entries : sequence of (MovingPoint, int)
        The full population, expired entries included.
    x : tuple of float
        The query location.
    t : float
        The evaluation time.
    k : int
        The neighbor count.

    Returns
    -------
    list of (float, int)
        At most ``k`` ``(squared distance, oid)`` pairs, ascending.
    """
    scored = sorted(
        (point_distance_sq(x, point, t), oid)
        for point, oid in entries
        if not point.t_exp < t
    )
    return scored[:k]
