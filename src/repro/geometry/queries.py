"""The three query types of Section 2.1.

* Type 1, *timeslice*: a rectangle R at a single time point t.
* Type 2, *window*: a rectangle R covering a time interval [t1, t2].
* Type 3, *moving*: the trapezoid connecting R1 at t1 to R2 at t2.

All three are normalized to a :class:`QueryRegion` — per dimension, a
pair of linear-in-time bounds over [t1, t2] — so the index needs a single
intersection routine (Section 4.1.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .rect import Rect

Vector = Tuple[float, ...]


@dataclass(frozen=True)
class QueryRegion:
    """A (d+1)-dimensional trapezoid: linear bounds per dimension over time.

    In dimension ``i`` the query occupies
    ``[lo[i] + vlo[i]*(t - t1), hi[i] + vhi[i]*(t - t1)]`` for
    ``t in [t1, t2]``.
    """

    lo: Vector
    hi: Vector
    vlo: Vector
    vhi: Vector
    t1: float
    t2: float

    def __post_init__(self) -> None:
        """Validate the query interval's orientation."""
        if self.t2 < self.t1:
            raise ValueError(f"query interval end {self.t2} precedes start {self.t1}")

    @property
    def dims(self) -> int:
        """Spatial dimensionality of the region."""
        return len(self.lo)

    def lower_at(self, dim: int, t: float) -> float:
        """Lower bound in dimension ``dim`` at time ``t``."""
        return self.lo[dim] + self.vlo[dim] * (t - self.t1)

    def upper_at(self, dim: int, t: float) -> float:
        """Upper bound in dimension ``dim`` at time ``t``."""
        return self.hi[dim] + self.vhi[dim] * (t - self.t1)

    def rect_at(self, t: float) -> Rect:
        """The static rectangle the region occupies at time ``t``."""
        return Rect(
            tuple(self.lower_at(d, t) for d in range(self.dims)),
            tuple(self.upper_at(d, t) for d in range(self.dims)),
        )


@dataclass(frozen=True)
class TimesliceQuery:
    """Type 1: objects inside ``rect`` at time ``t``."""

    rect: Rect
    t: float

    @property
    def t1(self) -> float:
        """Start of the (degenerate) query interval: ``t`` itself."""
        return self.t

    @property
    def t2(self) -> float:
        """End of the (degenerate) query interval: ``t`` itself."""
        return self.t

    def region(self) -> QueryRegion:
        """Normalize to a static :class:`QueryRegion` over ``[t, t]``."""
        zeros = (0.0,) * self.rect.dims
        return QueryRegion(self.rect.lo, self.rect.hi, zeros, zeros, self.t, self.t)


@dataclass(frozen=True)
class WindowQuery:
    """Type 2: objects inside ``rect`` at some time in [t1, t2]."""

    rect: Rect
    t1: float
    t2: float

    def __post_init__(self) -> None:
        """Validate the window interval's orientation."""
        if self.t2 < self.t1:
            raise ValueError(f"window end {self.t2} precedes start {self.t1}")

    def region(self) -> QueryRegion:
        """Normalize to a static :class:`QueryRegion` over ``[t1, t2]``."""
        zeros = (0.0,) * self.rect.dims
        return QueryRegion(self.rect.lo, self.rect.hi, zeros, zeros, self.t1, self.t2)


@dataclass(frozen=True)
class MovingQuery:
    """Type 3: the trapezoid from ``rect1`` at t1 to ``rect2`` at t2."""

    rect1: Rect
    rect2: Rect
    t1: float
    t2: float

    def __post_init__(self) -> None:
        """Validate interval orientation and rectangle dimensionality."""
        if self.t2 < self.t1:
            raise ValueError(f"moving query end {self.t2} precedes start {self.t1}")
        if self.rect1.dims != self.rect2.dims:
            raise ValueError("moving query rectangles differ in dimensionality")

    def region(self) -> QueryRegion:
        """Interpolate the two rectangles into a :class:`QueryRegion`.

        The bound velocities are chosen so the region coincides with
        ``rect1`` at ``t1`` and ``rect2`` at ``t2``; a zero-length
        interval degenerates to a timeslice over the rectangles' union.
        """
        span = self.t2 - self.t1
        if span <= 0.0:
            # Degenerate to a timeslice over the union of the rectangles.
            rect = self.rect1.union(self.rect2)
            zeros = (0.0,) * rect.dims
            return QueryRegion(rect.lo, rect.hi, zeros, zeros, self.t1, self.t2)
        vlo = tuple(
            (b - a) / span for a, b in zip(self.rect1.lo, self.rect2.lo)
        )
        vhi = tuple(
            (b - a) / span for a, b in zip(self.rect1.hi, self.rect2.hi)
        )
        return QueryRegion(self.rect1.lo, self.rect1.hi, vlo, vhi, self.t1, self.t2)


SpatioTemporalQuery = Union[TimesliceQuery, WindowQuery, MovingQuery]
