"""Time-parameterized bounding rectangles (TPBRs).

A TPBR is a rectangle whose edges move linearly: in each dimension the
lower bound follows ``lo_i + vlo_i * (t - t_ref)`` and the upper bound
``hi_i + vhi_i * (t - t_ref)``.  A TPBR additionally carries an
expiration time — the paper's key extension — beyond which the rectangle
(and the subtree it summarizes) contains no live information
(Section 4.1.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

from .kinematics import NEVER, MovingPoint
from .rect import Rect

Vector = Tuple[float, ...]


@dataclass(frozen=True)
class TPBR:
    """A time-parameterized bounding rectangle valid for ``t >= t_ref``.

    Attributes
    ----------
    lo : tuple of float
        Lower corner at the reference time.
    hi : tuple of float
        Upper corner at the reference time.
    vlo : tuple of float
        Velocities of the lower bounds.
    vhi : tuple of float
        Velocities of the upper bounds.
    t_ref : float
        Time at which ``lo``/``hi`` hold (the computation time).
    t_exp : float
        Expiration time — the maximum expiration time of the enclosed
        entries; ``math.inf`` when some entry never expires.
    """

    lo: Vector
    hi: Vector
    vlo: Vector
    vhi: Vector
    t_ref: float = 0.0
    t_exp: float = NEVER

    def __post_init__(self) -> None:
        """Validate dimensional consistency and edge orientation."""
        lengths = {len(self.lo), len(self.hi), len(self.vlo), len(self.vhi)}
        if len(lengths) != 1:
            raise ValueError("inconsistent dimensionality in TPBR components")
        if not self.lo:
            raise ValueError("zero-dimensional TPBR")
        for low, high in zip(self.lo, self.hi):
            if low > high + 1e-9:
                raise ValueError(f"degenerate TPBR: lo {low} > hi {high}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_moving_point(cls, point: MovingPoint, t_ref: float) -> "TPBR":
        """Degenerate TPBR tracing a single moving point from ``t_ref`` on."""
        pos = point.position_at(t_ref)
        return cls(pos, pos, point.vel, point.vel, t_ref, point.t_exp)

    @classmethod
    def static(cls, rect: Rect, t_ref: float = 0.0, t_exp: float = NEVER) -> "TPBR":
        """A non-moving TPBR (zero edge velocities)."""
        zeros = (0.0,) * rect.dims
        return cls(rect.lo, rect.hi, zeros, zeros, t_ref, t_exp)

    # -- evaluation -----------------------------------------------------------

    @property
    def dims(self) -> int:
        """Spatial dimensionality of the rectangle."""
        return len(self.lo)

    def lower_at(self, dim: int, t: float) -> float:
        """Lower bound in dimension ``dim`` at time ``t``."""
        return self.lo[dim] + self.vlo[dim] * (t - self.t_ref)

    def upper_at(self, dim: int, t: float) -> float:
        """Upper bound in dimension ``dim`` at time ``t``."""
        return self.hi[dim] + self.vhi[dim] * (t - self.t_ref)

    def rect_at(self, t: float) -> Rect:
        """The (static) rectangle occupied at time ``t``.

        Bounds that have crossed (a shrinking rectangle evaluated past the
        crossing instant) are collapsed to their midpoint.
        """
        lo = []
        hi = []
        for d in range(self.dims):
            low = self.lower_at(d, t)
            high = self.upper_at(d, t)
            if low > high:
                mid = (low + high) / 2.0
                low = high = mid
            lo.append(low)
            hi.append(high)
        return Rect(tuple(lo), tuple(hi))

    def extent_at(self, dim: int, t: float) -> float:
        """Edge length in one dimension at time ``t`` (clamped at 0)."""
        return max(0.0, self.upper_at(dim, t) - self.lower_at(dim, t))

    def area_at(self, t: float) -> float:
        """Product of the edge lengths at time ``t``."""
        result = 1.0
        for d in range(self.dims):
            result *= self.extent_at(d, t)
        return result

    def margin_at(self, t: float) -> float:
        """Sum of the edge lengths at time ``t``."""
        return sum(self.extent_at(d, t) for d in range(self.dims))

    def center_at(self, t: float) -> Vector:
        """Midpoint of the rectangle at time ``t``."""
        return tuple(
            (self.lower_at(d, t) + self.upper_at(d, t)) / 2.0
            for d in range(self.dims)
        )

    # -- expiration -----------------------------------------------------------

    def is_expired(self, now: float) -> bool:
        """True if every enclosed entry has expired by ``now``."""
        return self.t_exp < now

    def derived_expiration(self) -> float:
        """The "natural" expiration time of a shrinking TPBR.

        When expiration times are not recorded in internal entries the
        paper notes that a finite bound can still be derived for
        rectangles that shrink in some dimension: the time their extent
        reaches zero (Section 4.1.1).
        """
        t = NEVER
        for d in range(self.dims):
            closing = self.vlo[d] - self.vhi[d]
            if closing > 0.0:
                gap = self.hi[d] - self.lo[d]
                t = min(t, self.t_ref + gap / closing)
        return t

    def without_expiration(self) -> "TPBR":
        """Copy with ``t_exp`` erased (the "BRs w/o exp.t." flavour)."""
        if self.t_exp is NEVER:
            return self
        return TPBR(self.lo, self.hi, self.vlo, self.vhi, self.t_ref, NEVER)

    # -- containment ----------------------------------------------------------

    def contains_point(
        self, point: MovingPoint, from_t: float, tol: float = 1e-7
    ) -> bool:
        """Check that this TPBR bounds ``point`` from ``from_t`` until expiry.

        Checked at the interval endpoints; both trajectories are linear so
        endpoint containment implies containment throughout.
        """
        to_t = min(point.t_exp, self.t_exp)
        if to_t < from_t:
            return True  # nothing left to bound
        to_t = self._finite_probe(from_t, to_t)
        for t in (from_t, to_t):
            for d in range(self.dims):
                x = point.coordinate_at(d, t)
                if x < self.lower_at(d, t) - tol or x > self.upper_at(d, t) + tol:
                    return False
        if math.isinf(min(point.t_exp, self.t_exp)):
            # Infinite lifetime: velocities must also be bounded.
            for d in range(self.dims):
                if point.vel[d] < self.vlo[d] - tol or point.vel[d] > self.vhi[d] + tol:
                    return False
        return True

    def contains_tpbr(
        self, other: "TPBR", from_t: float, tol: float = 1e-7
    ) -> bool:
        """Check that this TPBR bounds ``other`` from ``from_t`` until expiry."""
        to_t = min(other.t_exp, self.t_exp)
        if to_t < from_t:
            return True
        to_t = self._finite_probe(from_t, to_t)
        for t in (from_t, to_t):
            for d in range(self.dims):
                if other.lower_at(d, t) < self.lower_at(d, t) - tol:
                    return False
                if other.upper_at(d, t) > self.upper_at(d, t) + tol:
                    return False
        if math.isinf(min(other.t_exp, self.t_exp)):
            for d in range(self.dims):
                if other.vlo[d] < self.vlo[d] - tol:
                    return False
                if other.vhi[d] > self.vhi[d] + tol:
                    return False
        return True

    @staticmethod
    def _finite_probe(from_t: float, to_t: float) -> float:
        """A finite endpoint to probe when the lifetime is unbounded."""
        if math.isinf(to_t):
            return from_t + 1.0
        return to_t


#: Anything a TPBR can be asked to bound.
Boundable = Union[MovingPoint, TPBR]
