"""Convex hulls and bridge edges in the (t, x)-plane.

The optimal one-dimensional time-parameterized bound is the line through
the convex-hull edge that crosses the median line ``t = t_upd + delta/2``
(Lemma 4.1).  The paper finds such "bridges" with a Graham-scan based
algorithm, which is what this module implements.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Point2 = Tuple[float, float]
#: A line x(t) = intercept + slope * t.
Line = Tuple[float, float]


def _cross(o: Point2, a: Point2, b: Point2) -> float:
    """Cross product of OA and OB; positive for a counter-clockwise turn."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _dedupe_columns(points: Sequence[Point2], keep_max: bool) -> List[Point2]:
    """Sort by t and keep one point per t (max or min x)."""
    best: dict = {}
    for t, x in points:
        if t not in best:
            best[t] = x
        elif keep_max:
            best[t] = max(best[t], x)
        else:
            best[t] = min(best[t], x)
    return sorted(best.items())


def upper_hull(points: Sequence[Point2]) -> List[Point2]:
    """Upper convex hull, left to right.

    The returned chain bounds all points from above: every point lies on
    or below every line through a chain edge.
    """
    if not points:
        raise ValueError("hull of no points")
    pts = _dedupe_columns(points, keep_max=True)
    hull: List[Point2] = []
    for p in pts:
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], p) >= 0.0:
            hull.pop()
        hull.append(p)
    return hull


def lower_hull(points: Sequence[Point2]) -> List[Point2]:
    """Lower convex hull, left to right (bounds all points from below)."""
    if not points:
        raise ValueError("hull of no points")
    pts = _dedupe_columns(points, keep_max=False)
    hull: List[Point2] = []
    for p in pts:
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], p) <= 0.0:
            hull.pop()
        hull.append(p)
    return hull


def bridge_edge(hull: Sequence[Point2], median_t: float) -> Tuple[Point2, Point2]:
    """The hull edge crossed by the vertical line ``t = median_t``.

    The median is clamped into the hull's t-range.  When the median
    coincides with a vertex, either adjacent edge yields a minimum-area
    trapezoid (the paper notes both interpretations are equivalent); the
    edge to the right is returned.  A single-vertex hull yields a
    degenerate horizontal "edge".
    """
    if not hull:
        raise ValueError("bridge of empty hull")
    if len(hull) == 1:
        return hull[0], hull[0]
    m = min(max(median_t, hull[0][0]), hull[-1][0])
    for left, right in zip(hull, hull[1:]):
        if left[0] <= m <= right[0]:
            return left, right
    return hull[-2], hull[-1]


def line_through(p: Point2, q: Point2) -> Line:
    """The line through two hull points as (intercept, slope).

    A degenerate (single-point) edge yields a horizontal line.
    """
    if q[0] == p[0]:
        return (max(p[1], q[1]), 0.0)
    slope = (q[1] - p[1]) / (q[0] - p[0])
    return (p[1] - slope * p[0], slope)


def bridge_line(points: Sequence[Point2], median_t: float, upper: bool) -> Line:
    """Convenience: hull + bridge + line in one call."""
    chain = upper_hull(points) if upper else lower_hull(points)
    p, q = bridge_edge(chain, median_t)
    return line_through(p, q)


def supporting_line(points: Sequence[Point2], slope: float, upper: bool) -> Line:
    """The minimal line of fixed slope bounding all points.

    Used when infinite-expiration members impose a velocity floor (upper
    bound) or ceiling (lower bound) on the computed bound — the paper's
    generalization to entries that never expire.
    """
    if not points:
        raise ValueError("supporting line of no points")
    if upper:
        intercept = max(x - slope * t for t, x in points)
    else:
        intercept = min(x - slope * t for t, x in points)
    return (intercept, slope)
