"""Service-level objectives: targets, windows, and error-budget burn.

An :class:`SLO` names a good/bad event split over registry counters
(e.g. good = answered queries, bad = deadline misses + shed queries)
and a target success ratio.  An :class:`SLOTracker` evaluates a set of
SLOs against a live :class:`~repro.obs.metrics.MetricsRegistry`, both
cumulatively and over a sliding window of recent checkpoints, and
reports the **error-budget burn rate**: how fast the allowed failure
fraction is being consumed, where 1.0 means "failing at exactly the
budgeted rate" and anything sustained above 1.0 exhausts the budget
before the period ends.

The discipline matches the rest of the observability layer: trackers
only exist when a real registry does, and the serving path's disabled
branch stays a ``None``-guard no-op.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SLO:
    """One objective: a target ratio of good events over a counter split.

    Attributes
    ----------
    name : str
        Objective name, e.g. ``"availability"``.
    target : float
        Required success ratio in ``(0, 1)``; the error budget is
        ``1 - target``.
    good : tuple of str
        Registry counter names tallying successful events.
    bad : tuple of str
        Registry counter names tallying budget-consuming events.
    description : str
        One-line human framing for reports and ``repro top``.
    """

    name: str
    target: float
    good: Tuple[str, ...]
    bad: Tuple[str, ...]
    description: str = ""

    def __post_init__(self):
        """Validate the target leaves a non-empty, non-trivial budget."""
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if not self.good:
            raise ValueError(f"SLO {self.name!r}: needs >= 1 good counter")


@dataclass
class SLOStatus:
    """Point-in-time evaluation of one :class:`SLO`.

    ``burn_rate`` is ``error_rate / (1 - target)``: 1.0 consumes the
    budget exactly as fast as allowed, 2.0 twice as fast.  The
    ``window_*`` twins cover only the tracker's sliding window of
    recent checkpoints, so a fresh incident shows up there long before
    it moves the cumulative numbers.  With no events observed the
    objective is vacuously met (ratio 1.0, burn 0.0).
    """

    slo: SLO
    good: int = 0
    bad: int = 0
    window_good: int = 0
    window_bad: int = 0

    @staticmethod
    def _ratio(good: int, bad: int) -> float:
        total = good + bad
        return good / total if total else 1.0

    @property
    def ratio(self) -> float:
        """Cumulative success ratio (1.0 when nothing happened yet)."""
        return self._ratio(self.good, self.bad)

    @property
    def window_ratio(self) -> float:
        """Success ratio over the sliding window only."""
        return self._ratio(self.window_good, self.window_bad)

    @property
    def burn_rate(self) -> float:
        """Cumulative error-budget burn rate (1.0 = exactly on budget)."""
        return (1.0 - self.ratio) / (1.0 - self.slo.target)

    @property
    def window_burn_rate(self) -> float:
        """Burn rate over the sliding window only."""
        return (1.0 - self.window_ratio) / (1.0 - self.slo.target)

    @property
    def met(self) -> bool:
        """Whether the cumulative ratio meets the target."""
        return self.ratio >= self.slo.target

    @property
    def budget_remaining(self) -> float:
        """Unburned fraction of the error budget (can go negative)."""
        return 1.0 - self.burn_rate

    def to_dict(self) -> Dict[str, object]:
        """Export the status for JSON reports (``repro soak``/``top``)."""
        return {
            "name": self.slo.name,
            "description": self.slo.description,
            "target": self.slo.target,
            "good": self.good,
            "bad": self.bad,
            "ratio": self.ratio,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
            "window_ratio": self.window_ratio,
            "window_burn_rate": self.window_burn_rate,
            "met": self.met,
        }


@dataclass
class _Checkpoint:
    """One sampled (good, bad) cumulative pair per objective."""

    totals: Dict[str, Tuple[int, int]] = field(default_factory=dict)


class SLOTracker:
    """Evaluates a set of SLOs against a registry, with a burn window.

    The tracker reads counters straight off the registry, so a status
    is always current; :meth:`checkpoint` additionally pushes the
    cumulative totals into a bounded deque so the ``window_*`` fields
    of :class:`SLOStatus` cover only the last ``window`` checkpoints —
    call it on a steady cadence (the frontend ticks it from its
    serving loop) to make the window a time window.

    Parameters
    ----------
    registry : MetricsRegistry
        Source of the good/bad counters.
    slos : sequence of SLO
        The objectives to track.
    window : int
        Number of checkpoints the sliding window spans.
    """

    def __init__(self, registry, slos: Sequence[SLO], window: int = 60):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.registry = registry
        self.slos = list(slos)
        self.window = window
        self._checkpoints: Deque[_Checkpoint] = deque(maxlen=window + 1)

    def _totals(self, slo: SLO) -> Tuple[int, int]:
        """Current cumulative (good, bad) for one objective."""
        good = sum(self.registry.value(name) for name in slo.good)
        bad = sum(self.registry.value(name) for name in slo.bad)
        return good, bad

    def checkpoint(self) -> None:
        """Sample cumulative totals into the sliding window."""
        cp = _Checkpoint(
            {slo.name: self._totals(slo) for slo in self.slos}
        )
        self._checkpoints.append(cp)

    def status(self, name: str) -> SLOStatus:
        """Evaluate one objective by name (raises KeyError if unknown)."""
        for slo in self.slos:
            if slo.name == name:
                return self._status(slo)
        raise KeyError(f"unknown SLO {name!r}")

    def _status(self, slo: SLO) -> SLOStatus:
        good, bad = self._totals(slo)
        window_good, window_bad = good, bad
        if self._checkpoints:
            base = self._checkpoints[0].totals.get(slo.name)
            if base is not None:
                window_good = good - base[0]
                window_bad = bad - base[1]
        return SLOStatus(
            slo=slo,
            good=good,
            bad=bad,
            window_good=window_good,
            window_bad=window_bad,
        )

    def statuses(self) -> List[SLOStatus]:
        """Evaluate every objective, in declaration order."""
        return [self._status(slo) for slo in self.slos]

    def violations(self) -> List[SLOStatus]:
        """The objectives currently missing their target."""
        return [status for status in self.statuses() if not status.met]

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Export every objective's status, keyed by SLO name."""
        return {
            status.slo.name: status.to_dict() for status in self.statuses()
        }


def default_serve_slos(
    availability_target: float = 0.97, freshness_target: float = 0.90
) -> List[SLO]:
    """The stock objectives for :class:`~repro.serve.ServiceFrontend`.

    Two objectives over the frontend's own counters:

    - **availability** — a query is good when answered at full fidelity
      or via an explained degraded read; bad when it timed out past its
      deadline, was shed by admission control, or failed outright.
    - **freshness** — a query is good when served from the live index;
      degraded reads (stale snapshot served under a tripped breaker)
      spend freshness budget even though availability forgives them.

    Targets default to values the chaos soak comfortably meets (see
    EXPERIMENTS.md); override per deployment.
    """
    return [
        SLO(
            name="availability",
            target=availability_target,
            good=("serve.queries_ok", "serve.degraded_answers"),
            bad=(
                "serve.deadline_timeouts",
                "serve.shed_queries",
                "serve.failed_queries",
            ),
            description="answered (possibly degraded) vs timed-out/shed/failed",
        ),
        SLO(
            name="freshness",
            target=freshness_target,
            good=("serve.queries_ok",),
            bad=("serve.degraded_answers",),
            description="full-fidelity answers vs degraded (stale) reads",
        ),
    ]


def check_slos(
    tracker: Optional[SLOTracker],
) -> Tuple[bool, List[Dict[str, object]]]:
    """Evaluate a tracker, tolerating its absence.

    Convenience for harness code holding an optional tracker: returns
    ``(all_met, status_dicts)``; a ``None`` tracker is vacuously met.
    """
    if tracker is None:
        return True, []
    statuses = tracker.statuses()
    return all(s.met for s in statuses), [s.to_dict() for s in statuses]
