"""Live metrics export: JSONL snapshots and Prometheus text exposition.

Two ways out of a :class:`~repro.obs.metrics.MetricsRegistry`:

* :class:`MetricsSnapshotter` — a periodic, delta-aware JSON Lines time
  series.  Each snapshot is wall-clock stamped and carries only the
  metrics that changed since the previous one (plus per-counter deltas),
  so a long soak produces a compact file that still replays to the full
  cumulative registry via :func:`accumulate`.
* :func:`prometheus_text` — the text exposition format scraped by
  Prometheus-compatible collectors, rendered from any registry export.

The module also holds the analysis helpers behind ``repro top``:
:func:`latency_breakdown` decomposes a traced scatter-gather run into
queue / router / wire / worker-CPU / worker-I/O stages, and
:func:`shard_shares` computes per-shard load share, both from exported
trace records — so ``top`` works identically on a live run and on
artifacts pulled from CI.
"""

from __future__ import annotations

import json
import re
import time
from typing import Callable, Dict, Iterable, List, Optional

from .metrics import MetricsRegistry

#: Span names recorded by the router around a full scatter-gather fan-out.
ROOT_SPAN_NAMES = ("shards.query", "shards.query_batch", "shards.apply_ops")

#: Span name recorded by a shard worker around one applied wire batch.
WORKER_SPAN_NAME = "worker.batch"

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Mangle a registry metric name into a legal Prometheus name."""
    mangled = _PROM_NAME.sub("_", name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _prom_value(value: object) -> str:
    """Format one sample value (Prometheus spells infinities oddly)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def prometheus_text(registry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters map to ``counter`` samples, gauges to ``gauge``, and
    histograms to the conventional ``_bucket{le=...}`` cumulative
    series plus ``_sum`` and ``_count``.  Anything with a ``to_dict``
    (a full registry, a scoped view, or a rebuilt
    :meth:`~repro.obs.metrics.MetricsRegistry.from_dict` export)
    renders; dots in metric names become underscores.

    Parameters
    ----------
    registry : MetricsRegistry or ScopedRegistry
        The metrics to expose.

    Returns
    -------
    str
        The exposition body, one ``# TYPE`` comment per metric.
    """
    lines: List[str] = []
    for name, entry in registry.to_dict().items():
        prom = _prom_name(name)
        kind = entry.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            bounds = entry.get("bounds", [])
            buckets = entry.get("buckets", [])
            for bound, count in zip(bounds, buckets):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {entry.get("count", 0)}')
            lines.append(f"{prom}_sum {_prom_value(entry.get('sum', 0.0))}")
            lines.append(f"{prom}_count {entry.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


class MetricsSnapshotter:
    """Periodic, delta-aware JSONL time series of one registry.

    Every :meth:`snapshot` appends one wall-clock-stamped record to
    ``path``.  The first snapshot carries the full registry export;
    later ones carry only the metrics that changed, with counters and
    histograms annotated with their ``delta`` / ``delta_count`` since
    the previous snapshot — entries stay *cumulative*, so the latest
    record for a name is always the current truth and
    :func:`accumulate` needs no replay arithmetic.

    Drive it from a serving loop with :meth:`maybe_snapshot`, which is
    a cheap clock check until ``interval_s`` has elapsed.

    Parameters
    ----------
    registry : MetricsRegistry
        The registry to sample (live references, not a copy).
    path : str
        JSONL file to append snapshots to (truncated on construction).
    interval_s : float
        Minimum seconds between :meth:`maybe_snapshot` samples.
    clock : callable
        Monotonic cadence clock; injectable for deterministic tests.
    wall_clock : callable
        Wall-clock stamp source (``time.time`` by default).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.registry = registry
        self.path = path
        self.interval_s = interval_s
        self._clock = clock
        self._wall = wall_clock
        self._prev: Dict[str, Dict[str, object]] = {}
        self._last: Optional[float] = None
        self.seq = 0
        open(path, "w", encoding="utf-8").close()

    def due(self) -> bool:
        """Whether ``interval_s`` has elapsed since the last snapshot."""
        return self._last is None or self._clock() - self._last >= self.interval_s

    def maybe_snapshot(self) -> bool:
        """Snapshot if due; returns whether one was taken."""
        if not self.due():
            return False
        self.snapshot()
        return True

    def _changed(
        self, name: str, entry: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        """Return the entry (delta-annotated) if it moved, else None."""
        prev = self._prev.get(name)
        kind = entry.get("type")
        if kind == "counter":
            before = prev["value"] if prev else 0
            delta = entry["value"] - before
            if prev is not None and delta == 0:
                return None
            return {**entry, "delta": delta}
        if kind == "histogram":
            before = prev.get("count", 0) if prev else 0
            delta = entry.get("count", 0) - before
            if prev is not None and delta == 0:
                return None
            return {**entry, "delta_count": delta}
        if prev is not None and prev.get("value") == entry.get("value"):
            return None
        return dict(entry)

    def snapshot(self) -> Dict[str, object]:
        """Append one snapshot record; returns it (also when empty).

        The record's ``metrics`` map holds cumulative entries for every
        metric that changed since the previous snapshot (all of them,
        the first time); a snapshot where nothing moved is still
        written, so gaps in the series mean the *process* stalled, not
        the workload.
        """
        export = self.registry.to_dict()
        changed: Dict[str, Dict[str, object]] = {}
        for name, entry in export.items():
            annotated = self._changed(name, entry)
            if annotated is not None:
                changed[name] = annotated
        record: Dict[str, object] = {
            "kind": "metrics_snapshot",
            "seq": self.seq,
            "wall": self._wall(),
            "metrics": changed,
        }
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
        self._prev = export
        self._last = self._clock()
        self.seq += 1
        return record


def read_snapshots(path: str) -> List[Dict[str, object]]:
    """Read a :class:`MetricsSnapshotter` JSONL file back, in order."""
    snapshots: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "metrics_snapshot":
                snapshots.append(record)
    return snapshots


def accumulate(snapshots: Iterable[Dict[str, object]]) -> MetricsRegistry:
    """Rebuild the final cumulative registry from a snapshot series.

    Snapshot entries are cumulative, so the reconstruction is simply
    "latest record wins" per metric name; the delta annotations are
    ignored (``from_dict`` tolerates extra keys).
    """
    latest: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        latest.update(snapshot.get("metrics", {}))
    return MetricsRegistry.from_dict(latest)


def latency_breakdown(
    records: Iterable[Dict[str, object]], queue_s: float = 0.0
) -> Dict[str, float]:
    """Decompose traced scatter-gather time into per-stage seconds.

    Works on span records from :func:`~repro.obs.trace.read_jsonl` (or
    ``Tracer.records()``) after a run with cross-process tracing on.
    Only worker spans stamped with a fan-out root's trace id count —
    spans from untraced single-op applies are excluded, so the worker
    stages attribute exactly the work the roots fanned out.
    The stages, and how each is measured:

    - ``queue_s`` — admission-queue wait, passed in by the caller (the
      frontend measures it; pure trace artifacts carry none).
    - ``router_s`` — router-side CPU: root fan-out span duration minus
      the time the router spent blocked on worker replies (``wait_s``).
    - ``wire_s`` — codec + transport: the router's op-batch encode time
      plus the blocked-wait remainder not covered by worker wall time.
    - ``worker_cpu_s`` — shard process CPU, from ``time.process_time``
      deltas shipped on replies (scheduler-independent).
    - ``worker_io_s`` — worker span wall time minus worker CPU: page
      I/O plus anything the OS scheduled away.

    Workers run in parallel, so their *summed* wall time can exceed
    the router's blocked wait; the worker stages are therefore the raw
    sums projected onto the wait window (critical-path attribution),
    keeping the stages **additive**: their sum equals ``total_s``
    (queue plus root-span wall time) up to clamping slack, which is
    what lets ``repro top`` render them as a percentage bar.  The raw
    unprojected sums ride along as ``worker_wall_raw_s`` /
    ``worker_cpu_raw_s`` so parallelism stays visible.

    Returns
    -------
    dict
        Stage name → seconds, plus ``total_s`` and the raw worker sums.
    """
    records = list(records)
    roots = [
        r
        for r in records
        if r.get("kind") == "span" and r.get("name") in ROOT_SPAN_NAMES
    ]
    trace_ids = {
        r["attrs"]["trace_id"] for r in roots if "trace_id" in r.get("attrs", {})
    }
    workers = [
        r
        for r in records
        if r.get("kind") == "span"
        and r.get("name") == WORKER_SPAN_NAME
        and r.get("attrs", {}).get("trace_id") in trace_ids
    ]
    total = sum(r["dur"] for r in roots)
    encode = sum(r.get("attrs", {}).get("encode_s", 0.0) for r in roots)
    wait = sum(r.get("attrs", {}).get("wait_s", 0.0) for r in roots)
    worker_wall = sum(r["dur"] for r in workers)
    worker_cpu = sum(
        min(r.get("attrs", {}).get("cpu_s", 0.0), r["dur"]) for r in workers
    )
    covered = min(worker_wall, wait)
    scale = covered / worker_wall if worker_wall > 0 else 0.0
    router = max(total - wait - encode, 0.0)
    wire = encode + (wait - covered)
    return {
        "queue_s": queue_s,
        "router_s": router,
        "wire_s": wire,
        "worker_cpu_s": worker_cpu * scale,
        "worker_io_s": (worker_wall - worker_cpu) * scale,
        "total_s": queue_s + total,
        "worker_wall_raw_s": worker_wall,
        "worker_cpu_raw_s": worker_cpu,
    }


def shard_shares(records: Iterable[Dict[str, object]]) -> Dict[int, float]:
    """Per-shard share of total worker wall time, from worker spans.

    Adopted worker spans carry a ``shard`` attribute (stamped by the
    router at adoption); the share of shard *i* is its summed span
    duration over the grand total.  An empty trace yields an empty map.

    Returns
    -------
    dict
        Shard index → fraction of worker wall time (sums to 1.0).
    """
    totals: Dict[int, float] = {}
    for r in records:
        if r.get("kind") != "span" or r.get("name") != WORKER_SPAN_NAME:
            continue
        shard = r.get("attrs", {}).get("shard")
        if shard is None:
            continue
        totals[shard] = totals.get(shard, 0.0) + r["dur"]
    grand = sum(totals.values())
    if grand <= 0:
        return {shard: 0.0 for shard in totals}
    return {shard: dur / grand for shard, dur in totals.items()}
