"""Observability: metrics registry and structured tracing.

A zero-overhead-when-disabled telemetry layer for the R^exp-tree stack.
Nothing in this package imports from the rest of :mod:`repro`, so every
layer (storage, core, experiments) can depend on it freely.

Two primitives:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (with p50/p90/p95/p99 and a ``to_dict`` export).  The
  module-level :data:`NULL_REGISTRY` hands out no-op singletons, so an
  instrumented object that was never given a real registry pays only an
  attribute check per operation.
* :class:`Tracer` — monotonic-clock-timed span/event records in a
  bounded ring buffer, exportable as JSON Lines.

See DESIGN.md §7 for the event taxonomy and which tree algorithm each
event maps to.
"""

from .export import (
    MetricsSnapshotter,
    accumulate,
    latency_breakdown,
    prometheus_text,
    read_snapshots,
    shard_shares,
)
from .metrics import (
    HISTOGRAM_KINDS,
    IO_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    ScopedRegistry,
)
from .slo import (
    SLO,
    SLOStatus,
    SLOTracker,
    check_slos,
    default_serve_slos,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    TraceContext,
    TraceFileMeta,
    Tracer,
    read_jsonl,
    sum_event_attr,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "HISTOGRAM_KINDS",
    "Histogram",
    "IO_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "ScopedRegistry",
    "TraceContext",
    "TraceFileMeta",
    "Tracer",
    "accumulate",
    "check_slos",
    "default_serve_slos",
    "latency_breakdown",
    "prometheus_text",
    "read_jsonl",
    "read_snapshots",
    "shard_shares",
    "sum_event_attr",
    "traced",
]
