"""Observability: metrics registry and structured tracing.

A zero-overhead-when-disabled telemetry layer for the R^exp-tree stack.
Nothing in this package imports from the rest of :mod:`repro`, so every
layer (storage, core, experiments) can depend on it freely.

Two primitives:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (with p50/p90/p95/p99 and a ``to_dict`` export).  The
  module-level :data:`NULL_REGISTRY` hands out no-op singletons, so an
  instrumented object that was never given a real registry pays only an
  attribute check per operation.
* :class:`Tracer` — monotonic-clock-timed span/event records in a
  bounded ring buffer, exportable as JSON Lines.

See DESIGN.md §7 for the event taxonomy and which tree algorithm each
event maps to.
"""

from .metrics import (
    IO_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    ScopedRegistry,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_jsonl,
    sum_event_attr,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IO_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ScopedRegistry",
    "Tracer",
    "read_jsonl",
    "sum_event_attr",
    "traced",
]
