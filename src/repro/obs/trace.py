"""Structured tracing: timed spans and point events in a ring buffer.

A :class:`Tracer` records two kinds of monotonic-clock-stamped records:

* **spans** — ``with tracer.span("tree.query", kind="timeslice"):`` or
  the :func:`traced` method decorator; nested spans carry their parent's
  id and depth, and the record is appended at *exit* with the measured
  duration;
* **events** — ``tracer.event("lazy_purge", purged=3)``; instantaneous,
  attributed to the innermost open span.

Records are plain dicts held in a bounded ring buffer (oldest dropped
first, with a drop counter), so a tracer can stay attached to a
long-running index without unbounded growth.  :meth:`Tracer.export_jsonl`
writes one JSON object per line; :func:`read_jsonl` reads them back.
"""

from __future__ import annotations

import json
import time
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple


class TraceContext(NamedTuple):
    """A propagatable trace identity: ``(trace_id, parent_span_id)``.

    The cross-process handshake of distributed tracing: a router stamps
    every wire batch with the trace id of the originating request and
    the span id the remote work should hang under; the worker's tracer
    records its spans locally and ships them back, and
    :meth:`Tracer.adopt` re-parents them into the router's span tree.
    A ``parent_span_id`` of 0 means "no parent" (the wire format has no
    ``None``).
    """

    trace_id: int
    parent_span_id: int = 0


class _Span:
    """Context manager recording one timed span on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        """Open the span: assign its id and start the clock."""
        tracer = self.tracer
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        self.span_id = tracer._next_id
        tracer._next_id += 1
        tracer._stack.append(self.span_id)
        self.t0 = tracer._clock()
        return self

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span after entry (e.g. result sizes)."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the span and append its record (with any error name)."""
        tracer = self.tracer
        t1 = tracer._clock()
        tracer._stack.pop()
        record: Dict[str, object] = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": len(tracer._stack),
            "t_start": self.t0,
            "dur": t1 - self.t0,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._append(record)


class Tracer:
    """Bounded ring buffer of span and event records.

    Parameters
    ----------
    capacity : int
        Maximum records retained; older records are dropped (and
        counted in :attr:`dropped`) once full.
    clock : callable
        Timestamp source; injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 262_144,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._records: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._stack: List[int] = []
        self._next_id = 1
        self.dropped = 0

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: object) -> _Span:
        """Open a timed span: ``with tracer.span("tree.query"): ...``."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instantaneous event inside the innermost span."""
        record: Dict[str, object] = {
            "kind": "event",
            "name": name,
            "span_id": self._stack[-1] if self._stack else None,
            "t": self._clock(),
        }
        if attrs:
            record["attrs"] = attrs
        self._append(record)

    def _append(self, record: Dict[str, object]) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    # -- cross-process adoption ---------------------------------------------

    def adopt(
        self,
        records: Iterable[Dict[str, object]],
        parent_id: Optional[int] = None,
        extra_attrs: Optional[Dict[str, object]] = None,
    ) -> int:
        """Graft foreign span/event records into this tracer's tree.

        The re-parenting rule of distributed tracing: every record
        minted by another process (a shard worker) carries span ids
        from *that* tracer's id space.  Adoption rewrites them into
        this tracer's space — each foreign span gets a fresh local id,
        parent links between foreign spans are preserved through the
        remapping, and foreign *roots* (``parent_id`` of ``None`` or
        one pointing outside the shipped set) are hung under
        ``parent_id`` — defaulting to this tracer's innermost open
        span, so adopting inside a scatter-gather span re-parents the
        worker's tree exactly where the request fanned out.  Depths
        shift by the adoption point's depth; ``extra_attrs`` (e.g. the
        shard index) merge into every adopted record's ``attrs``.

        Returns the number of records adopted.
        """
        records = list(records)
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        base_depth = len(self._stack)
        mapping: Dict[object, int] = {}
        for record in records:
            if record.get("kind") == "span":
                mapping[record["span_id"]] = self._next_id
                self._next_id += 1
        for record in records:
            record = dict(record)
            if extra_attrs:
                attrs = dict(record.get("attrs", ()))
                attrs.update(extra_attrs)
                record["attrs"] = attrs
            if record.get("kind") == "span":
                record["span_id"] = mapping[record["span_id"]]
                foreign_parent = record.get("parent_id")
                record["parent_id"] = mapping.get(foreign_parent, parent_id)
                record["depth"] = record.get("depth", 0) + base_depth
            else:
                foreign_span = record.get("span_id")
                record["span_id"] = mapping.get(foreign_span, parent_id)
            self._append(record)
        return len(records)

    # -- introspection ------------------------------------------------------

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    @property
    def open_spans(self) -> int:
        """Number of spans currently open (entered, not yet exited)."""
        return len(self._stack)

    def __len__(self) -> int:
        """Number of records currently retained."""
        return len(self._records)

    def records(self) -> List[Dict[str, object]]:
        """The retained records, oldest first (a copy)."""
        return list(self._records)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """All span records, optionally filtered by name."""
        return [
            r for r in self._records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """All event records, optionally filtered by name."""
        return [
            r for r in self._records
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def event_totals(self) -> Dict[str, int]:
        """Event occurrence counts by name."""
        return dict(_TallyCounter(r["name"] for r in self.events()))

    def slowest_spans(
        self, k: int = 10, name: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The k longest spans, longest first."""
        return sorted(self.spans(name), key=lambda r: r["dur"], reverse=True)[:k]

    def clear(self) -> None:
        """Drop all records, open spans and the drop counter."""
        self._records.clear()
        self._stack.clear()
        self.dropped = 0

    # -- persistence --------------------------------------------------------

    def export_jsonl(
        self,
        path: str,
        append: bool = False,
        extra: Optional[Dict[str, object]] = None,
    ) -> int:
        """Write the retained records as JSON Lines; returns the count.

        ``extra`` key/values are merged into every record (e.g. an
        adapter label when several tracers share one file).  The data
        records are bracketed by a ``trace_header`` / ``trace_footer``
        pair carrying the ring buffer's ``dropped`` count, its
        capacity and the number of spans still open at export time —
        without them, exported artifacts silently read as complete
        even when the ring buffer overflowed mid-run.  The returned
        count and :func:`read_jsonl` cover data records only; use
        ``read_jsonl(path, meta=True)`` to surface the bracket.
        """
        mode = "a" if append else "w"
        n = 0
        header: Dict[str, object] = {
            "kind": "trace_header",
            "capacity": self.capacity,
            "records": len(self._records),
            "dropped": self.dropped,
            "open_spans": len(self._stack),
        }
        if extra:
            header.update(extra)
        with open(path, mode, encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True))
            fh.write("\n")
            for record in self._records:
                if extra:
                    record = {**record, **extra}
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
                n += 1
            footer = dict(header, kind="trace_footer")
            fh.write(json.dumps(footer, sort_keys=True))
            fh.write("\n")
        return n


@dataclass
class TraceFileMeta:
    """What a trace file's header/footer brackets said about it.

    Attributes
    ----------
    segments : int
        Complete header+footer pairs found (one per appended export).
    dropped : int
        Total ring-buffer drops across all segments — records that
        existed but are *not* in the file.
    open_spans : int
        Total spans still open at export time across all segments;
        open spans have no record yet, so their time is missing.
    records : int
        Data records the headers promised.
    truncated : bool
        A header without its matching footer was seen — the file was
        cut short mid-export.
    headers : list of dict
        The raw header records, in file order.
    """

    segments: int = 0
    dropped: int = 0
    open_spans: int = 0
    records: int = 0
    truncated: bool = False
    headers: List[Dict[str, object]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether the file holds every record the tracers ever saw."""
        return not self.truncated and self.dropped == 0


def read_jsonl(
    path: str, meta: bool = False
) -> "List[Dict[str, object]] | Tuple[List[Dict[str, object]], TraceFileMeta]":
    """Read records written by :meth:`Tracer.export_jsonl`.

    Returns the data records (header/footer brackets stripped); with
    ``meta=True`` returns ``(records, TraceFileMeta)`` so callers can
    see ring-buffer drops and still-open spans that the export
    otherwise hides.  Files written before the bracket existed read as
    zero segments with ``truncated=False``.
    """
    records: List[Dict[str, object]] = []
    info = TraceFileMeta()
    open_headers = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "trace_header":
                open_headers += 1
                info.headers.append(record)
                info.dropped += record.get("dropped", 0)
                info.open_spans += record.get("open_spans", 0)
                info.records += record.get("records", 0)
            elif kind == "trace_footer":
                open_headers -= 1
                info.segments += 1
            else:
                records.append(record)
    info.truncated = open_headers > 0
    if meta:
        return records, info
    return records


def sum_event_attr(
    records: Iterable[Dict[str, object]], name: str, attr: str
) -> int:
    """Sum one attribute over all events of the given name."""
    total = 0
    for record in records:
        if record.get("kind") == "event" and record.get("name") == name:
            total += record.get("attrs", {}).get(attr, 0)
    return total


def traced(
    name: str, tracer_attr: str = "_tracer"
) -> Callable[[Callable], Callable]:
    """Method decorator: wrap calls in a tracer span when tracing is on.

    The decorated method's ``self`` must expose the tracer under
    ``tracer_attr`` (``None`` disables: the call proceeds with only an
    attribute check of overhead).
    """

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(self, *args, **kwargs):
            tracer = getattr(self, tracer_attr, None)
            if tracer is None:
                return fn(self, *args, **kwargs)
            with tracer.span(name):
                return fn(self, *args, **kwargs)

        return wrapper

    return decorate


class NullTracer:
    """No-op tracer for code that wants an always-present tracer object."""

    dropped = 0
    capacity = 0

    class _NullSpan:
        __slots__ = ()

        def __enter__(self):
            """Return itself; nothing is timed."""
            return self

        def set(self, **attrs):
            """Discard attributes."""

        def __exit__(self, *exc):
            """Record nothing."""

    _span = _NullSpan()
    current_span_id = None
    open_spans = 0

    def __bool__(self) -> bool:
        """False, so ``tracer or NULL_TRACER`` composes."""
        return False

    def span(self, name: str, **attrs: object) -> "_NullSpan":
        """Return the shared no-op span."""
        return self._span

    def event(self, name: str, **attrs: object) -> None:
        """Record nothing."""

    def adopt(self, records, parent_id=None, extra_attrs=None) -> int:
        """Adopt nothing."""
        return 0

    def __len__(self) -> int:
        """Zero: nothing is ever retained."""
        return 0

    def records(self) -> List[Dict[str, object]]:
        """Return no records."""
        return []

    def spans(self, name=None) -> List[Dict[str, object]]:
        """Return no spans."""
        return []

    def events(self, name=None) -> List[Dict[str, object]]:
        """Return no events."""
        return []

    def event_totals(self) -> Dict[str, int]:
        """Return empty totals."""
        return {}

    def slowest_spans(self, k: int = 10, name=None) -> List[Dict[str, object]]:
        """Return no spans."""
        return []

    def clear(self) -> None:
        """Clear nothing."""

    def export_jsonl(self, path: str, append: bool = False, extra=None) -> int:
        """Touch ``path`` (so downstream readers find a file); write 0 rows."""
        open(path, "a" if append else "w", encoding="utf-8").close()
        return 0


#: Shared no-op tracer: the disabled path.
NULL_TRACER = NullTracer()
