"""Structured tracing: timed spans and point events in a ring buffer.

A :class:`Tracer` records two kinds of monotonic-clock-stamped records:

* **spans** — ``with tracer.span("tree.query", kind="timeslice"):`` or
  the :func:`traced` method decorator; nested spans carry their parent's
  id and depth, and the record is appended at *exit* with the measured
  duration;
* **events** — ``tracer.event("lazy_purge", purged=3)``; instantaneous,
  attributed to the innermost open span.

Records are plain dicts held in a bounded ring buffer (oldest dropped
first, with a drop counter), so a tracer can stay attached to a
long-running index without unbounded growth.  :meth:`Tracer.export_jsonl`
writes one JSON object per line; :func:`read_jsonl` reads them back.
"""

from __future__ import annotations

import json
import time
from collections import Counter as _TallyCounter
from collections import deque
from functools import wraps
from typing import Callable, Dict, Iterable, List, Optional


class _Span:
    """Context manager recording one timed span on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        """Open the span: assign its id and start the clock."""
        tracer = self.tracer
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        self.span_id = tracer._next_id
        tracer._next_id += 1
        tracer._stack.append(self.span_id)
        self.t0 = tracer._clock()
        return self

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span after entry (e.g. result sizes)."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the span and append its record (with any error name)."""
        tracer = self.tracer
        t1 = tracer._clock()
        tracer._stack.pop()
        record: Dict[str, object] = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": len(tracer._stack),
            "t_start": self.t0,
            "dur": t1 - self.t0,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._append(record)


class Tracer:
    """Bounded ring buffer of span and event records.

    Parameters
    ----------
    capacity : int
        Maximum records retained; older records are dropped (and
        counted in :attr:`dropped`) once full.
    clock : callable
        Timestamp source; injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 262_144,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._records: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._stack: List[int] = []
        self._next_id = 1
        self.dropped = 0

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: object) -> _Span:
        """Open a timed span: ``with tracer.span("tree.query"): ...``."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instantaneous event inside the innermost span."""
        record: Dict[str, object] = {
            "kind": "event",
            "name": name,
            "span_id": self._stack[-1] if self._stack else None,
            "t": self._clock(),
        }
        if attrs:
            record["attrs"] = attrs
        self._append(record)

    def _append(self, record: Dict[str, object]) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Number of records currently retained."""
        return len(self._records)

    def records(self) -> List[Dict[str, object]]:
        """The retained records, oldest first (a copy)."""
        return list(self._records)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """All span records, optionally filtered by name."""
        return [
            r for r in self._records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """All event records, optionally filtered by name."""
        return [
            r for r in self._records
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def event_totals(self) -> Dict[str, int]:
        """Event occurrence counts by name."""
        return dict(_TallyCounter(r["name"] for r in self.events()))

    def slowest_spans(
        self, k: int = 10, name: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The k longest spans, longest first."""
        return sorted(self.spans(name), key=lambda r: r["dur"], reverse=True)[:k]

    def clear(self) -> None:
        """Drop all records, open spans and the drop counter."""
        self._records.clear()
        self._stack.clear()
        self.dropped = 0

    # -- persistence --------------------------------------------------------

    def export_jsonl(
        self,
        path: str,
        append: bool = False,
        extra: Optional[Dict[str, object]] = None,
    ) -> int:
        """Write the retained records as JSON Lines; returns the count.

        ``extra`` key/values are merged into every record (e.g. an
        adapter label when several tracers share one file).
        """
        mode = "a" if append else "w"
        n = 0
        with open(path, mode, encoding="utf-8") as fh:
            for record in self._records:
                if extra:
                    record = {**record, **extra}
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
                n += 1
        return n


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read records written by :meth:`Tracer.export_jsonl`."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def sum_event_attr(
    records: Iterable[Dict[str, object]], name: str, attr: str
) -> int:
    """Sum one attribute over all events of the given name."""
    total = 0
    for record in records:
        if record.get("kind") == "event" and record.get("name") == name:
            total += record.get("attrs", {}).get(attr, 0)
    return total


def traced(
    name: str, tracer_attr: str = "_tracer"
) -> Callable[[Callable], Callable]:
    """Method decorator: wrap calls in a tracer span when tracing is on.

    The decorated method's ``self`` must expose the tracer under
    ``tracer_attr`` (``None`` disables: the call proceeds with only an
    attribute check of overhead).
    """

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(self, *args, **kwargs):
            tracer = getattr(self, tracer_attr, None)
            if tracer is None:
                return fn(self, *args, **kwargs)
            with tracer.span(name):
                return fn(self, *args, **kwargs)

        return wrapper

    return decorate


class NullTracer:
    """No-op tracer for code that wants an always-present tracer object."""

    dropped = 0
    capacity = 0

    class _NullSpan:
        __slots__ = ()

        def __enter__(self):
            """Return itself; nothing is timed."""
            return self

        def set(self, **attrs):
            """Discard attributes."""

        def __exit__(self, *exc):
            """Record nothing."""

    _span = _NullSpan()

    def __bool__(self) -> bool:
        """False, so ``tracer or NULL_TRACER`` composes."""
        return False

    def span(self, name: str, **attrs: object) -> "_NullSpan":
        """Return the shared no-op span."""
        return self._span

    def event(self, name: str, **attrs: object) -> None:
        """Record nothing."""

    def __len__(self) -> int:
        """Zero: nothing is ever retained."""
        return 0

    def records(self) -> List[Dict[str, object]]:
        """Return no records."""
        return []

    def spans(self, name=None) -> List[Dict[str, object]]:
        """Return no spans."""
        return []

    def events(self, name=None) -> List[Dict[str, object]]:
        """Return no events."""
        return []

    def event_totals(self) -> Dict[str, int]:
        """Return empty totals."""
        return {}

    def slowest_spans(self, k: int = 10, name=None) -> List[Dict[str, object]]:
        """Return no spans."""
        return []

    def clear(self) -> None:
        """Clear nothing."""

    def export_jsonl(self, path: str, append: bool = False, extra=None) -> int:
        """Touch ``path`` (so downstream readers find a file); write 0 rows."""
        open(path, "a" if append else "w", encoding="utf-8").close()
        return 0


#: Shared no-op tracer: the disabled path.
NULL_TRACER = NullTracer()
