"""Counters, gauges, and fixed-bucket histograms.

The observability layer's metric primitives.  A :class:`MetricsRegistry`
is a flat, name-keyed store of metric instances; instrumented code binds
the instances it needs once (at enable time) and pays only an attribute
check per operation when observability is off — the module-level
:data:`NULL_REGISTRY` hands out shared no-op singletons, so code written
against a registry never branches on "is observability on?".

Histograms are fixed-bucket: a sorted list of upper bounds plus an
implicit overflow bucket.  Percentiles are estimated by linear
interpolation inside the covering bucket and clamped to the observed
min/max, so integer-valued distributions recorded into unit-width
buckets (the I/O-count case) report exact percentiles.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        """Increase the tally by ``n`` (default 1)."""
        self.value += n

    def to_dict(self) -> Dict[str, Number]:
        """Export the counter as a plain dictionary."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value, set directly or derived from a callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Number]] = None):
        self.name = name
        self._value: Number = 0
        self._fn = fn

    def set(self, value: Number) -> None:
        """Record a new point-in-time value."""
        self._value = value

    @property
    def value(self) -> Number:
        """Current value (calls the deriving function when set)."""
        if self._fn is not None:
            return self._fn()
        return self._value

    def to_dict(self) -> Dict[str, Number]:
        """Export the gauge as a plain dictionary."""
        return {"type": "gauge", "value": self.value}


#: Default bounds for I/O-count histograms: exact (unit-width) up to 256,
#: then geometric — page counts per operation are small integers.
IO_BUCKETS: List[float] = [float(i) for i in range(257)] + [
    384.0, 512.0, 768.0, 1024.0, 1536.0, 2048.0, 4096.0, 8192.0,
    16384.0, 65536.0,
]

#: Default bounds for wall-time histograms, in seconds: 1 µs to ~84 s,
#: geometric with ~26 % resolution.
LATENCY_BUCKETS: List[float] = [1e-6 * 1.26 ** i for i in range(79)]

#: Named default bucket layouts selectable via ``Histogram(kind=...)``.
HISTOGRAM_KINDS: Dict[str, List[float]] = {
    "io": IO_BUCKETS,
    "latency": LATENCY_BUCKETS,
}

#: Name fragments that mark a metric as a wall-time measurement; such
#: histograms must choose their buckets explicitly (see ``_pick_bounds``).
_TIME_NAME_HINTS = ("latency", "seconds", "duration", "wall", "_s")


def _pick_bounds(
    name: str, bounds: Optional[Sequence[float]], kind: Optional[str]
) -> Sequence[float]:
    """Resolve a histogram's bucket bounds, loudly refusing a foot-gun.

    The historical default is :data:`IO_BUCKETS` — unit-width integer
    buckets that resolve small page counts exactly but collapse every
    sub-second latency into the first bucket.  A latency histogram
    created without explicit ``bounds`` therefore *silently* misbins,
    so a time-scented name (``latency``, ``seconds``, ``duration``,
    ``wall``, or an ``_s`` suffix) with neither ``bounds`` nor ``kind``
    is rejected rather than defaulted.
    """
    if bounds is not None:
        if kind is not None:
            raise ValueError(
                f"histogram {name!r}: pass bounds or kind, not both"
            )
        return bounds
    if kind is not None:
        try:
            return HISTOGRAM_KINDS[kind]
        except KeyError:
            raise ValueError(
                f"histogram {name!r}: unknown kind {kind!r}; choose from "
                f"{sorted(HISTOGRAM_KINDS)}"
            ) from None
    lowered = name.lower()
    if any(hint in lowered for hint in _TIME_NAME_HINTS) or lowered.endswith(
        "_s"
    ):
        raise ValueError(
            f"histogram {name!r} looks like a wall-time metric but was "
            f"created without bounds; the IO_BUCKETS default would misbin "
            f"every sub-second value — pass bounds=LATENCY_BUCKETS or "
            f"kind='latency' (or explicit bounds)"
        )
    return IO_BUCKETS


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are ascending bucket *upper* bounds; values above the last
    bound land in an implicit overflow bucket.  Exact count, sum, min and
    max are tracked alongside the buckets.  ``kind`` picks a named
    default layout (``"io"`` or ``"latency"``) instead of explicit
    bounds; with neither, :data:`IO_BUCKETS` apply unless the name
    scents like a wall-time metric, which raises (see ``_pick_bounds``).
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        kind: Optional[str] = None,
    ):
        self.name = name
        self.bounds = list(_pick_bounds(name, bounds, kind))
        if self.bounds != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        if not self.bounds:
            raise ValueError("histogram needs at least one bound")
        self.buckets = [0] * (len(self.bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @classmethod
    def linear(cls, name: str, start: float, width: float, n: int) -> "Histogram":
        """Build a histogram with ``n`` equal-width buckets."""
        return cls(name, [start + width * i for i in range(n)])

    @classmethod
    def exponential(
        cls, name: str, start: float, factor: float, n: int
    ) -> "Histogram":
        """Build a histogram with ``n`` geometrically growing buckets."""
        return cls(name, [start * factor ** i for i in range(n)])

    def record(self, value: Number) -> None:
        """Add one observation."""
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Sequence[Number]) -> None:
        """Add a batch of observations."""
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (p in [0, 100]).

        Linear interpolation within the covering bucket, clamped to the
        observed min/max; 0.0 when the histogram is empty.
        """
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / n
                value = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                return max(self.min, min(self.max, value))
            cumulative += n
        return self.max  # pragma: no cover - rank <= count always lands above

    @property
    def p50(self) -> float:
        """Estimated median."""
        return self.percentile(50.0)

    @property
    def p90(self) -> float:
        """Estimated 90th percentile."""
        return self.percentile(90.0)

    @property
    def p95(self) -> float:
        """Estimated 95th percentile."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """Estimated 99th percentile."""
        return self.percentile(99.0)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        The merge is bucket-wise and therefore exact at bucket
        resolution, but both histograms must share identical bounds;
        min/max/count/sum merge losslessly.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ"
            )
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, object]:
        """Export count, sum, extrema, key percentiles and raw buckets.

        ``bounds`` and ``buckets`` make the export lossless at bucket
        resolution, so :meth:`MetricsRegistry.from_dict` can rebuild a
        mergeable histogram from it.
        """
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """A flat, name-keyed store of metric instances.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by full name, so
    repeated binding is idempotent.  :meth:`scope` returns a view that
    prefixes names with ``<prefix>.`` but shares this registry's store —
    the per-partition child registries of a forest all export through the
    root's :meth:`to_dict`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter registered under ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(
        self, name: str, fn: Optional[Callable[[], Number]] = None
    ) -> Gauge:
        """Get or create a gauge, rebinding its deriving function."""
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        kind: Optional[str] = None,
    ) -> Histogram:
        """Get or create the histogram registered under ``name``."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds, kind)
        )

    def scope(self, prefix: str) -> "ScopedRegistry":
        """Return a ``<prefix>.``-prefixing view sharing this store."""
        return ScopedRegistry(self, prefix)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[object]:
        """Look up a metric instance by full name (None if absent)."""
        return self._metrics.get(name)

    def value(self, name: str, default: Number = 0) -> Number:
        """Current value of a counter or gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        return metric.value if metric is not None else default

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Export every metric, keyed by name."""
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._metrics.items())
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` export.

        Counters and gauges restore their values; histograms restore
        their raw buckets (exports predating the ``bounds``/``buckets``
        fields are rejected — they are not mergeable).  Derived gauges
        come back as plain point-in-time values.
        """
        registry = cls()
        for name, entry in payload.items():
            kind = entry.get("type")
            if kind == "counter":
                registry.counter(name).inc(entry["value"])
            elif kind == "gauge":
                registry.gauge(name).set(entry["value"])
            elif kind == "histogram":
                if "bounds" not in entry or "buckets" not in entry:
                    raise ValueError(
                        f"histogram {name!r} export lacks raw buckets; "
                        f"re-export with a current to_dict()"
                    )
                hist = registry.histogram(name, bounds=entry["bounds"])
                hist.buckets = list(entry["buckets"])
                hist.count = entry["count"]
                hist.total = entry["sum"]
                hist.min = (
                    entry["min"] if entry["min"] is not None else float("inf")
                )
                hist.max = (
                    entry["max"] if entry["max"] is not None else float("-inf")
                )
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Aggregate another registry into this one, name by name.

        Counters and gauges sum (a merged gauge is a point-in-time total
        across sources, e.g. pages across shards; deriving functions on
        this registry's gauges are dropped in favour of the summed
        value), and histograms merge bucket-wise via
        :meth:`Histogram.merge`.  Metrics only present in ``other`` are
        created.  This is how per-shard worker registries, shipped as
        :meth:`to_dict` exports, aggregate into one parent registry.
        """
        for name in other.names():
            metric = other.get(name)
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name)
                total = mine.value + metric.value
                mine._fn = None
                mine.set(total)
            elif isinstance(metric, Histogram):
                self.histogram(name, bounds=metric.bounds).merge(metric)
            else:  # pragma: no cover - registries only hold the three kinds
                raise TypeError(f"unmergeable metric {name!r}: {metric!r}")

    def export_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class ScopedRegistry:
    """A prefixing view over a :class:`MetricsRegistry` (shared store)."""

    def __init__(self, root: MetricsRegistry, prefix: str):
        self._root = root
        self._prefix = prefix.rstrip(".") + "."

    def counter(self, name: str) -> Counter:
        """Get or create ``<prefix>.<name>`` in the root registry."""
        return self._root.counter(self._prefix + name)

    def gauge(
        self, name: str, fn: Optional[Callable[[], Number]] = None
    ) -> Gauge:
        """Get or create ``<prefix>.<name>`` in the root registry."""
        return self._root.gauge(self._prefix + name, fn)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        kind: Optional[str] = None,
    ) -> Histogram:
        """Get or create ``<prefix>.<name>`` in the root registry."""
        return self._root.histogram(self._prefix + name, bounds, kind)

    def scope(self, prefix: str) -> "ScopedRegistry":
        """Nest a further prefix under this view."""
        return ScopedRegistry(self._root, self._prefix + prefix)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Export only the metrics under this view's prefix."""
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._root._metrics.items())
            if name.startswith(self._prefix)
        }


# -- the disabled path ---------------------------------------------------------


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def inc(self, n: Number = 1) -> None:
        """Count nothing."""

    def to_dict(self) -> Dict[str, Number]:
        """Export a zero counter."""
        return {"type": "counter", "value": 0}


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0

    def set(self, value: Number) -> None:
        """Discard the value."""

    def to_dict(self) -> Dict[str, Number]:
        """Export a zero gauge."""
        return {"type": "gauge", "value": 0}


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    mean = 0.0
    p50 = p90 = p95 = p99 = 0.0
    min = float("inf")
    max = float("-inf")

    def record(self, value: Number) -> None:
        """Record nothing."""

    def record_many(self, values: Sequence[Number]) -> None:
        """Record nothing."""

    def percentile(self, p: float) -> float:
        """Return 0.0: nothing is ever recorded."""
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        """Export an empty histogram."""
        return {"type": "histogram", "count": 0}


class NullRegistry:
    """No-op registry: hands out shared do-nothing metric singletons.

    Instrumented code holds metric references obtained from *some*
    registry; when it is this one, every ``inc``/``record``/``set`` is a
    constant-time no-op and ``to_dict`` is empty.  ``bool()`` is False so
    ``registry or NULL_REGISTRY`` composes.
    """

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def __bool__(self) -> bool:
        """False, so ``registry or NULL_REGISTRY`` composes."""
        return False

    def counter(self, name: str) -> _NullCounter:
        """Return the shared no-op counter."""
        return self._counter

    def gauge(self, name: str, fn=None) -> _NullGauge:
        """Return the shared no-op gauge."""
        return self._gauge

    def histogram(self, name: str, bounds=None, kind=None) -> _NullHistogram:
        """Return the shared no-op histogram."""
        return self._histogram

    def scope(self, prefix: str) -> "NullRegistry":
        """Return itself: scoping a no-op registry is a no-op."""
        return self

    def names(self) -> List[str]:
        """Return no names: nothing is ever registered."""
        return []

    def get(self, name: str) -> None:
        """Return None: nothing is ever registered."""
        return None

    def value(self, name: str, default: Number = 0) -> Number:
        """Return ``default``: nothing is ever registered."""
        return default

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Return an empty export."""
        return {}


#: Shared no-op registry: the disabled path.
NULL_REGISTRY = NullRegistry()
