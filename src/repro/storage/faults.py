"""Deterministic fault injection for the durable storage stack.

A :class:`FaultInjector` sits in front of every *physical* file write of
a page store and its write-ahead log (both route their writes through
``before_write``/``after_write``).  It counts writes across the whole
stack and, at a chosen write index, simulates a process death in one of
three ways:

``kill``
    Raise :class:`SimulatedCrash` *before* the bytes reach the file —
    a clean power cut between writes.
``torn``
    Write a deterministic prefix of the bytes, then crash — a torn
    page or torn log record.
``bitflip``
    Write the bytes with a single deterministically chosen bit
    inverted, then crash — silent media corruption caught by CRCs.

After the crash fires, every further write raises again: the process
model is dead, and nothing (buffer flushes, destructors) may touch the
files.  Crash-at-every-write test matrices drive the index through a
recorded workload once per write index and assert that recovery always
restores the last committed state.

With ``crash_at_write=None`` the injector is a pure write counter,
which is how a matrix first measures how many crash points a workload
has.
"""

from __future__ import annotations

import random
from typing import Optional

#: Supported crash modes.
MODES = ("kill", "torn", "bitflip")


class SimulatedCrash(Exception):
    """Raised by a fault injector when the simulated process dies."""


class FaultInjector:
    """Deterministic crash/corruption hook for physical writes.

    Parameters
    ----------
    crash_at_write : int, optional
        1-based index of the physical write at which to inject the
        fault.  ``None`` disables injection; the instance then only
        counts writes.
    mode : {'kill', 'torn', 'bitflip'}, optional
        What the fault does (see module docstring).
    seed : int, optional
        Seed of the private RNG that picks the tear point or flipped
        bit, making every run byte-reproducible.

    Attributes
    ----------
    writes : int
        Physical writes observed so far (including the faulted one).
    crashed : bool
        Whether the simulated process has died.
    """

    def __init__(
        self,
        crash_at_write: Optional[int] = None,
        mode: str = "kill",
        seed: int = 0,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if crash_at_write is not None and crash_at_write < 1:
            raise ValueError("crash_at_write is a 1-based write index")
        self.crash_at_write = crash_at_write
        self.mode = mode
        self.writes = 0
        self.crashed = False
        self._rng = random.Random(seed)
        self._pending_crash = False

    def before_write(self, data: bytes) -> bytes:
        """Count one physical write and possibly fault it.

        Parameters
        ----------
        data : bytes
            The bytes about to be written.

        Returns
        -------
        bytes
            The (possibly truncated or corrupted) bytes to actually
            write.

        Raises
        ------
        SimulatedCrash
            In ``kill`` mode at the chosen index, and on every write
            after the process has died.
        """
        if self.crashed:
            raise SimulatedCrash("write after simulated process death")
        self.writes += 1
        if self.crash_at_write is None or self.writes != self.crash_at_write:
            return data
        if self.mode == "kill":
            self.crashed = True
            raise SimulatedCrash(
                f"killed before write #{self.writes}"
            )
        self._pending_crash = True
        if self.mode == "torn":
            keep = self._rng.randrange(1, max(2, len(data)))
            return data[:keep]
        flipped = bytearray(data)
        bit = self._rng.randrange(len(flipped) * 8)
        flipped[bit // 8] ^= 1 << (bit % 8)
        return bytes(flipped)

    def after_write(self) -> None:
        """Fire the deferred crash of ``torn``/``bitflip`` faults.

        Raises
        ------
        SimulatedCrash
            Immediately after the mangled bytes of the chosen write
            reached the file.
        """
        if self._pending_crash:
            self._pending_crash = False
            self.crashed = True
            raise SimulatedCrash(
                f"died after mangled write #{self.writes} ({self.mode})"
            )
