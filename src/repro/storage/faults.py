"""Deterministic fault injection for the durable storage stack.

A :class:`FaultInjector` sits in front of every *physical* file write of
a page store and its write-ahead log (both route their writes through
``before_write``/``after_write``).  It counts writes across the whole
stack and, at a chosen write index, simulates a process death in one of
three ways:

``kill``
    Raise :class:`SimulatedCrash` *before* the bytes reach the file —
    a clean power cut between writes.
``torn``
    Write a deterministic prefix of the bytes, then crash — a torn
    page or torn log record.
``bitflip``
    Write the bytes with a single deterministically chosen bit
    inverted, then crash — silent media corruption caught by CRCs.

After the crash fires, every further write raises again: the process
model is dead, and nothing (buffer flushes, destructors) may touch the
files.  Crash-at-every-write test matrices drive the index through a
recorded workload once per write index and assert that recovery always
restores the last committed state.

With ``crash_at_write=None`` the injector is a pure write counter,
which is how a matrix first measures how many crash points a workload
has.

Besides the fatal modes the injector carries two *transient* schedules:
``transient_writes`` faults the Nth physical write and
``transient_reads`` the Nth *guarded* page read with a
:class:`TransientIOError` — the process survives, nothing reaches the
file, and the caller may retry.  Guarded reads are only counted while
:attr:`FaultInjector.reads_armed` is set, so a serving layer can confine
read faults to its read-only paths (a read abort mid-mutation would
leave the in-memory tree half-updated, which no real retry could mend).
Both schedules reuse the deterministic counters, so a fault script
replays byte-identically.
"""

from __future__ import annotations

import random
from typing import Collection, Optional

#: Supported crash modes.
MODES = ("kill", "torn", "bitflip")


class SimulatedCrash(Exception):
    """Raised by a fault injector when the simulated process dies."""


class TransientIOError(Exception):
    """A retryable storage fault: the operation failed, the process lives.

    Raised by :meth:`FaultInjector.before_write` /
    :meth:`FaultInjector.before_read` at scheduled transient indices,
    always *before* any bytes move, so the caller sees a clean failure
    it can retry (the write-ahead-log commit protocol makes re-driving a
    failed commit idempotent).
    """


class FaultInjector:
    """Deterministic crash/corruption hook for physical writes.

    Parameters
    ----------
    crash_at_write : int, optional
        1-based index of the physical write at which to inject the
        fault.  ``None`` disables injection; the instance then only
        counts writes.
    mode : {'kill', 'torn', 'bitflip'}, optional
        What the fault does (see module docstring).
    seed : int, optional
        Seed of the private RNG that picks the tear point or flipped
        bit, making every run byte-reproducible.
    transient_writes : collection of int, optional
        1-based physical write indices at which :meth:`before_write`
        raises a :class:`TransientIOError` instead of writing.  Each
        index fires once (the counter passes it exactly once); a retry
        is a fresh write with the next index.
    transient_reads : collection of int, optional
        1-based *guarded* read indices at which :meth:`before_read`
        raises a :class:`TransientIOError`.  Reads are only counted
        while :attr:`reads_armed` is set.

    Attributes
    ----------
    writes : int
        Physical writes observed so far (including the faulted one).
    reads : int
        Guarded page reads observed so far (armed reads only).
    reads_armed : bool
        Whether :meth:`before_read` currently counts (and may fault)
        reads.  Defaults to ``True``; a serving layer disarms it around
        mutations.
    crashed : bool
        Whether the simulated process has died.
    """

    def __init__(
        self,
        crash_at_write: Optional[int] = None,
        mode: str = "kill",
        seed: int = 0,
        transient_writes: Collection[int] = (),
        transient_reads: Collection[int] = (),
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if crash_at_write is not None and crash_at_write < 1:
            raise ValueError("crash_at_write is a 1-based write index")
        if any(n < 1 for n in transient_writes) or \
                any(n < 1 for n in transient_reads):
            raise ValueError("transient schedules hold 1-based indices")
        self.crash_at_write = crash_at_write
        self.mode = mode
        self.writes = 0
        self.reads = 0
        self.reads_armed = True
        self.crashed = False
        self.transient_writes = frozenset(transient_writes)
        self.transient_reads = frozenset(transient_reads)
        self._rng = random.Random(seed)
        self._pending_crash = False

    def before_write(self, data: bytes) -> bytes:
        """Count one physical write and possibly fault it.

        Parameters
        ----------
        data : bytes
            The bytes about to be written.

        Returns
        -------
        bytes
            The (possibly truncated or corrupted) bytes to actually
            write.

        Raises
        ------
        SimulatedCrash
            In ``kill`` mode at the chosen index, and on every write
            after the process has died.
        TransientIOError
            At a scheduled transient write index, before any bytes
            move; the process survives and the write may be retried.
        """
        if self.crashed:
            raise SimulatedCrash("write after simulated process death")
        self.writes += 1
        if self.writes in self.transient_writes:
            raise TransientIOError(
                f"injected transient fault on write #{self.writes}"
            )
        if self.crash_at_write is None or self.writes != self.crash_at_write:
            return data
        if self.mode == "kill":
            self.crashed = True
            raise SimulatedCrash(
                f"killed before write #{self.writes}"
            )
        self._pending_crash = True
        if self.mode == "torn":
            keep = self._rng.randrange(1, max(2, len(data)))
            return data[:keep]
        flipped = bytearray(data)
        bit = self._rng.randrange(len(flipped) * 8)
        flipped[bit // 8] ^= 1 << (bit % 8)
        return bytes(flipped)

    def before_read(self) -> None:
        """Count one guarded page read and possibly fault it.

        Does nothing while :attr:`reads_armed` is unset — unarmed reads
        are neither counted nor faulted, so a transient-read schedule
        indexes only the reads a caller chose to guard (e.g. query
        descents, never mid-mutation reads).

        Raises
        ------
        SimulatedCrash
            On any read after the process has died.
        TransientIOError
            At a scheduled transient read index.
        """
        if self.crashed:
            raise SimulatedCrash("read after simulated process death")
        if not self.reads_armed:
            return
        self.reads += 1
        if self.reads in self.transient_reads:
            raise TransientIOError(
                f"injected transient fault on guarded read #{self.reads}"
            )

    def after_write(self) -> None:
        """Fire the deferred crash of ``torn``/``bitflip`` faults.

        Raises
        ------
        SimulatedCrash
            Immediately after the mangled bytes of the chosen write
            reached the file.
        """
        if self._pending_crash:
            self._pending_crash = False
            self.crashed = True
            raise SimulatedCrash(
                f"died after mangled write #{self.writes} ({self.mode})"
            )
