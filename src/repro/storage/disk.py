"""Simulated disk: a flat page store with allocation and I/O accounting.

The paper measures index quality in disk-page reads and writes against a
4 KB page store.  This module provides that store.  Pages hold arbitrary
Python payloads (tree nodes); byte-accuracy is enforced one level up by
:mod:`repro.storage.layout`, which derives how many entries fit a page,
so the simulation charges exactly the I/O a byte-level implementation
would.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from .stats import IOStats

PageId = int

INVALID_PAGE: PageId = -1


class PageError(Exception):
    """Raised on invalid page accesses (double free, missing page, ...)."""


class DiskManager:
    """A simulated disk of fixed-size pages.

    Pages are identified by dense integer ids.  Freed page ids are recycled
    (a free list), matching what a real page file does and keeping the
    "index size in pages" statistic of Figure 15 honest.
    """

    def __init__(self, page_size: int = 4096, stats: Optional[IOStats] = None):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._pages: Dict[PageId, Any] = {}
        self._free: List[PageId] = []
        self._next_id: PageId = 0

    # -- allocation ---------------------------------------------------------

    def allocate(self) -> PageId:
        """Allocate a fresh page and return its id (no I/O charged)."""
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        self._pages[pid] = None
        self.stats.allocations += 1
        return pid

    def allocate_many(self, count: int) -> List[PageId]:
        """Allocate ``count`` pages at once (the bulk-loading path).

        Recycles the free list first, then extends the page file with a
        contiguous run of fresh ids — one allocator call instead of
        ``count``, and sequential ids for sequentially written levels.
        """
        pids: List[PageId] = []
        while self._free and len(pids) < count:
            pids.append(self._free.pop())
        fresh = count - len(pids)
        pids.extend(range(self._next_id, self._next_id + fresh))
        self._next_id += fresh
        for pid in pids:
            self._pages[pid] = None
        self.stats.allocations += count
        return pids

    def free(self, pid: PageId) -> None:
        """Return a page to the free list."""
        if pid not in self._pages:
            raise PageError(f"free of unallocated page {pid}")
        del self._pages[pid]
        self._free.append(pid)
        self.stats.frees += 1

    # -- I/O ----------------------------------------------------------------

    def read(self, pid: PageId) -> Any:
        """Read a page from disk, charging one read I/O."""
        if pid not in self._pages:
            raise PageError(f"read of unallocated page {pid}")
        self.stats.reads += 1
        return self._pages[pid]

    def write(self, pid: PageId, payload: Any) -> None:
        """Write a page to disk, charging one write I/O."""
        if pid not in self._pages:
            raise PageError(f"write of unallocated page {pid}")
        self.stats.writes += 1
        self._pages[pid] = payload

    def commit(self) -> None:
        """Mark an operation boundary (a no-op on the simulated disk).

        The buffer pool calls this after every end-of-operation flush;
        durable stores group-commit their staged pages here, and the
        simulated disk — which has no staging — does nothing.
        """

    def peek(self, pid: PageId) -> Any:
        """Read a page without charging I/O.

        For tests, invariant checks and audits only — never for index
        operations, which must account their page traffic.
        """
        if pid not in self._pages:
            raise PageError(f"peek of unallocated page {pid}")
        return self._pages[pid]

    # -- introspection ------------------------------------------------------

    @property
    def allocated_pages(self) -> int:
        """Number of live pages (the index-size metric of Figure 15)."""
        return len(self._pages)

    def is_allocated(self, pid: PageId) -> bool:
        """Whether ``pid`` currently holds a live page."""
        return pid in self._pages

    def page_ids(self) -> Iterator[PageId]:
        """Iterate over the ids of all live pages."""
        return iter(self._pages.keys())

    @property
    def next_page_id(self) -> PageId:
        """The allocation high-water mark (used when persisting)."""
        return self._next_id

    def free_page_ids(self) -> List[PageId]:
        """The current free list, oldest free first (used when persisting)."""
        return list(self._free)
