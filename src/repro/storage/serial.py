"""Byte-level node serialization.

The capacities in :mod:`repro.storage.layout` assert that a node fits a
disk page under the paper's 4-byte-coordinate layout.  This module makes
that claim concrete: it encodes tree nodes into exactly ``page_size``
bytes and back.  The in-memory trees keep Python objects in the page
store for speed (the measured quantity is I/O *count*), but the codec is
exercised by tests over real trees to prove every node genuinely fits
its page, and by the durable store on every commit and recovery.

Layout notes:

* Node header (16 bytes): level (u16), entry count (u16), flags (u16),
  2 pad bytes, node reference time (f64).
* All positions are re-referenced to the node reference time before
  encoding (the paper keeps a single reference time per index for the
  same reason); velocities are unaffected.
* Coordinates, velocities and expiration times are IEEE-754 binary32 —
  the rounding this introduces is the fidelity cost of the paper's
  4-byte fields.  Expiration times round toward *+inf* so a decoded
  bound never under-covers: an entry can linger one binary32 ulp past
  its true expiration (harmless — lazy purging removes it), but it can
  never expire early and drop a genuinely-live object after recovery.
* Object ids are unsigned 32-bit.  The shard wire format
  (:mod:`repro.shard.wire`) carries oids as i64, so the page codec is
  the narrower of the two; the trees validate oids at insert time
  against :attr:`EntryLayout.max_oid` so out-of-range ids fail fast
  with a clear error instead of a ``struct.error`` deep inside a
  commit (see DESIGN.md §11).

Decoding widens every binary32 field back to binary64 exactly (both the
``struct`` and the numpy paths perform the IEEE-754 widening conversion,
which is lossless, including subnormals, signed zeros and infinities).
When numpy is importable, whole pages decode through a zero-copy
:func:`numpy.frombuffer` structured view — one bulk float32→float64
widening per page instead of a per-entry ``struct.unpack_from`` loop —
and the widened columns are reused to prepopulate the node's
struct-of-arrays query cache (``Node.soa``), so a freshly recovered
page is immediately servable by the batched kernels without re-packing.
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Tuple

from ..geometry.kinematics import MovingPoint
from ..geometry.tpbr import TPBR
from ..rstar.node import Node
from .layout import NODE_HEADER_BYTES, EntryLayout

try:  # pragma: no cover - exercised via monkeypatch in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Below this many entries the batched kernels fall back to the scalar
#: loop (mirrors ``repro.geometry.kernels._MIN_BATCH``), so decode only
#: prepopulates the SoA cache from this size on.
_SOA_MIN_ENTRIES = 4

_HEADER = struct.Struct("<HHHxxd")
assert _HEADER.size == NODE_HEADER_BYTES

_LEAF_FLAG = 0x1

#: Largest finite binary32 value.
_F32_MAX = float.fromhex("0x1.fffffep+127")

#: Bound-inversion tolerance for decoded internal entries.  Encoding
#: rounds the lower bound up and the upper bound down by at most half a
#: binary32 ulp each, so a legitimate inversion of a degenerate (or
#: near-degenerate) rectangle is within ~2^-23 relative; anything
#: beyond twice that is corruption, not rounding.  The absolute floor
#: covers subnormal bounds whose relative tolerance would underflow.
_INVERSION_REL_TOL = 2.0 ** -22
_INVERSION_ABS_TOL = 1e-37


class CodecError(ValueError):
    """Raised when a node cannot be encoded into one page, or when a
    page image is provably corrupt (inconsistent header, inverted
    bounds beyond binary32 rounding tolerance).

    Subclasses :class:`ValueError` so the WAL recovery skip predicate's
    conservative "undecodable → replay verbatim" contract covers codec
    corruption too; the replayed image then surfaces the error at the
    open-time decode instead of aborting recovery mid-replay.
    """


def _f32_round_up(value: float) -> float:
    """Round ``value`` to the nearest binary32 at or above it.

    Used for expiration times so the stored bound never under-covers
    the true one.  Values beyond the finite binary32 range round to
    the enclosing representable value (``+inf`` above, ``-FLT_MAX``
    below); infinities pass through.
    """
    if value > _F32_MAX:
        return math.inf if value != math.inf else value
    if value < -_F32_MAX:
        return -_F32_MAX if value != -math.inf else value
    (widened,) = struct.unpack("<f", struct.pack("<f", value))
    if widened >= value:
        return widened
    # Rounded down: step one binary32 ulp toward +inf via the bit
    # pattern (math.nextafter works in binary64 and would not land on
    # the next *binary32*).
    (bits,) = struct.unpack("<I", struct.pack("<f", widened))
    bits = bits - 1 if bits & 0x80000000 else bits + 1
    (result,) = struct.unpack("<f", struct.pack("<I", bits))
    return result


def _inversion_tolerance(lo: float, hi: float) -> float:
    """Largest ``lo - hi`` excursion attributable to binary32 rounding."""
    scale = max(abs(lo), abs(hi))
    return max(_INVERSION_REL_TOL * scale, _INVERSION_ABS_TOL)


class NodeCodec:
    """Encodes/decodes tree nodes under a byte-accurate entry layout.

    The codec counts silently repaired bound inversions (see
    :meth:`decode`) in :attr:`repairs`; callers with a metrics registry
    can mirror the count into a counter via :meth:`bind_repair_counter`.
    """

    def __init__(self, layout: EntryLayout):
        if layout.coord_bytes != 4:
            raise ValueError("NodeCodec implements the 4-byte field layout")
        self.layout = layout
        d = layout.dims
        leaf_fields = 2 * d + (1 if layout.store_leaf_expiration else 0)
        self._leaf_fields = leaf_fields
        self._leaf_struct = struct.Struct(f"<{leaf_fields}fI")
        internal_fields = 2 * d
        if layout.store_velocities:
            internal_fields += 2 * d
        if layout.store_br_expiration:
            internal_fields += 1
        self._internal_fields = internal_fields
        self._internal_struct = struct.Struct(f"<{internal_fields}fI")
        assert self._leaf_struct.size == layout.leaf_entry_bytes
        assert self._internal_struct.size == layout.internal_entry_bytes
        #: Bound inversions repaired (within tolerance) across decodes.
        self.repairs = 0
        self._repair_counter = None
        if np is not None:
            self._leaf_dtype = np.dtype(
                [("f", "<f4", (leaf_fields,)), ("id", "<u4")]
            )
            self._internal_dtype = np.dtype(
                [("f", "<f4", (internal_fields,)), ("id", "<u4")]
            )
        else:  # pragma: no cover - import-time fallback
            self._leaf_dtype = None
            self._internal_dtype = None

    def bind_repair_counter(self, counter) -> None:
        """Mirror future bound-inversion repairs into ``counter``.

        Parameters
        ----------
        counter : repro.obs.metrics.Counter
            Incremented once per repaired bound (a registry counter,
            typically ``codec.bound_repairs``).
        """
        self._repair_counter = counter

    def _record_repairs(self, count: int) -> None:
        """Count ``count`` tolerated bound inversions."""
        if count:
            self.repairs += count
            if self._repair_counter is not None:
                self._repair_counter.inc(count)

    # -- encoding ---------------------------------------------------------------

    def encode(self, node: Node, t_ref: float) -> bytes:
        """Serialize a node into exactly ``page_size`` bytes.

        Parameters
        ----------
        node : Node
            The node to encode.
        t_ref : float
            Reference time the entry positions are re-based to.

        Raises
        ------
        CodecError
            If the node exceeds its page's capacity.
        """
        capacity = self.layout.capacity(leaf=node.is_leaf)
        if len(node.entries) > capacity:
            raise CodecError(
                f"{len(node.entries)} entries exceed capacity {capacity}"
            )
        flags = _LEAF_FLAG if node.is_leaf else 0
        header = _HEADER.pack(node.level, len(node.entries), flags, t_ref)
        if np is not None and node.entries and self._leaf_dtype is not None:
            body = self._encode_np(node, t_ref)
            if body is not None:
                return (header + body).ljust(self.layout.page_size, b"\0")
        parts = [header]
        if node.is_leaf:
            for point, oid in node.entries:
                parts.append(self._encode_leaf_entry(point, oid, t_ref))
        else:
            for br, child in node.entries:
                parts.append(self._encode_internal_entry(br, child, t_ref))
        payload = b"".join(parts)
        return payload.ljust(self.layout.page_size, b"\0")

    def _encode_np(self, node: Node, t_ref: float) -> Optional[bytes]:
        """Vectorized entry encoding (``None`` → use the struct loop).

        Bit-identical to the per-entry path: float64→float32 narrowing
        is round-to-nearest in both, the expiration column gets the
        same round-toward-+inf adjustment, and entries whose coordinate
        narrowing would overflow fall back to the struct loop so they
        raise the same ``OverflowError``.
        """
        layout = self.layout
        d = layout.dims
        count = len(node.entries)
        if node.is_leaf:
            fields = self._leaf_fields
            values = np.empty((count, fields), dtype=np.float64)
            pos = np.array([p.pos for p, _ in node.entries], dtype=np.float64)
            vel = np.array([p.vel for p, _ in node.entries], dtype=np.float64)
            ref = np.array([p.t_ref for p, _ in node.entries], dtype=np.float64)
            dt = t_ref - ref
            values[:, :d] = pos + vel * dt[:, None]
            values[:, d:2 * d] = vel
            exp_col = 2 * d if layout.store_leaf_expiration else None
            if exp_col is not None:
                values[:, exp_col] = [p.t_exp for p, _ in node.entries]
            dtype = self._leaf_dtype
        else:
            fields = self._internal_fields
            values = np.empty((count, fields), dtype=np.float64)
            lo = np.array([b.lo for b, _ in node.entries], dtype=np.float64)
            hi = np.array([b.hi for b, _ in node.entries], dtype=np.float64)
            vlo = np.array([b.vlo for b, _ in node.entries], dtype=np.float64)
            vhi = np.array([b.vhi for b, _ in node.entries], dtype=np.float64)
            ref = np.array([b.t_ref for b, _ in node.entries], dtype=np.float64)
            dt = t_ref - ref
            values[:, :d] = lo + vlo * dt[:, None]
            values[:, d:2 * d] = hi + vhi * dt[:, None]
            cursor = 2 * d
            if layout.store_velocities:
                values[:, cursor:cursor + d] = vlo
                values[:, cursor + d:cursor + 2 * d] = vhi
                cursor += 2 * d
            exp_col = cursor if layout.store_br_expiration else None
            if exp_col is not None:
                values[:, exp_col] = [b.t_exp for b, _ in node.entries]
            dtype = self._internal_dtype
        with np.errstate(over="ignore"):
            narrow = values.astype(np.float32)
        if exp_col is not None:
            col = narrow[:, exp_col]
            under = col.astype(np.float64) < values[:, exp_col]
            if under.any():
                narrow[:, exp_col] = np.where(
                    under, np.nextafter(col, np.float32(np.inf)), col
                )
        coord = narrow if exp_col is None else np.delete(narrow, exp_col, axis=1)
        coord64 = (
            values if exp_col is None else np.delete(values, exp_col, axis=1)
        )
        if (~np.isfinite(coord) & np.isfinite(coord64)).any():
            return None  # struct loop raises the usual OverflowError
        idents = [ident for _, ident in node.entries]
        if min(idents) < 0 or max(idents) > self.layout.max_oid:
            return None  # struct loop raises the usual struct.error
        out = np.empty(count, dtype=dtype)
        out["f"] = narrow
        out["id"] = idents
        return out.tobytes()

    def _encode_leaf_entry(
        self, point: MovingPoint, oid: int, t_ref: float
    ) -> bytes:
        """Pack one leaf entry at ``t_ref`` (expiration rounded up)."""
        values: List[float] = list(point.position_at(t_ref))
        values.extend(point.vel)
        if self.layout.store_leaf_expiration:
            values.append(_f32_round_up(point.t_exp))
        return self._leaf_struct.pack(*values, oid)

    def _encode_internal_entry(
        self, br: TPBR, child: int, t_ref: float
    ) -> bytes:
        """Pack one internal entry at ``t_ref`` (expiration rounded up)."""
        d = self.layout.dims
        values: List[float] = [br.lower_at(i, t_ref) for i in range(d)]
        values += [br.upper_at(i, t_ref) for i in range(d)]
        if self.layout.store_velocities:
            values += list(br.vlo) + list(br.vhi)
        if self.layout.store_br_expiration:
            values.append(_f32_round_up(br.t_exp))
        return self._internal_struct.pack(*values, child)

    # -- decoding ----------------------------------------------------------------

    def decode(self, page: bytes) -> Tuple[Node, float]:
        """Deserialize a page back into a node and its reference time.

        All binary32 fields widen to binary64 exactly.  Internal-entry
        bound inversions within binary32 rounding tolerance are
        repaired (upper := lower) and counted in :attr:`repairs`;
        larger inversions raise :class:`CodecError` — a bit-flipped
        page must surface, not silently shrink the answer set.

        On the numpy path the decoded columns also prepopulate
        ``Node.soa`` (the packed form consumed by the batched query
        kernels) for nodes large enough to use them.

        Raises
        ------
        CodecError
            If the page has the wrong size, an inconsistent header, or
            a corrupt internal entry.
        """
        if len(page) != self.layout.page_size:
            raise CodecError(
                f"page is {len(page)} bytes, expected {self.layout.page_size}"
            )
        level, count, flags, t_ref = _HEADER.unpack_from(page, 0)
        is_leaf = bool(flags & _LEAF_FLAG)
        if is_leaf != (level == 0):
            raise CodecError("leaf flag inconsistent with level")
        if count > self.layout.capacity(leaf=is_leaf):
            raise CodecError(
                f"entry count {count} exceeds page capacity "
                f"{self.layout.capacity(leaf=is_leaf)}"
            )
        node = Node(level)
        if np is not None and count and self._leaf_dtype is not None:
            self._decode_np(page, node, count, is_leaf, t_ref)
            return node, t_ref
        offset = NODE_HEADER_BYTES
        d = self.layout.dims
        for _ in range(count):
            if is_leaf:
                fields = self._leaf_struct.unpack_from(page, offset)
                offset += self._leaf_struct.size
                pos = tuple(fields[:d])
                vel = tuple(fields[d:2 * d])
                if self.layout.store_leaf_expiration:
                    t_exp = fields[2 * d]
                else:
                    t_exp = math.inf
                node.entries.append(
                    (MovingPoint(pos, vel, t_ref, max(t_exp, t_ref)),
                     fields[-1])
                )
            else:
                fields = self._internal_struct.unpack_from(page, offset)
                offset += self._internal_struct.size
                lo = tuple(fields[:d])
                hi = self._checked_upper(lo, fields[d:2 * d])
                cursor = 2 * d
                if self.layout.store_velocities:
                    vlo = tuple(fields[cursor:cursor + d])
                    vhi = tuple(fields[cursor + d:cursor + 2 * d])
                    cursor += 2 * d
                else:
                    vlo = vhi = (0.0,) * d
                if self.layout.store_br_expiration:
                    t_exp = fields[cursor]
                else:
                    t_exp = math.inf
                node.entries.append(
                    (TPBR(lo, hi, vlo, vhi, t_ref, max(t_exp, t_ref)),
                     fields[-1])
                )
        return node, t_ref

    def _checked_upper(self, lo, hi_raw) -> tuple:
        """Validate (and minimally repair) decoded upper bounds."""
        hi = []
        repaired = 0
        for low, high in zip(lo, hi_raw):
            if high < low:
                if high < low - _inversion_tolerance(low, high):
                    raise CodecError(
                        f"corrupt internal entry: upper bound {high!r} "
                        f"inverted below lower bound {low!r} beyond "
                        "binary32 rounding tolerance"
                    )
                repaired += 1
                high = low
            hi.append(high)
        self._record_repairs(repaired)
        return tuple(hi)

    def _decode_np(
        self, page: bytes, node: Node, count: int, is_leaf: bool, t_ref: float
    ) -> None:
        """Zero-copy page decode via a structured :func:`numpy.frombuffer`.

        One structured view over the page body replaces the per-entry
        ``struct.unpack_from`` loop; the single ``astype(float64)``
        performs the exact IEEE-754 widening for every field at once.
        Produces bit-identical entries to the struct path and leaves
        the widened columns in ``node.soa`` when the node is large
        enough for the batched kernels.
        """
        d = self.layout.dims
        dtype = self._leaf_dtype if is_leaf else self._internal_dtype
        raw = np.frombuffer(page, dtype=dtype, count=count,
                            offset=NODE_HEADER_BYTES)
        fields = raw["f"].astype(np.float64)
        idents = raw["id"].tolist()
        if is_leaf:
            if self.layout.store_leaf_expiration:
                # Same selection as the scalar max(t_exp, t_ref), so the
                # two paths agree bitwise even on signed zeros.
                col = fields[:, 2 * d]
                t_exp = np.where(col < t_ref, t_ref, col)
            else:
                t_exp = np.full(count, math.inf)
            pos = fields[:, :d]
            vel = fields[:, d:2 * d]
            pos_rows = pos.tolist()
            vel_rows = vel.tolist()
            exp_list = t_exp.tolist()
            node.entries = [
                (MovingPoint(tuple(pos_rows[i]), tuple(vel_rows[i]),
                             t_ref, exp_list[i]), idents[i])
                for i in range(count)
            ]
            if count >= _SOA_MIN_ENTRIES:
                base = pos - vel * t_ref
                node.soa = (base, vel, base, vel, t_exp)
        else:
            lo = fields[:, :d]
            hi = fields[:, d:2 * d]
            inverted = hi < lo
            if inverted.any():
                tol = np.maximum(
                    _INVERSION_REL_TOL * np.maximum(np.abs(lo), np.abs(hi)),
                    _INVERSION_ABS_TOL,
                )
                if (inverted & (hi < lo - tol)).any():
                    raise CodecError(
                        "corrupt internal entry: upper bound inverted "
                        "below lower bound beyond binary32 rounding "
                        "tolerance"
                    )
                self._record_repairs(int(inverted.sum()))
                hi = np.where(inverted, lo, hi)
            cursor = 2 * d
            if self.layout.store_velocities:
                vlo = fields[:, cursor:cursor + d]
                vhi = fields[:, cursor + d:cursor + 2 * d]
                cursor += 2 * d
            else:
                vlo = np.zeros((count, d))
                vhi = np.zeros((count, d))
            if self.layout.store_br_expiration:
                col = fields[:, cursor]
                t_exp = np.where(col < t_ref, t_ref, col)
            else:
                t_exp = np.full(count, math.inf)
            lo_rows = lo.tolist()
            hi_rows = hi.tolist()
            vlo_rows = vlo.tolist()
            vhi_rows = vhi.tolist()
            exp_list = t_exp.tolist()
            node.entries = [
                (TPBR(tuple(lo_rows[i]), tuple(hi_rows[i]),
                      tuple(vlo_rows[i]), tuple(vhi_rows[i]),
                      t_ref, exp_list[i]), idents[i])
                for i in range(count)
            ]
            if count >= _SOA_MIN_ENTRIES:
                s_lo = lo - vlo * t_ref
                s_hi = hi - vhi * t_ref
                node.soa = (s_lo, vlo, s_hi, vhi, t_exp)
