"""Byte-level node serialization.

The capacities in :mod:`repro.storage.layout` assert that a node fits a
disk page under the paper's 4-byte-coordinate layout.  This module makes
that claim concrete: it encodes tree nodes into exactly ``page_size``
bytes and back.  The in-memory trees keep Python objects in the page
store for speed (the measured quantity is I/O *count*), but the codec is
exercised by tests over real trees to prove every node genuinely fits
its page.

Layout notes:

* Node header (16 bytes): level (u16), entry count (u16), flags (u16),
  2 pad bytes, node reference time (f64).
* All positions are re-referenced to the node reference time before
  encoding (the paper keeps a single reference time per index for the
  same reason); velocities are unaffected.
* Coordinates, velocities and expiration times are IEEE-754 binary32 —
  the rounding this introduces is the fidelity cost of the paper's
  4-byte fields.
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

from ..geometry.kinematics import MovingPoint
from ..geometry.tpbr import TPBR
from ..rstar.node import Node
from .layout import NODE_HEADER_BYTES, EntryLayout

_HEADER = struct.Struct("<HHHxxd")
assert _HEADER.size == NODE_HEADER_BYTES

_LEAF_FLAG = 0x1


class CodecError(Exception):
    """Raised when a node cannot be encoded into one page."""


class NodeCodec:
    """Encodes/decodes tree nodes under a byte-accurate entry layout."""

    def __init__(self, layout: EntryLayout):
        if layout.coord_bytes != 4:
            raise ValueError("NodeCodec implements the 4-byte field layout")
        self.layout = layout
        d = layout.dims
        leaf_fields = 2 * d + (1 if layout.store_leaf_expiration else 0)
        self._leaf_struct = struct.Struct(f"<{leaf_fields}fI")
        internal_fields = 2 * d
        if layout.store_velocities:
            internal_fields += 2 * d
        if layout.store_br_expiration:
            internal_fields += 1
        self._internal_struct = struct.Struct(f"<{internal_fields}fI")
        assert self._leaf_struct.size == layout.leaf_entry_bytes
        assert self._internal_struct.size == layout.internal_entry_bytes

    # -- encoding ---------------------------------------------------------------

    def encode(self, node: Node, t_ref: float) -> bytes:
        """Serialize a node into exactly ``page_size`` bytes.

        Parameters
        ----------
        node : Node
            The node to encode.
        t_ref : float
            Reference time the entry positions are re-based to.

        Raises
        ------
        CodecError
            If the node exceeds its page's capacity.
        """
        capacity = self.layout.capacity(leaf=node.is_leaf)
        if len(node.entries) > capacity:
            raise CodecError(
                f"{len(node.entries)} entries exceed capacity {capacity}"
            )
        flags = _LEAF_FLAG if node.is_leaf else 0
        parts = [_HEADER.pack(node.level, len(node.entries), flags, t_ref)]
        if node.is_leaf:
            for point, oid in node.entries:
                parts.append(self._encode_leaf_entry(point, oid, t_ref))
        else:
            for br, child in node.entries:
                parts.append(self._encode_internal_entry(br, child, t_ref))
        payload = b"".join(parts)
        return payload.ljust(self.layout.page_size, b"\0")

    def _encode_leaf_entry(
        self, point: MovingPoint, oid: int, t_ref: float
    ) -> bytes:
        values: List[float] = list(point.position_at(t_ref))
        values.extend(point.vel)
        if self.layout.store_leaf_expiration:
            values.append(point.t_exp)
        return self._leaf_struct.pack(*values, oid)

    def _encode_internal_entry(
        self, br: TPBR, child: int, t_ref: float
    ) -> bytes:
        d = self.layout.dims
        values: List[float] = [br.lower_at(i, t_ref) for i in range(d)]
        values += [br.upper_at(i, t_ref) for i in range(d)]
        if self.layout.store_velocities:
            values += list(br.vlo) + list(br.vhi)
        if self.layout.store_br_expiration:
            values.append(br.t_exp)
        return self._internal_struct.pack(*values, child)

    # -- decoding ----------------------------------------------------------------

    def decode(self, page: bytes) -> Tuple[Node, float]:
        """Deserialize a page back into a node and its reference time."""
        if len(page) != self.layout.page_size:
            raise CodecError(
                f"page is {len(page)} bytes, expected {self.layout.page_size}"
            )
        level, count, flags, t_ref = _HEADER.unpack_from(page, 0)
        is_leaf = bool(flags & _LEAF_FLAG)
        if is_leaf != (level == 0):
            raise CodecError("leaf flag inconsistent with level")
        node = Node(level)
        offset = NODE_HEADER_BYTES
        d = self.layout.dims
        for _ in range(count):
            if is_leaf:
                fields = self._leaf_struct.unpack_from(page, offset)
                offset += self._leaf_struct.size
                pos = tuple(fields[:d])
                vel = tuple(fields[d:2 * d])
                if self.layout.store_leaf_expiration:
                    t_exp = _widen(fields[2 * d])
                else:
                    t_exp = math.inf
                node.entries.append(
                    (MovingPoint(pos, vel, t_ref, max(t_exp, t_ref)),
                     fields[-1])
                )
            else:
                fields = self._internal_struct.unpack_from(page, offset)
                offset += self._internal_struct.size
                lo = tuple(fields[:d])
                hi = tuple(max(l, h) for l, h in zip(lo, fields[d:2 * d]))
                cursor = 2 * d
                if self.layout.store_velocities:
                    vlo = tuple(fields[cursor:cursor + d])
                    vhi = tuple(fields[cursor + d:cursor + 2 * d])
                    cursor += 2 * d
                else:
                    vlo = vhi = (0.0,) * d
                if self.layout.store_br_expiration:
                    t_exp = _widen(fields[cursor])
                else:
                    t_exp = math.inf
                node.entries.append(
                    (TPBR(lo, hi, vlo, vhi, t_ref, max(t_exp, t_ref)),
                     fields[-1])
                )
        return node, t_ref


def _widen(value: float) -> float:
    """binary32 round-trip keeps inf as inf; pass values through."""
    return value
