"""Durable page store: a real page file behind the ``DiskManager`` protocol.

Two layers live here.  :class:`PageFile` is the raw on-disk format —
fixed-size slots with per-slot CRCs and a checksummed header.
:class:`FilePageStore` implements the same ``allocate`` / ``free`` /
``read`` / ``write`` / ``peek`` protocol (and the exact same
:class:`~repro.storage.stats.IOStats` accounting) as the simulated
:class:`~repro.storage.disk.DiskManager`, so a tree runs unchanged on
either and every figure's I/O counts still hold.  Durability is added
underneath: node payloads are encoded with the byte-exact
:class:`~repro.storage.serial.NodeCodec`, dirty pages are staged per
operation, and :meth:`FilePageStore.commit` group-commits them through a
:class:`~repro.storage.wal.WriteAheadLog` before applying the images to
the file (the WAL-before-page invariant).

File layout (all integers little-endian)::

    offset                  content
    0                       header (one slot-sized region)
    (1+pid) * slot_size     slot for page ``pid``

    slot_size = page_size + 8

Header (64 bytes used, rest of the slot zero)::

    <8s I  I  H  H  Q  q  Q  q  d  I>
    magic   b"REXPPG01"
    version 1
    page_size
    dims            entry layout dimensions
    flags           bit0 velocities, bit1 BR expiration, bit2 leaf exp.
    next_id         page id watermark (allocation high-water mark)
    free_head       first free page id of the free chain (-1 = none)
    free_count      length of the free chain
    root_pid        the tree's root page id (-1 until set)
    clock_time      simulation clock at the last header write
    crc             CRC32 over the preceding 60 bytes

Page slot (``slot_size`` bytes)::

    page_size   payload (a NodeCodec page image; zero-padded)
    u32         state: 0 = never used, 1 = allocated, 2 = free
    u32         crc: CRC32 over payload followed by the packed state

A free slot's first 8 bytes hold the next free page id of the free
chain (``<q``, -1 terminates); the chain is rewritten on checkpoint and
recovery, and readers fall back to scanning slot states, so a stale
chain can never corrupt allocation.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .disk import INVALID_PAGE, PageError, PageId
from .faults import TransientIOError
from .layout import EntryLayout
from .serial import NodeCodec
from .stats import IOStats
from .wal import RecoveryReport, WriteAheadLog, recover

MAGIC = b"REXPPG01"
VERSION = 1

#: Default file names inside a durable-store directory.
PAGES_FILENAME = "pages.rexp"
WAL_FILENAME = "wal.rexp"

#: Slot states.
SLOT_UNUSED = 0
SLOT_ALLOCATED = 1
SLOT_FREE = 2

_HEADER = struct.Struct("<8sIIHHQqQqd")
_CRC = struct.Struct("<I")
_FOOTER = struct.Struct("<II")
_STATE = struct.Struct("<I")
_NEXT_FREE = struct.Struct("<q")

_VELOCITIES_FLAG = 0x1
_BR_EXPIRATION_FLAG = 0x2
_LEAF_EXPIRATION_FLAG = 0x4


class PageFileError(Exception):
    """Raised on malformed page files (bad magic, header CRC, slots)."""


def layout_flags(layout: EntryLayout) -> int:
    """Pack an entry layout's boolean knobs into the header flag word."""
    flags = 0
    if layout.store_velocities:
        flags |= _VELOCITIES_FLAG
    if layout.store_br_expiration:
        flags |= _BR_EXPIRATION_FLAG
    if layout.store_leaf_expiration:
        flags |= _LEAF_EXPIRATION_FLAG
    return flags


@dataclass
class PageFileHeader:
    """Decoded header of a page file (see module docstring for layout)."""

    page_size: int
    dims: int
    flags: int
    next_id: int = 0
    free_head: int = -1
    free_count: int = 0
    root_pid: int = INVALID_PAGE
    clock_time: float = 0.0

    @property
    def store_velocities(self) -> bool:
        """Whether the stored entries carry velocity vectors."""
        return bool(self.flags & _VELOCITIES_FLAG)

    @property
    def store_br_expiration(self) -> bool:
        """Whether internal entries carry expiration times."""
        return bool(self.flags & _BR_EXPIRATION_FLAG)

    @property
    def store_leaf_expiration(self) -> bool:
        """Whether leaf entries carry expiration times."""
        return bool(self.flags & _LEAF_EXPIRATION_FLAG)


def read_header(directory: str) -> PageFileHeader:
    """Read and validate the page-file header of a durable store.

    A cheap probe — it opens the page file read-only, so callers can
    reconstruct a matching tree configuration (page size, dimensions,
    layout flags) before committing to a full recovery-running open.
    """
    pf = PageFile.open(os.path.join(directory, PAGES_FILENAME))
    try:
        return pf.read_header()
    finally:
        pf.abandon()


@dataclass(frozen=True)
class PersistReport:
    """What a ``persist_to`` call wrote.

    Attributes
    ----------
    directory : str
        The durable-store directory.
    pages : int
        Live pages written to the page file.
    file_bytes : int
        Size of the page file after the checkpoint.
    """

    directory: str
    pages: int
    file_bytes: int


@dataclass(frozen=True)
class Slot:
    """One decoded page slot.

    Attributes
    ----------
    state : int
        :data:`SLOT_UNUSED`, :data:`SLOT_ALLOCATED` or
        :data:`SLOT_FREE`.
    payload : bytes
        The ``page_size`` payload bytes (zeros for unused slots).
    crc_ok : bool
        Whether the stored CRC matches payload and state (always true
        for unused slots).
    """

    state: int
    payload: bytes
    crc_ok: bool

    @property
    def next_free(self) -> int:
        """Next free page id encoded in a free slot's payload."""
        return _NEXT_FREE.unpack_from(self.payload, 0)[0]


class PageFile:
    """Raw slotted file: header plus CRC-protected fixed-size slots.

    This layer knows nothing about trees or staging — it reads and
    writes whole slots, maintains the header, and routes every physical
    write through an optional fault injector.  All slot writes are
    single ``write`` calls so a torn write maps to one torn slot.

    Parameters
    ----------
    path : str
        File path (use :meth:`create` / :meth:`open`, not the
        constructor, to get a valid instance).
    header : PageFileHeader
        The decoded (or freshly built) header.
    injector : FaultInjector, optional
        Fault hook applied to every physical write.
    """

    def __init__(self, path: str, header: PageFileHeader, injector=None):
        self.path = path
        self._header = header
        self._injector = injector
        self._file = open(path, "r+b")
        self.page_size = header.page_size
        self.slot_size = header.page_size + _FOOTER.size

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, page_size: int, dims: int, flags: int, injector=None
    ) -> "PageFile":
        """Create a fresh page file with an empty header and no slots."""
        if page_size < _HEADER.size + _CRC.size:
            raise PageFileError(
                f"page_size {page_size} cannot hold the header"
            )
        with open(path, "wb"):
            pass
        pf = cls(path, PageFileHeader(page_size, dims, flags), injector)
        pf.write_header(pf._header)
        return pf

    @classmethod
    def open(cls, path: str, injector=None) -> "PageFile":
        """Open an existing page file, validating magic and header CRC."""
        if not os.path.exists(path):
            raise PageFileError(f"no page file at {path}")
        with open(path, "rb") as handle:
            raw = handle.read(_HEADER.size + _CRC.size)
        if len(raw) < _HEADER.size + _CRC.size:
            raise PageFileError("page file too short for a header")
        (magic, version, page_size, dims, flags, next_id, free_head,
         free_count, root_pid, clock_time) = _HEADER.unpack_from(raw, 0)
        (crc,) = _CRC.unpack_from(raw, _HEADER.size)
        if magic != MAGIC:
            raise PageFileError(f"bad magic {magic!r}")
        if version != VERSION:
            raise PageFileError(f"unsupported version {version}")
        if crc != zlib.crc32(raw[:_HEADER.size]):
            raise PageFileError("header CRC mismatch")
        header = PageFileHeader(
            page_size, dims, flags, next_id, free_head, free_count,
            root_pid, clock_time,
        )
        return cls(path, header, injector)

    def sync(self) -> None:
        """Flush file buffers and fsync to media."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush and close the file handle."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def abandon(self) -> None:
        """Close without flushing (simulated process death)."""
        if not self._file.closed:
            self._file.close()

    # -- physical writes ----------------------------------------------------

    def _write_at(self, offset: int, data: bytes) -> None:
        if self._injector is not None:
            data = self._injector.before_write(data)
        self._file.seek(offset)
        self._file.write(data)
        if self._injector is not None:
            self._injector.after_write()

    # -- header -------------------------------------------------------------

    def read_header(self) -> PageFileHeader:
        """Return a copy of the current in-memory header."""
        h = self._header
        return PageFileHeader(
            h.page_size, h.dims, h.flags, h.next_id, h.free_head,
            h.free_count, h.root_pid, h.clock_time,
        )

    def write_header(self, header: PageFileHeader) -> None:
        """Write ``header`` to offset 0 as one physical write."""
        body = _HEADER.pack(
            MAGIC, VERSION, header.page_size, header.dims, header.flags,
            header.next_id, header.free_head, header.free_count,
            header.root_pid, header.clock_time,
        )
        self._write_at(0, body + _CRC.pack(zlib.crc32(body)))
        self._header = PageFileHeader(
            header.page_size, header.dims, header.flags, header.next_id,
            header.free_head, header.free_count, header.root_pid,
            header.clock_time,
        )

    # -- slots --------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of page slots the file currently extends over."""
        size = os.fstat(self._file.fileno()).st_size
        return max(0, size - self.slot_size) // self.slot_size

    def _slot_offset(self, pid: PageId) -> int:
        return (1 + pid) * self.slot_size

    def read_slot(self, pid: PageId) -> Slot:
        """Read and CRC-check one slot (unused/hole slots decode as such)."""
        self._file.seek(self._slot_offset(pid))
        raw = self._file.read(self.slot_size)
        if len(raw) < self.slot_size:
            raw = raw.ljust(self.slot_size, b"\0")
        payload = raw[:self.page_size]
        state, crc = _FOOTER.unpack_from(raw, self.page_size)
        if state == SLOT_UNUSED:
            return Slot(SLOT_UNUSED, payload, True)
        ok = crc == zlib.crc32(payload + _STATE.pack(state))
        return Slot(state, payload, ok)

    def _write_slot(self, pid: PageId, payload: bytes, state: int) -> None:
        if len(payload) > self.page_size:
            raise PageFileError(
                f"payload of {len(payload)} bytes exceeds page size"
            )
        payload = payload.ljust(self.page_size, b"\0")
        crc = zlib.crc32(payload + _STATE.pack(state))
        self._write_at(
            self._slot_offset(pid), payload + _FOOTER.pack(state, crc)
        )

    def write_page(self, pid: PageId, payload: bytes) -> None:
        """Write one page image into its slot (state = allocated)."""
        self._write_slot(pid, payload, SLOT_ALLOCATED)

    def mark_free(self, pid: PageId, next_free: PageId) -> None:
        """Mark a slot free, chaining it to ``next_free`` (-1 ends)."""
        self._write_slot(pid, _NEXT_FREE.pack(next_free), SLOT_FREE)

    def rebuild_free_chain(self, header: PageFileHeader) -> None:
        """Re-thread the free chain over all free slots, ascending.

        Updates ``header.free_head`` / ``header.free_count`` in place
        (the caller writes the header).  Used by recovery, where the
        set of free slots is known only from slot states.
        """
        prev = -1
        count = 0
        for pid in range(self.slot_count):
            if self.read_slot(pid).state == SLOT_FREE:
                self.mark_free(pid, prev)
                prev = pid
                count += 1
        header.free_head = prev
        header.free_count = count


def _all_expired_predicate(
    codec: NodeCodec,
) -> Callable[[bytes, float], bool]:
    """Build the TR-82 skip predicate over raw page images.

    The returned callable decodes a page and reports whether it is a
    non-empty leaf whose every entry expires strictly before the given
    recovery time.  Decode failures report ``False`` (never skip what
    cannot be proven dead).
    """
    def check(page_bytes: bytes, now: float) -> bool:
        node, _t_ref = codec.decode(page_bytes)
        if not node.is_leaf or not node.entries:
            return False
        return all(point.t_exp < now for point, _oid in node.entries)

    return check


class FilePageStore:
    """A durable drop-in for :class:`~repro.storage.disk.DiskManager`.

    The store keeps the *decoded* payload of every allocated page in
    memory — exactly what the simulated disk does — so reads return the
    same full-precision objects and charge the same ``IOStats`` as the
    simulation (one read per :meth:`read`, one write per :meth:`write`,
    none for :meth:`peek` or allocation).  What the simulation lacks is
    added underneath: writes and frees are *staged*, and
    :meth:`commit` (invoked by the buffer pool at every operation
    boundary) encodes the final image of each staged page, appends the
    batch plus a commit record to the write-ahead log, flushes it, and
    only then applies the images to the page file.  Log traffic is
    charged to the WAL's own ``IOStats``, never to the store's.

    Use :meth:`create` / :meth:`open_dir` to construct stores; the
    constructor wires pre-built parts together.

    Parameters
    ----------
    file : PageFile
        The raw slotted file.
    layout : EntryLayout
        Byte layout used to encode node payloads.
    now : callable
        Zero-argument callable returning the simulation clock time
        (stamps commit records and encode reference times).
    wal : WriteAheadLog, optional
        The log; ``None`` makes commits apply directly (snapshot mode,
        not crash-safe mid-operation).
    stats : IOStats, optional
        Page I/O counter sink (a private one is created when omitted).
    """

    def __init__(
        self,
        file: PageFile,
        layout: EntryLayout,
        now: Callable[[], float],
        wal: Optional[WriteAheadLog] = None,
        stats: Optional[IOStats] = None,
    ):
        self._file = file
        self.layout = layout
        self.codec = NodeCodec(layout)
        self.page_size = layout.page_size
        self.stats = stats if stats is not None else IOStats()
        self.wal = wal
        self._now = now
        self._pages: Dict[PageId, Any] = {}
        self._free: List[PageId] = []
        self._next_id: PageId = 0
        self._staged: Dict[PageId, str] = {}
        self._pending_commit: Optional[
            Tuple[int, Dict[PageId, Optional[bytes]]]
        ] = None
        self._op_seq = 0
        self._root_pid: PageId = INVALID_PAGE
        self._closed = False
        self.opened_clock_time = 0.0
        self.recovery: Optional[RecoveryReport] = None
        self._shipper = None

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str,
        layout: EntryLayout,
        now: Callable[[], float],
        stats: Optional[IOStats] = None,
        wal_stats: Optional[IOStats] = None,
        injector=None,
        fsync: bool = False,
    ) -> "FilePageStore":
        """Create a fresh durable store in ``directory``.

        Writes an empty page file and an empty write-ahead log; the
        directory is created if missing and must not already hold a
        page file.
        """
        os.makedirs(directory, exist_ok=True)
        pages_path = os.path.join(directory, PAGES_FILENAME)
        if os.path.exists(pages_path):
            raise PageFileError(f"refusing to overwrite {pages_path}")
        file = PageFile.create(
            pages_path, layout.page_size, layout.dims, layout_flags(layout),
            injector,
        )
        wal = WriteAheadLog(
            os.path.join(directory, WAL_FILENAME),
            stats=wal_stats, injector=injector, fsync=fsync,
        )
        return cls(file, layout, now, wal=wal, stats=stats)

    @classmethod
    def open_dir(
        cls,
        directory: str,
        layout: EntryLayout,
        now: Callable[[], float],
        stats: Optional[IOStats] = None,
        wal_stats: Optional[IOStats] = None,
        fsync: bool = False,
        registry=None,
        tracer=None,
    ) -> "FilePageStore":
        """Open (and crash-recover) an existing durable store.

        Runs :func:`repro.storage.wal.recover` first — replaying
        committed log records, applying the TR-82 expiration skip and
        resetting the log — then loads every allocated slot back into
        the in-memory mirror and rebuilds the free list (ascending page
        id order).  The resulting store resumes exactly at the last
        committed operation; its :attr:`recovery` holds the report.

        Raises
        ------
        PageFileError
            If the file's layout disagrees with ``layout``, if an
            allocated slot is corrupt after recovery, or if no committed
            root page exists (nothing durable ever happened).
        """
        pages_path = os.path.join(directory, PAGES_FILENAME)
        wal_path = os.path.join(directory, WAL_FILENAME)
        file = PageFile.open(pages_path)
        header = file.read_header()
        if (
            header.page_size != layout.page_size
            or header.dims != layout.dims
            or header.flags != layout_flags(layout)
        ):
            raise PageFileError(
                "page file layout does not match the supplied layout "
                f"(page_size {header.page_size} vs {layout.page_size}, "
                f"dims {header.dims} vs {layout.dims}, "
                f"flags {header.flags:#x} vs {layout_flags(layout):#x})"
            )
        codec = NodeCodec(layout)
        if registry is not None:
            codec.bind_repair_counter(registry.counter("codec.bound_repairs"))
        report = recover(
            file, wal_path,
            all_expired=_all_expired_predicate(codec),
            registry=registry, tracer=tracer,
        )
        store = cls(
            file, layout, now,
            wal=WriteAheadLog(wal_path, stats=wal_stats, fsync=fsync),
            stats=stats,
        )
        # Share the recovery codec so tolerated bound-inversion repairs
        # during the slot sweep below (and later reads) keep counting
        # into the bound registry counter.
        store.codec = codec
        header = file.read_header()
        for pid in range(file.slot_count):
            slot = file.read_slot(pid)
            if slot.state == SLOT_ALLOCATED:
                if not slot.crc_ok:
                    raise PageFileError(
                        f"allocated page {pid} is corrupt after recovery"
                    )
                node, _t_ref = codec.decode(slot.payload)
                store._pages[pid] = node
            elif slot.state in (SLOT_FREE, SLOT_UNUSED):
                store._free.append(pid)
        store._next_id = max(header.next_id, file.slot_count)
        store._op_seq = report.op_seq
        store._root_pid = header.root_pid
        store.opened_clock_time = report.clock_time
        store.recovery = report
        if store._root_pid == INVALID_PAGE or \
                store._root_pid not in store._pages:
            raise PageFileError(
                "no committed root page — nothing durable to open"
            )
        return store

    def arm_injector(self, injector) -> None:
        """Route all subsequent physical writes through ``injector``.

        Installs the fault injector on both the page file and the
        write-ahead log, so a crash point counted in physical writes
        covers every byte the store persists.

        Parameters
        ----------
        injector : FaultInjector
            The deterministic fault injector to arm (or ``None`` to
            disarm).
        """
        self._file._injector = injector
        if self.wal is not None:
            self.wal._injector = injector

    # -- DiskManager protocol (identical IOStats charges) -------------------

    def allocate(self) -> PageId:
        """Allocate a fresh page and return its id (no I/O charged)."""
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        self._pages[pid] = None
        self.stats.allocations += 1
        return pid

    def allocate_many(self, count: int) -> List[PageId]:
        """Allocate ``count`` pages at once (the bulk-loading path)."""
        pids: List[PageId] = []
        while self._free and len(pids) < count:
            pids.append(self._free.pop())
        fresh = count - len(pids)
        pids.extend(range(self._next_id, self._next_id + fresh))
        self._next_id += fresh
        for pid in pids:
            self._pages[pid] = None
        self.stats.allocations += count
        return pids

    def free(self, pid: PageId) -> None:
        """Return a page to the free list and stage the slot release."""
        if pid not in self._pages:
            raise PageError(f"free of unallocated page {pid}")
        del self._pages[pid]
        self._free.append(pid)
        self.stats.frees += 1
        self._staged[pid] = "free"

    def read(self, pid: PageId) -> Any:
        """Read a page, charging one read I/O.

        When a fault injector is armed its ``before_read`` hook runs
        first — the raise site for injected transient read faults — so
        a faulted read charges no I/O (the page never arrived).
        """
        if pid not in self._pages:
            raise PageError(f"read of unallocated page {pid}")
        injector = self._file._injector
        if injector is not None:
            injector.before_read()
        self.stats.reads += 1
        return self._pages[pid]

    def write(self, pid: PageId, payload: Any) -> None:
        """Write a page, charging one write I/O and staging the image."""
        if pid not in self._pages:
            raise PageError(f"write of unallocated page {pid}")
        self.stats.writes += 1
        self._pages[pid] = payload
        self._staged[pid] = "page"

    def peek(self, pid: PageId) -> Any:
        """Read a page without charging I/O (audits and tests only)."""
        if pid not in self._pages:
            raise PageError(f"peek of unallocated page {pid}")
        return self._pages[pid]

    # -- introspection ------------------------------------------------------

    @property
    def directory(self) -> str:
        """Directory holding the store's page file and write-ahead log."""
        return os.path.dirname(self._file.path)

    @property
    def allocated_pages(self) -> int:
        """Number of live pages (the index-size metric of Figure 15)."""
        return len(self._pages)

    def is_allocated(self, pid: PageId) -> bool:
        """Whether ``pid`` currently holds a live page."""
        return pid in self._pages

    def page_ids(self) -> Iterator[PageId]:
        """Iterate over the ids of all live pages."""
        return iter(self._pages.keys())

    @property
    def next_page_id(self) -> PageId:
        """The allocation high-water mark (used when persisting)."""
        return self._next_id

    def free_page_ids(self) -> List[PageId]:
        """The current free list, oldest free first (used when persisting)."""
        return list(self._free)

    @property
    def op_seq(self) -> int:
        """Sequence number of the last committed operation."""
        return self._op_seq

    @property
    def root_pid(self) -> Optional[PageId]:
        """The registered root page id, or ``None`` if never set."""
        return None if self._root_pid == INVALID_PAGE else self._root_pid

    # -- durability ---------------------------------------------------------

    def set_root(self, pid: PageId) -> None:
        """Register the tree's root page id and persist it in the header.

        The root id is assigned once at tree creation and never changes
        afterwards (the tree grows and shrinks *through* its root page),
        so it is written straight into the header — before the first
        commit, which makes a crash between the two recoverable as
        "nothing durable yet".
        """
        self._root_pid = pid
        header = self._file.read_header()
        header.root_pid = pid
        self._file.write_header(header)

    def commit(self) -> None:
        """Group-commit all staged changes at an operation boundary.

        Encodes the final image of every staged page at the current
        clock time, appends one PAGE/FREE record per page plus a COMMIT
        record to the log, flushes the log, and only then applies the
        images to the page file.  A commit with nothing staged is a
        no-op (queries that dirty no pages advance no state).

        A commit interrupted by a :class:`TransientIOError` stays
        *pending*: its encoded images and operation sequence number are
        retained, and the next call re-drives the whole batch (merged
        with anything staged since).  Re-appending a partially logged
        batch is idempotent under recovery — records without a COMMIT
        never happened, and a duplicated committed batch replays to the
        same images and sequence number.
        """
        pending = self._pending_commit
        if not self._staged and pending is None:
            return
        t = self._now()
        if pending is not None:
            op_seq, image_map = pending
        else:
            op_seq = self._op_seq + 1
            image_map = {}
        for pid, action in sorted(self._staged.items()):
            if action == "page":
                image_map[pid] = self.codec.encode(self._pages[pid], t)
            else:
                image_map[pid] = None
        self._staged.clear()
        self._pending_commit = (op_seq, image_map)
        images = sorted(image_map.items())
        if self.wal is not None:
            for pid, data in images:
                if data is None:
                    self.wal.append_free(pid)
                else:
                    self.wal.append_page(pid, data)
            self.wal.append_commit(op_seq, t)
            self.wal.flush()
        for pid, data in images:
            if data is None:
                self._file.mark_free(pid, -1)
            else:
                self._file.write_page(pid, data)
        self._pending_commit = None
        self._op_seq = op_seq

    def attach_shipper(self, shipper) -> None:
        """Register a WAL shipper to be consulted before log truncation.

        Once attached, every checkpoint's log reset first passes through
        ``shipper.before_truncate(wal, op_seq)``, which may spill not yet
        shipped committed batches to an archive segment or refuse the
        truncation outright (``ShippingLagError``) — truncating the live
        log would otherwise silently destroy batches a tailing replica
        still needs.  Pass ``None`` to detach.
        """
        self._shipper = shipper

    @property
    def quiescent(self) -> bool:
        """Whether no changes are staged and no commit is pending.

        Only at a quiescent point does the page file hold every
        committed image (commits apply images immediately after
        logging), so only then may the log be truncated out from under
        it — the gate for each incremental-checkpoint finalization.
        """
        return not self._staged and self._pending_commit is None

    def _truncate_wal(self, clock_time: float) -> None:
        """Reset the log, giving an attached shipper its say first."""
        if self.wal is None:
            return
        if self._shipper is not None:
            self._shipper.before_truncate(self.wal, self._op_seq)
        self.wal.reset(self._op_seq, clock_time)

    def link_free_slots(self, pids: List[PageId], prev: PageId) -> PageId:
        """Persist free-chain links for ``pids``, continuing from ``prev``.

        One physical write per slot.  Returns the new chain head (the
        last pid written, or ``prev`` unchanged when ``pids`` is empty).
        Used by the online maintainer to spread the free-chain rewrite
        of a checkpoint across many small steps; a stale or partially
        written chain is benign — readers scan slot states and recovery
        rebuilds the chain from scratch.
        """
        for pid in pids:
            self._file.mark_free(pid, prev)
            prev = pid
        return prev

    def finish_checkpoint(self, free_head: PageId, free_count: int) -> None:
        """Finalize a checkpoint whose free chain was written elsewhere.

        Writes the header (allocation watermark, root, clock, the given
        free-chain head/length), fsyncs the page file, and truncates the
        log through the shipping gate.  The caller must hold the store
        at a quiescent point (:attr:`quiescent`); anything staged or
        pending would be destroyed with the log.

        Raises
        ------
        PageFileError
            If the store is not quiescent.
        """
        if not self.quiescent:
            raise PageFileError(
                "finish_checkpoint outside a quiescent point"
            )
        header = self._file.read_header()
        header.next_id = self._next_id
        header.root_pid = self._root_pid
        header.clock_time = self._now()
        header.free_head = free_head
        header.free_count = free_count
        self._file.write_header(header)
        self._file.sync()
        self._truncate_wal(header.clock_time)

    def checkpoint(self) -> None:
        """Make the page file self-contained and truncate the log.

        Commits any staged changes, rewrites the free chain and header
        (root, clock, allocation watermark), fsyncs the page file, and
        atomically resets the log to a single checkpoint record (an
        attached shipper may first spill unshipped batches, or refuse —
        see :meth:`attach_shipper`).  A no-op on a closed store, so
        shutdown paths may call it unconditionally.
        """
        if self._closed:
            return
        self.commit()
        free_head = self.link_free_slots(self._free, -1)
        self.finish_checkpoint(free_head, len(self._free))

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` or :meth:`abandon` has run."""
        return self._closed

    def close(self) -> None:
        """Checkpoint and release all file handles (idempotent).

        A second call is a no-op.  A transient fault during the final
        checkpoint is swallowed: the write-ahead log already holds every
        committed operation, so releasing the handles loses nothing —
        :meth:`open_dir` replays the committed prefix.  Fatal faults
        (:class:`~repro.storage.faults.SimulatedCrash`) still propagate;
        a dead process must go through :meth:`abandon`.
        """
        if self._closed:
            return
        try:
            self.checkpoint()
        except TransientIOError:
            # Committed state is safe in the WAL; only the uncommitted
            # tail of the interrupted flush is lost, exactly as if the
            # process had stopped one operation earlier.
            pass
        self._closed = True
        self._file.close()
        if self.wal is not None:
            self.wal.close()

    def abandon(self) -> None:
        """Release file handles without flushing (process death)."""
        self._closed = True
        self._file.abandon()
        if self.wal is not None:
            self.wal.abandon()

    # -- snapshotting -------------------------------------------------------

    @classmethod
    def snapshot(
        cls,
        directory: str,
        layout: EntryLayout,
        now: Callable[[], float],
        pages: Dict[PageId, Any],
        free: List[PageId],
        next_id: PageId,
        root_pid: PageId,
        stats: Optional[IOStats] = None,
    ) -> "FilePageStore":
        """Write a full image of an in-memory store to ``directory``.

        Used by ``persist_to`` on simulated trees: every live page is
        encoded and written straight to the page file (no logging — the
        snapshot is atomic from the caller's point of view because the
        header, written last, is what makes the file openable), then
        the store checkpoints, leaving a clean log.
        """
        store = cls.create(directory, layout, now, stats=stats)
        t = now()
        for pid, payload in pages.items():
            store._file.write_page(pid, store.codec.encode(payload, t))
        store._pages = dict(pages)
        store._free = list(free)
        store._next_id = next_id
        store.set_root(root_pid)
        store.checkpoint()
        return store
