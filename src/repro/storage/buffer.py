"""LRU buffer pool over the simulated disk.

Reproduces the buffering discipline of the paper's experiments
(Section 5.1): a fixed number of pages (50 at 4 KB = 200 KB), the tree
root pinned, least-recently-used replacement, and dirty pages written to
disk at the end of each index operation or when evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator, Optional, Set

from .disk import DiskManager, PageError, PageId


class BufferPool:
    """Fixed-capacity page cache with LRU replacement and pinning.

    All page traffic of an index goes through one pool; buffer hits are
    free, misses charge a disk read, and evictions or end-of-operation
    flushes of dirty pages charge disk writes.

    The pool keeps its own ``hits`` / ``misses`` / ``evictions`` /
    ``pins`` counters (plain ints, always on): misses equal the disk
    reads it causes, but hits were previously invisible, and the hit
    rate is what makes or breaks the page-I/O model.
    """

    def __init__(self, disk: DiskManager, capacity: int = 50):
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[PageId, Any]" = OrderedDict()
        self._dirty: Set[PageId] = set()
        self._pinned: Set[PageId] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pins = 0

    # -- pinning ------------------------------------------------------------

    def pin(self, pid: PageId) -> None:
        """Pin a page so it is never evicted (used for the tree root)."""
        self._pinned.add(pid)
        self.pins += 1

    def unpin(self, pid: PageId) -> None:
        """Make a pinned page evictable again."""
        self._pinned.discard(pid)

    def is_pinned(self, pid: PageId) -> bool:
        """True if the page is currently protected from eviction."""
        return pid in self._pinned

    # -- access -------------------------------------------------------------

    def get(self, pid: PageId) -> Any:
        """Fetch a page, reading from disk on a buffer miss."""
        if pid in self._frames:
            self.hits += 1
            self._frames.move_to_end(pid)
            return self._frames[pid]
        self.misses += 1
        payload = self.disk.read(pid)
        self._admit(pid, payload)
        return payload

    def put_new(self, pid: PageId, payload: Any) -> None:
        """Install a freshly allocated page; it is dirty but costs no read."""
        self._admit(pid, payload)
        self._dirty.add(pid)

    def mark_dirty(self, pid: PageId, payload: Any = None) -> None:
        """Mark a page dirty, optionally replacing its payload.

        Writing re-admits a page that was evicted mid-operation (tiny
        pools can rotate an operation's working set out between its read
        and its write); the payload is then required.
        """
        if pid not in self._frames:
            if payload is None:
                raise PageError(f"mark_dirty of unbuffered page {pid}")
            self._admit(pid, payload)
        elif payload is not None:
            self._frames[pid] = payload
        self._frames.move_to_end(pid)
        self._dirty.add(pid)

    def discard(self, pid: PageId) -> None:
        """Drop a page from the buffer without flushing (page was freed)."""
        self._frames.pop(pid, None)
        self._dirty.discard(pid)
        self._pinned.discard(pid)

    # -- write-back ---------------------------------------------------------

    def flush(self, pid: PageId) -> None:
        """Write one dirty page back to disk."""
        if pid in self._dirty:
            self.disk.write(pid, self._frames[pid])
            self._dirty.discard(pid)

    def flush_all(self) -> None:
        """Write all dirty pages back to disk (end of an index operation).

        Pages stay resident; only the dirty bits are cleared.  This matches
        the paper: "Nodes modified during an index operation are marked as
        'dirty' in the buffer and are written to disk at the end of the
        operation or when they otherwise have to be removed from the
        buffer."
        """
        for pid in sorted(self._dirty):
            self.disk.write(pid, self._frames[pid])
        self._dirty.clear()
        self.disk.commit()

    def clear(self) -> None:
        """Flush everything and empty the pool (used between experiments).

        Pins survive: they express ownership (the tree root must never
        be evicted), not residency, and no tree re-pins its root after a
        clear.  Dropping them here would let the root rotate out of a
        small pool mid-operation and charge phantom re-reads.  Pages are
        unpinned when their owner frees them (:meth:`discard`).
        """
        self.flush_all()
        self._frames.clear()

    # -- internals ----------------------------------------------------------

    def _admit(self, pid: PageId, payload: Any) -> None:
        if pid in self._frames:
            self._frames[pid] = payload
            self._frames.move_to_end(pid)
            return
        while len(self._frames) >= self.capacity:
            victim = self._choose_victim()
            if victim is None:
                # Everything is pinned; over-admit rather than deadlock.
                break
            self._evict(victim)
        self._frames[pid] = payload

    def _choose_victim(self) -> Optional[PageId]:
        for pid in self._frames:
            if pid not in self._pinned:
                return pid
        return None

    def _evict(self, pid: PageId) -> None:
        self.evictions += 1
        if pid in self._dirty:
            self.disk.write(pid, self._frames[pid])
            self._dirty.discard(pid)
        del self._frames[pid]

    # -- introspection ------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of page fetches served from the buffer (0.0 if none)."""
        accesses = self.hits + self.misses
        if accesses == 0:
            return 0.0
        return self.hits / accesses

    @property
    def resident_pages(self) -> int:
        """Number of pages currently held in the pool."""
        return len(self._frames)

    @property
    def dirty_pages(self) -> int:
        """Number of resident pages with unflushed modifications."""
        return len(self._dirty)

    def resident_ids(self) -> Iterator[PageId]:
        """Iterate over the ids of all resident pages (LRU order)."""
        return iter(self._frames.keys())

    def is_resident(self, pid: PageId) -> bool:
        """True if the page is currently held in the pool."""
        return pid in self._frames
