"""Byte-accurate entry layouts and node capacities.

The paper's node fan-outs follow from a concrete on-page layout with
4-byte coordinates: at 4 KB pages a full leaf holds 170 entries
(position + velocity + expiration time + object id = 24 bytes) and a full
internal node holds 102 entries (rectangle + edge velocities + expiration
time + child pointer = 40 bytes).  Fan-out is also a *studied variable*:
static bounding rectangles drop the stored velocities ("we increase the
fan-out of internal tree nodes by almost a factor of two") and the
"BRs w/o exp.t." flavours of Figures 9-10 drop the stored expiration
time.  This module derives all those capacities from the layout options.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes reserved per node for level, entry count and bookkeeping.
NODE_HEADER_BYTES = 16


@dataclass(frozen=True)
class EntryLayout:
    """Derive entry sizes and node capacities from layout options.

    Attributes
    ----------
    page_size : int
        Disk page (= tree node) size in bytes.
    dims : int
        Dimensionality of the indexed space.
    coord_bytes : int
        Bytes per stored coordinate/velocity/time value.
    store_velocities : bool
        Whether internal entries store edge velocities (False for
        static bounding rectangles).
    store_br_expiration : bool
        Whether internal entries store the bounding rectangle's
        expiration time (the "BRs with exp.t." flavour).
    store_leaf_expiration : bool
        Whether leaf entries store the object's expiration time (False
        for the plain TPR-tree).
    pointer_bytes : int
        Bytes per child-page pointer.
    oid_bytes : int
        Bytes per object identifier in leaf entries.
    """

    page_size: int = 4096
    dims: int = 2
    coord_bytes: int = 4
    store_velocities: bool = True
    store_br_expiration: bool = True
    store_leaf_expiration: bool = True
    pointer_bytes: int = 4
    oid_bytes: int = 4

    def __post_init__(self) -> None:
        """Validate that the page fits R*-style minimum fan-outs."""
        if self.page_size <= NODE_HEADER_BYTES:
            raise ValueError(f"page_size {self.page_size} too small")
        if self.dims < 1:
            raise ValueError(f"dims must be >= 1, got {self.dims}")
        if self.leaf_capacity < 4 or self.internal_capacity < 4:
            raise ValueError(
                "page too small: capacities "
                f"(leaf={self.leaf_capacity}, internal={self.internal_capacity}) "
                "must be at least 4 for R*-style splits"
            )

    @property
    def leaf_entry_bytes(self) -> int:
        """Reference position, velocity vector, optional t_exp, object id."""
        size = 2 * self.dims * self.coord_bytes + self.oid_bytes
        if self.store_leaf_expiration:
            size += self.coord_bytes
        return size

    @property
    def internal_entry_bytes(self) -> int:
        """Rectangle bounds, optional edge velocities and t_exp, child pointer."""
        size = 2 * self.dims * self.coord_bytes + self.pointer_bytes
        if self.store_velocities:
            size += 2 * self.dims * self.coord_bytes
        if self.store_br_expiration:
            size += self.coord_bytes
        return size

    @property
    def max_oid(self) -> int:
        """Largest object id the page codec can store (unsigned).

        With the default 4-byte oid field this is ``2**32 - 1``.  The
        shard wire format carries oids as i64, so insert paths validate
        against this bound up front — otherwise an oversized oid only
        surfaces as a ``struct.error`` when its page is encoded, deep
        inside a commit or recovery.
        """
        return (1 << (8 * self.oid_bytes)) - 1

    @property
    def leaf_capacity(self) -> int:
        """Maximum number of entries in a leaf node."""
        return (self.page_size - NODE_HEADER_BYTES) // self.leaf_entry_bytes

    @property
    def internal_capacity(self) -> int:
        """Maximum number of entries in an internal node."""
        return (self.page_size - NODE_HEADER_BYTES) // self.internal_entry_bytes

    def capacity(self, leaf: bool) -> int:
        """Maximum entries for a node of the given kind."""
        return self.leaf_capacity if leaf else self.internal_capacity
