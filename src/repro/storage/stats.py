"""I/O statistics collection.

Every figure in the paper reports disk I/O operations (page reads and
writes).  :class:`IOStats` is the single accounting object shared by the
disk manager and the buffer pool; the experiment runner snapshots it
around each index operation to attribute I/O to searches versus updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import Histogram


@dataclass
class IOStats:
    """Running counters of simulated disk activity.

    Attributes
    ----------
    reads : int
        Number of pages fetched from disk (buffer misses).
    writes : int
        Number of pages written back to disk.
    allocations : int
        Number of pages ever allocated.
    frees : int
        Number of pages deallocated.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    @property
    def total(self) -> int:
        """Total I/O operations (reads plus writes)."""
        return self.reads + self.writes

    def snapshot(self) -> "IOSnapshot":
        """Capture the current counter values."""
        return IOSnapshot(self.reads, self.writes, self.allocations, self.frees)

    def since(self, snap: "IOSnapshot") -> "IOSnapshot":
        """Return the delta between now and an earlier :meth:`snapshot`."""
        return IOSnapshot(
            self.reads - snap.reads,
            self.writes - snap.writes,
            self.allocations - snap.allocations,
            self.frees - snap.frees,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0


@dataclass(frozen=True)
class IOSnapshot:
    """Immutable view of :class:`IOStats` counters at one point in time."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    @property
    def total(self) -> int:
        """Total I/O operations (reads plus writes)."""
        return self.reads + self.writes

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        """Add two snapshots counter-wise."""
        return IOSnapshot(
            self.reads + other.reads,
            self.writes + other.writes,
            self.allocations + other.allocations,
            self.frees + other.frees,
        )


@dataclass
class OperationStats:
    """Aggregate per-operation-class I/O tallies for one experiment run.

    The paper reports *average* search I/O per query and *average* update
    I/O per insertion or deletion; this accumulator produces both.
    """

    search_io: int = 0
    search_ops: int = 0
    update_io: int = 0
    update_ops: int = 0
    auxiliary_io: int = 0
    setup_io: int = 0
    search_io_hist: Histogram = field(
        default_factory=lambda: Histogram("search_io")
    )
    update_io_hist: Histogram = field(
        default_factory=lambda: Histogram("update_io")
    )

    def record_search(self, io: int) -> None:
        """Charge one query's page I/O to the search tally."""
        self.search_io += io
        self.search_ops += 1
        self.search_io_hist.record(io)

    def record_update(self, io: int) -> None:
        """Charge one insert/delete's page I/O to the update tally."""
        self.update_io += io
        self.update_ops += 1
        self.update_io_hist.record(io)

    def record_setup(self, io: int) -> None:
        """One-time build I/O (bulk loading); kept out of update averages."""
        self.setup_io += io

    def record_auxiliary(self, io: int) -> None:
        """I/O charged to side structures (e.g. the scheduled-deletion B-tree)."""
        self.auxiliary_io += io

    @property
    def avg_search_io(self) -> float:
        """Average I/O per query (the y-axis of Figures 9-14)."""
        if self.search_ops == 0:
            return 0.0
        return self.search_io / self.search_ops

    @property
    def avg_update_io(self) -> float:
        """Average I/O per insert/delete (the y-axis of Figure 16)."""
        if self.update_ops == 0:
            return 0.0
        return self.update_io / self.update_ops

    @property
    def avg_update_io_with_auxiliary(self) -> float:
        """Update I/O including side-structure costs the paper excludes."""
        if self.update_ops == 0:
            return 0.0
        return (self.update_io + self.auxiliary_io) / self.update_ops

    @property
    def search_io_p50(self) -> float:
        """Median I/O per query (the tail behind the Figure 9-14 averages)."""
        return self.search_io_hist.p50

    @property
    def search_io_p95(self) -> float:
        """95th-percentile I/O per query."""
        return self.search_io_hist.p95

    @property
    def search_io_p99(self) -> float:
        """99th-percentile I/O per query."""
        return self.search_io_hist.p99
