"""Physical write-ahead log and ARIES-lite crash recovery.

Durability in this stack is redo-only: every index operation stages its
dirty pages in the :class:`~repro.storage.pagefile.FilePageStore`, and at
the operation boundary the store appends one WAL record per final page
image (plus one per freed page) followed by a single commit record — a
group commit.  Only after the commit record is on the log are the page
images applied to the page file, so the log always runs ahead of the
data (the WAL-before-page invariant).  Recovery therefore never needs
undo: it replays the page images of committed operations and discards
everything after the last intact commit record.

Per TR-82 (Schmidt & Jensen, *Efficient Management of Short-Lived
Data*), replay exploits expiration semantics: a committed leaf image
whose every entry has ``t_exp`` below the recovery time carries no live
information, and when the on-disk slot it would overwrite is itself an
intact all-expired leaf the record is skipped and counted in the
``wal_skipped_expired`` metric.

WAL record wire format (all integers little-endian)::

    offset  size  field
    0       1     kind      u8   (1=PAGE, 2=FREE, 3=COMMIT, 4=CHECKPOINT)
    1       8     lsn       u64  (dense, starts at 0, monotonic)
    9       4     length    u32  (payload byte count)
    13      N     payload
    13+N    4     crc       u32  (CRC32 over bytes [0, 13+N))

Payloads::

    PAGE        <q> page id, then the raw page image (page_size bytes)
    FREE        <q> page id
    COMMIT      <Qd> operation sequence number, simulation clock time
    CHECKPOINT  <Qd> operation sequence number, simulation clock time

A torn tail — a record cut short by a crash, or one whose CRC does not
match — ends the scan; everything from the first bad byte onward is
discarded.  A checkpoint record is only ever the first record of a log
(written by :meth:`WriteAheadLog.reset` through an atomic rename), and
asserts that the page file was consistent when it was written.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from .stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .pagefile import PageFile

#: Record kinds (the ``kind`` byte of the wire format).
PAGE_RECORD = 1
FREE_RECORD = 2
COMMIT_RECORD = 3
CHECKPOINT_RECORD = 4

_RECORD_HEADER = struct.Struct("<BQI")
_CRC = struct.Struct("<I")
_PID = struct.Struct("<q")
_COMMIT = struct.Struct("<Qd")


class WalError(Exception):
    """Raised on malformed write-ahead logs beyond an ignorable torn tail."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record.

    Attributes
    ----------
    kind : int
        One of :data:`PAGE_RECORD`, :data:`FREE_RECORD`,
        :data:`COMMIT_RECORD`, :data:`CHECKPOINT_RECORD`.
    lsn : int
        Log sequence number (dense, monotonically increasing).
    payload : bytes
        The raw record payload (see the module docstring for layouts).
    """

    kind: int
    lsn: int
    payload: bytes

    @property
    def page_id(self) -> int:
        """Page id of a PAGE or FREE record."""
        return _PID.unpack_from(self.payload, 0)[0]

    @property
    def page_bytes(self) -> bytes:
        """Page image of a PAGE record."""
        return self.payload[_PID.size:]

    @property
    def op_seq(self) -> int:
        """Operation sequence number of a COMMIT or CHECKPOINT record."""
        return _COMMIT.unpack_from(self.payload, 0)[0]

    @property
    def clock_time(self) -> float:
        """Simulation clock time of a COMMIT or CHECKPOINT record."""
        return _COMMIT.unpack_from(self.payload, 0)[1]


def _encode_record(kind: int, lsn: int, payload: bytes) -> bytes:
    head = _RECORD_HEADER.pack(kind, lsn, len(payload)) + payload
    return head + _CRC.pack(zlib.crc32(head))


def encode_record(kind: int, lsn: int, payload: bytes) -> bytes:
    """Encode one record in the WAL wire format.

    Public entry point for code that writes WAL-formatted byte streams
    outside the log itself — archive segments and the replication
    shipping channel both reuse the record framing (and therefore its
    CRC protection) so that :func:`scan_wal_bytes` can validate them.
    """
    return _encode_record(kind, lsn, payload)


def scan_wal(path: str) -> Tuple[List[WalRecord], int, int]:
    """Scan a WAL file, stopping at the first torn or corrupt record.

    Parameters
    ----------
    path : str
        Path of the log file.  A missing file scans as empty.

    Returns
    -------
    records : list of WalRecord
        Every intact record, in log order.
    valid_length : int
        Byte offset of the end of the last intact record.
    torn_bytes : int
        Bytes discarded after ``valid_length`` (0 for a clean log).
    """
    if not os.path.exists(path):
        return [], 0, 0
    data = open(path, "rb").read()
    return scan_wal_bytes(data)


def scan_wal_bytes(data: bytes) -> Tuple[List[WalRecord], int, int]:
    """Scan an in-memory byte string in WAL wire format.

    Same contract as :func:`scan_wal` but over bytes already in hand —
    the shipping channel uses it to validate batches that crossed a
    faulty transport, where a short read must surface as a torn tail
    rather than an exception.
    """
    records: List[WalRecord] = []
    offset = 0
    while offset < len(data):
        if offset + _RECORD_HEADER.size + _CRC.size > len(data):
            break
        kind, lsn, length = _RECORD_HEADER.unpack_from(data, offset)
        end = offset + _RECORD_HEADER.size + length + _CRC.size
        if kind not in (
            PAGE_RECORD, FREE_RECORD, COMMIT_RECORD, CHECKPOINT_RECORD
        ) or end > len(data):
            break
        body = data[offset:end - _CRC.size]
        (crc,) = _CRC.unpack_from(data, end - _CRC.size)
        if crc != zlib.crc32(body):
            break
        if records and lsn != records[-1].lsn + 1:
            break
        records.append(
            WalRecord(kind, lsn, body[_RECORD_HEADER.size:])
        )
        offset = end
    return records, offset, len(data) - offset


class WriteAheadLog:
    """Append-only physical log with group commit.

    Page stores append page/free records for every staged change of an
    operation, then a single commit record, then :meth:`flush` — after
    which the images may be applied to the page file.  Each appended
    record is one physical file write, charged as one write I/O on
    ``stats`` (this is the log traffic reported as ``auxiliary_io`` by
    the experiment runner; it is *not* part of the tree's page I/O).

    Parameters
    ----------
    path : str
        Log file path; created if missing, otherwise scanned so that
        appends continue after the last intact record.
    stats : IOStats, optional
        Counter sink for log writes.  A private one is created when
        omitted.
    injector : FaultInjector, optional
        Fault hook applied to every physical write.
    fsync : bool, optional
        Issue ``os.fsync`` on every :meth:`flush` (default off: the
        simulation cares about write counts, not media durability).
    """

    def __init__(
        self,
        path: str,
        stats: Optional[IOStats] = None,
        injector: Optional["object"] = None,
        fsync: bool = False,
    ):
        self.path = path
        self.stats = stats if stats is not None else IOStats()
        self.fsync = fsync
        self._injector = injector
        records, valid, torn = scan_wal(path)
        self._next_lsn = records[-1].lsn + 1 if records else 0
        self._file = open(path, "r+b" if os.path.exists(path) else "w+b")
        self._file.seek(valid)
        self._file.truncate(valid)
        if torn:
            # The truncate above cut off a torn tail, but only in the
            # kernel's page cache.  A crash before the next flush could
            # resurrect the torn bytes on media, and the records appended
            # after them would then sit past a corrupt region — so the
            # cut itself must be durable before any append.
            self._file.flush()
            os.fsync(self._file.fileno())
        self.records_appended = 0
        self.bytes_appended = 0

    # -- appends ------------------------------------------------------------

    def _append(self, kind: int, payload: bytes) -> int:
        lsn = self._next_lsn
        data = _encode_record(kind, lsn, payload)
        if self._injector is not None:
            data = self._injector.before_write(data)
        self._file.write(data)
        if self._injector is not None:
            self._injector.after_write()
        self._next_lsn += 1
        self.stats.writes += 1
        self.records_appended += 1
        self.bytes_appended += len(data)
        return lsn

    def append_page(self, pid: int, page_bytes: bytes) -> int:
        """Append a PAGE record and return its LSN."""
        return self._append(PAGE_RECORD, _PID.pack(pid) + page_bytes)

    def append_free(self, pid: int) -> int:
        """Append a FREE record and return its LSN."""
        return self._append(FREE_RECORD, _PID.pack(pid))

    def append_commit(self, op_seq: int, clock_time: float) -> int:
        """Append a COMMIT record and return its LSN."""
        return self._append(COMMIT_RECORD, _COMMIT.pack(op_seq, clock_time))

    def append_raw(self, kind: int, payload: bytes) -> int:
        """Append an already-encoded payload under ``kind``; return the LSN.

        The replication applier uses this to replay shipped records —
        whose payloads arrive exactly as the primary logged them — into
        the replica's own log without a decode/re-encode round trip.
        """
        return self._append(kind, payload)

    def flush(self) -> None:
        """Flush buffered appends to the operating system (and media)."""
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    # -- lifecycle ----------------------------------------------------------

    def reset(self, op_seq: int, clock_time: float) -> None:
        """Atomically replace the log with a single checkpoint record.

        The new log is written to a sibling temporary file, fsynced, and
        renamed over ``path`` — a crash at any point leaves either the
        old intact log or the new one.  The page file must be consistent
        (all committed images applied and synced) before calling this.

        The live handle is closed only after the temporary file exists:
        the injector's raise site comes first, so a transiently faulted
        reset leaves the old log open and appendable for a retry.
        """
        tmp = self.path + ".tmp"
        data = _encode_record(
            CHECKPOINT_RECORD, 0, _COMMIT.pack(op_seq, clock_time)
        )
        if self._injector is not None:
            data = self._injector.before_write(data)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if self._injector is not None:
            self._injector.after_write()
        self._file.close()
        os.replace(tmp, self.path)
        self.stats.writes += 1
        self.records_appended += 1
        self.bytes_appended += len(data)
        self._next_lsn = 1
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)

    def close(self) -> None:
        """Flush and close the log file handle."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def abandon(self) -> None:
        """Close the handle without flushing (simulated process death)."""
        if not self._file.closed:
            self._file.close()


@dataclass
class RecoveryReport:
    """Summary of one :func:`recover` pass.

    Attributes
    ----------
    records_scanned : int
        Intact records found in the log.
    commits_applied : int
        Committed operation batches whose images were (re)applied.
    pages_replayed : int
        PAGE records written back to the page file.
    frees_replayed : int
        FREE records applied to the page file.
    wal_skipped_expired : int
        PAGE records skipped by the TR-82 expiration rule.
    skipped_pids : tuple of int
        Page ids whose replay was skipped (stale all-expired images
        remain in those slots).
    torn_bytes : int
        Bytes of torn/corrupt log tail that were discarded.
    op_seq : int
        Operation sequence number of the last committed operation (0 if
        nothing was ever committed).
    clock_time : float
        Simulation clock restored from the last commit (or checkpoint,
        or page-file header when the log holds neither).
    checkpoint_seen : bool
        Whether the log began with a checkpoint record.
    """

    records_scanned: int = 0
    commits_applied: int = 0
    pages_replayed: int = 0
    frees_replayed: int = 0
    wal_skipped_expired: int = 0
    skipped_pids: Tuple[int, ...] = ()
    torn_bytes: int = 0
    op_seq: int = 0
    clock_time: float = 0.0
    checkpoint_seen: bool = False
    _batches: List[Tuple[int, float, list]] = field(
        default_factory=list, repr=False
    )


def recover(
    page_file: "PageFile",
    wal_path: str,
    all_expired: Optional[Callable[[bytes, float], bool]] = None,
    registry=None,
    tracer=None,
) -> RecoveryReport:
    """Replay committed WAL records onto a page file (redo-only).

    The scan phase walks the whole log, CRC-verifying each record,
    grouping page/free records into batches closed by commit records and
    discarding the torn tail plus any trailing uncommitted batch.  The
    redo phase applies the batches in order, skipping page images that
    the expiration rule proves carry no live information, then rewrites
    the page-file header (clock, next page id, rebuilt free chain),
    syncs it, and resets the log to a single checkpoint record.

    Parameters
    ----------
    page_file : PageFile
        Open raw page file to replay onto.
    wal_path : str
        Path of the write-ahead log.
    all_expired : callable, optional
        Predicate ``(page_bytes, recovery_time) -> bool`` that decides
        whether a page image is an all-expired leaf.  When omitted the
        TR-82 skip is disabled and every committed image is replayed.
    registry : MetricsRegistry, optional
        Sink for ``wal_skipped_expired`` and the other recovery
        counters.
    tracer : Tracer, optional
        Emits a ``wal.recover`` span around the pass.

    Returns
    -------
    RecoveryReport
        Counts of what the pass scanned, replayed and skipped.
    """
    if tracer is not None:
        with tracer.span("wal.recover", wal=wal_path):
            report = _recover(page_file, wal_path, all_expired)
    else:
        report = _recover(page_file, wal_path, all_expired)
    if registry is not None:
        registry.counter("wal_skipped_expired").inc(report.wal_skipped_expired)
        registry.counter("wal.records_scanned").inc(report.records_scanned)
        registry.counter("wal.commits_applied").inc(report.commits_applied)
        registry.counter("wal.pages_replayed").inc(report.pages_replayed)
        registry.counter("wal.frees_replayed").inc(report.frees_replayed)
        registry.counter("wal.torn_bytes").inc(report.torn_bytes)
    return report


def _recover(page_file, wal_path, all_expired):
    records, _valid, torn = scan_wal(wal_path)
    report = RecoveryReport(records_scanned=len(records), torn_bytes=torn)
    header = page_file.read_header()
    report.clock_time = header.clock_time

    pending: list = []
    for record in records:
        if record.kind == CHECKPOINT_RECORD:
            if pending:
                raise WalError("checkpoint record inside an open batch")
            report.checkpoint_seen = True
            report.op_seq = record.op_seq
            report.clock_time = record.clock_time
        elif record.kind == COMMIT_RECORD:
            report._batches.append(
                (record.op_seq, record.clock_time, pending)
            )
            pending = []
        else:
            pending.append(record)
    # A trailing batch without a commit record never happened.

    if report._batches:
        report.op_seq = report._batches[-1][0]
        report.clock_time = report._batches[-1][1]
    now = report.clock_time

    skipped = set()
    for _op_seq, _clock, batch in report._batches:
        report.commits_applied += 1
        for record in batch:
            if record.kind == FREE_RECORD:
                page_file.mark_free(record.page_id, -1)
                skipped.discard(record.page_id)
                report.frees_replayed += 1
                continue
            data = record.page_bytes
            if all_expired is not None and _skippable(
                page_file, record.page_id, data, now, all_expired
            ):
                report.wal_skipped_expired += 1
                skipped.add(record.page_id)
                continue
            page_file.write_page(record.page_id, data)
            skipped.discard(record.page_id)
            report.pages_replayed += 1
    report.skipped_pids = tuple(sorted(skipped))

    header = page_file.read_header()
    header.clock_time = now
    header.next_id = max(header.next_id, page_file.slot_count)
    page_file.rebuild_free_chain(header)
    page_file.write_header(header)
    page_file.sync()

    log = WriteAheadLog(wal_path)
    log.reset(report.op_seq, now)
    log.close()
    return report


def _skippable(page_file, pid, data, now, all_expired) -> bool:
    """Apply the TR-82 skip rule to one committed page image.

    The rule is deliberately conservative: the *logged* image must be an
    all-expired leaf (so replaying it would install no live entries) and
    the slot it would overwrite must already hold an intact, CRC-valid
    all-expired leaf (so skipping leaves no torn or live-looking bytes
    behind).  Anything else — internal nodes, fresh slots, corrupt
    slots, leaves with a single live entry — is replayed.
    """
    # The predicate decodes raw page bytes; garbage surfaces as a codec
    # ValueError/struct.error (or OSError from the underlying file).  An
    # undecodable image is not *provably* all-expired, so recovery
    # conservatively replays it verbatim rather than guess.  Any other
    # exception type is a bug in the predicate and must propagate — a
    # bare except here once masked real defects as "not skippable".
    try:
        if not all_expired(data, now):
            return False
    except (OSError, ValueError, struct.error):
        return False
    if pid >= page_file.slot_count:
        return False
    slot = page_file.read_slot(pid)
    if slot.state != 1 or not slot.crc_ok:  # 1 == SLOT_ALLOCATED
        return False
    try:
        return bool(all_expired(slot.payload, now))
    except (OSError, ValueError, struct.error):
        # Same contract as above: only decode/IO failures mean "replay".
        return False
