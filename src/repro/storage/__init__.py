"""Simulated paged storage: disk manager, LRU buffer pool, I/O accounting.

This is the substrate the paper's experiments measure against — every
figure's y-axis is a count of page reads/writes through this layer.
"""

from .buffer import BufferPool
from .disk import INVALID_PAGE, DiskManager, PageError, PageId
from .layout import NODE_HEADER_BYTES, EntryLayout
from .serial import CodecError, NodeCodec
from .stats import IOSnapshot, IOStats, OperationStats

__all__ = [
    "BufferPool",
    "CodecError",
    "DiskManager",
    "EntryLayout",
    "INVALID_PAGE",
    "IOSnapshot",
    "IOStats",
    "NODE_HEADER_BYTES",
    "NodeCodec",
    "OperationStats",
    "PageError",
    "PageId",
]
