"""Paged storage: simulated disk, durable page file, WAL, buffer pool.

Every figure's y-axis is a count of page reads/writes through this
layer.  The simulated :class:`DiskManager` charges that I/O against
in-memory pages; the durable :class:`FilePageStore` charges *the same*
I/O while additionally write-ahead-logging page images to a real file,
so figures are unchanged whichever backend a tree runs on.
"""

from .buffer import BufferPool
from .disk import INVALID_PAGE, DiskManager, PageError, PageId
from .faults import MODES, FaultInjector, SimulatedCrash
from .layout import NODE_HEADER_BYTES, EntryLayout
from .pagefile import (
    PAGES_FILENAME,
    WAL_FILENAME,
    FilePageStore,
    PageFile,
    PageFileError,
    PageFileHeader,
    PersistReport,
)
from .serial import CodecError, NodeCodec
from .stats import IOSnapshot, IOStats, OperationStats
from .wal import RecoveryReport, WalError, WalRecord, WriteAheadLog, recover

__all__ = [
    "BufferPool",
    "CodecError",
    "DiskManager",
    "EntryLayout",
    "FaultInjector",
    "FilePageStore",
    "INVALID_PAGE",
    "IOSnapshot",
    "IOStats",
    "MODES",
    "NODE_HEADER_BYTES",
    "NodeCodec",
    "OperationStats",
    "PAGES_FILENAME",
    "PageError",
    "PageFile",
    "PageFileError",
    "PageFileHeader",
    "PageId",
    "PersistReport",
    "RecoveryReport",
    "SimulatedCrash",
    "WAL_FILENAME",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "recover",
]
