"""A disk-based B+-tree.

Section 3 of the paper argues that scheduling deletions of expiring
objects requires a secondary disk-resident structure — "a B-tree on the
composite key of the expiration time and the object id" — supporting
efficient minimum extraction (the next due deletion) plus point inserts
and deletes (objects updated before they expire).  This module provides
that structure on the same simulated paged store, so its I/O can be
charged next to the primary index's (the paper shows this roughly
doubles update cost).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..storage.buffer import BufferPool
from ..storage.disk import INVALID_PAGE, DiskManager, PageId
from ..storage.stats import IOStats

Key = Tuple[Any, ...]

#: Per-node bookkeeping bytes.
_HEADER = 16
#: Bytes per (key, value/child) slot: composite key (8 + 4) + pointer 4.
_SLOT = 16


class _BNode:
    """One B+-tree node; leaves carry values and a next-leaf link."""

    __slots__ = ("leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: List[Key] = []
        self.values: List[Any] = []          # leaf payloads
        self.children: List[PageId] = []     # internal children
        self.next_leaf: PageId = INVALID_PAGE


class BPlusTree:
    """Order-by-page-size B+-tree with duplicate-free composite keys.

    Keys must be tuples with a total order (the paper's use case is
    ``(t_exp, object_id)``, which is unique per live object).
    """

    def __init__(self, page_size: int = 4096, buffer_pages: int = 50):
        self.stats = IOStats()
        self.disk = DiskManager(page_size, self.stats)
        self.buffer = BufferPool(self.disk, buffer_pages)
        self.capacity = max(4, (page_size - _HEADER) // _SLOT)
        self._size = 0
        self.root_pid = self._new_node(_BNode(leaf=True))
        self.buffer.pin(self.root_pid)

    # -- node I/O --------------------------------------------------------------

    def _new_node(self, node: _BNode) -> PageId:
        pid = self.disk.allocate()
        self.buffer.put_new(pid, node)
        return pid

    def _load(self, pid: PageId) -> _BNode:
        return self.buffer.get(pid)

    def _touch(self, pid: PageId, node: _BNode) -> None:
        self.buffer.mark_dirty(pid, node)

    @property
    def _min_keys(self) -> int:
        return self.capacity // 2

    # -- public API --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def page_count(self) -> int:
        return self.disk.allocated_pages

    @property
    def height(self) -> int:
        h = 1
        node = self._load(self.root_pid)
        while not node.leaf:
            node = self._load(node.children[0])
            h += 1
        return h

    def get(self, key: Key) -> Optional[Any]:
        """Value stored under ``key``, or None."""
        node = self._load(self.root_pid)
        while not node.leaf:
            node = self._load(node.children[self._child_index(node, key)])
        i = bisect.bisect_left(node.keys, key)
        value = None
        if i < len(node.keys) and node.keys[i] == key:
            value = node.values[i]
        self.buffer.flush_all()
        return value

    def insert(self, key: Key, value: Any) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert_rec(self.root_pid, key, value)
        if split is not None:
            sep, right_pid = split
            old_root = self._load(self.root_pid)
            moved = self._new_node(old_root)
            new_root = _BNode(leaf=False)
            new_root.keys = [sep]
            new_root.children = [moved, right_pid]
            self._touch(self.root_pid, new_root)
        self.buffer.flush_all()

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns False if absent."""
        removed = self._delete_rec(self.root_pid, key)
        root = self._load(self.root_pid)
        if not root.leaf and len(root.children) == 1:
            child = self._load(root.children[0])
            self._touch(self.root_pid, child)
            self.buffer.discard(root.children[0])
            self.disk.free(root.children[0])
        if removed:
            self._size -= 1
        self.buffer.flush_all()
        return removed

    def min_item(self) -> Optional[Tuple[Key, Any]]:
        """The smallest (key, value), or None when empty."""
        node = self._load(self.root_pid)
        while not node.leaf:
            node = self._load(node.children[0])
        result = (node.keys[0], node.values[0]) if node.keys else None
        self.buffer.flush_all()
        return result

    def pop_min(self) -> Optional[Tuple[Key, Any]]:
        """Remove and return the smallest (key, value)."""
        item = self.min_item()
        if item is None:
            return None
        self.delete(item[0])
        return item

    def items(
        self, lo: Optional[Key] = None, hi: Optional[Key] = None
    ) -> Iterator[Tuple[Key, Any]]:
        """All (key, value) pairs with lo <= key < hi, in key order."""
        node = self._load(self.root_pid)
        while not node.leaf:
            idx = self._child_index(node, lo) if lo is not None else 0
            node = self._load(node.children[idx])
        while True:
            for key, value in zip(node.keys, node.values):
                if lo is not None and key < lo:
                    continue
                if hi is not None and key >= hi:
                    return
                yield key, value
            if node.next_leaf == INVALID_PAGE:
                return
            node = self._load(node.next_leaf)

    # -- insertion internals -------------------------------------------------------

    @staticmethod
    def _child_index(node: _BNode, key: Key) -> int:
        return bisect.bisect_right(node.keys, key)

    def _insert_rec(
        self, pid: PageId, key: Key, value: Any
    ) -> Optional[Tuple[Key, PageId]]:
        node = self._load(pid)
        if node.leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
            else:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self._size += 1
            self._touch(pid, node)
            if len(node.keys) > self.capacity:
                return self._split_leaf(pid, node)
            return None
        idx = self._child_index(node, key)
        split = self._insert_rec(node.children[idx], key, value)
        if split is not None:
            sep, right_pid = split
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right_pid)
            self._touch(pid, node)
            if len(node.children) > self.capacity:
                return self._split_internal(pid, node)
        return None

    def _split_leaf(self, pid: PageId, node: _BNode) -> Tuple[Key, PageId]:
        mid = len(node.keys) // 2
        right = _BNode(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right_pid = self._new_node(right)
        node.next_leaf = right_pid
        self._touch(pid, node)
        return right.keys[0], right_pid

    def _split_internal(self, pid: PageId, node: _BNode) -> Tuple[Key, PageId]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _BNode(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        right_pid = self._new_node(right)
        self._touch(pid, node)
        return sep, right_pid

    # -- deletion internals ----------------------------------------------------------

    def _delete_rec(self, pid: PageId, key: Key) -> bool:
        node = self._load(pid)
        if node.leaf:
            i = bisect.bisect_left(node.keys, key)
            if i >= len(node.keys) or node.keys[i] != key:
                return False
            del node.keys[i]
            del node.values[i]
            self._touch(pid, node)
            return True
        idx = self._child_index(node, key)
        removed = self._delete_rec(node.children[idx], key)
        if removed:
            self._rebalance(pid, node, idx)
        return removed

    def _rebalance(self, pid: PageId, node: _BNode, idx: int) -> None:
        child_pid = node.children[idx]
        child = self._load(child_pid)
        underfull = (
            len(child.keys) < self._min_keys
            if child.leaf
            else len(child.children) < self._min_keys
        )
        if not underfull:
            return
        left_idx = idx - 1 if idx > 0 else None
        right_idx = idx + 1 if idx + 1 < len(node.children) else None

        if left_idx is not None:
            left_pid = node.children[left_idx]
            left = self._load(left_pid)
            if self._can_lend(left):
                self._borrow_from_left(node, left, child, left_idx, idx)
                self._touch(left_pid, left)
                self._touch(child_pid, child)
                self._touch(pid, node)
                return
        if right_idx is not None:
            right_pid = node.children[right_idx]
            right = self._load(right_pid)
            if self._can_lend(right):
                self._borrow_from_right(node, child, right, idx)
                self._touch(right_pid, right)
                self._touch(child_pid, child)
                self._touch(pid, node)
                return
        # Merge with a sibling.
        if left_idx is not None:
            left_pid = node.children[left_idx]
            left = self._load(left_pid)
            self._merge(node, left, child, left_idx)
            self._touch(left_pid, left)
            self.buffer.discard(child_pid)
            self.disk.free(child_pid)
        else:
            right_pid = node.children[right_idx]
            right = self._load(right_pid)
            self._merge(node, child, right, idx)
            self._touch(child_pid, child)
            self.buffer.discard(right_pid)
            self.disk.free(right_pid)
        self._touch(pid, node)

    def _can_lend(self, node: _BNode) -> bool:
        if node.leaf:
            return len(node.keys) > self._min_keys
        return len(node.children) > self._min_keys

    @staticmethod
    def _borrow_from_left(
        parent: _BNode, left: _BNode, child: _BNode, left_idx: int, idx: int
    ) -> None:
        if child.leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[left_idx] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[left_idx])
            parent.keys[left_idx] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    @staticmethod
    def _borrow_from_right(
        parent: _BNode, child: _BNode, right: _BNode, idx: int
    ) -> None:
        if child.leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    @staticmethod
    def _merge(
        parent: _BNode, left: _BNode, right: _BNode, left_key_idx: int
    ) -> None:
        """Fold ``right`` into ``left``; removes the separator from parent."""
        if left.leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_key_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_key_idx]
        del parent.children[left_key_idx + 1]

    # -- validation (used by tests) ---------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        count = self._walk(self.root_pid, None, None, is_root=True)
        assert count == self._size, f"size {self._size} != walked {count}"
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(set(keys)) == len(keys), "duplicate keys"

    def _walk(
        self, pid: PageId, lo: Optional[Key], hi: Optional[Key], is_root: bool
    ) -> int:
        node = self._load(pid)
        for key in node.keys:
            assert lo is None or key >= lo, "key below subtree bound"
            assert hi is None or key < hi, "key above subtree bound"
        assert node.keys == sorted(node.keys), "unsorted node"
        if node.leaf:
            if not is_root:
                assert len(node.keys) >= self._min_keys, "underfull leaf"
            assert len(node.keys) <= self.capacity, "overfull leaf"
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= self._min_keys, "underfull internal"
        assert len(node.children) <= self.capacity, "overfull internal"
        total = 0
        bounds = [lo] + node.keys + [hi]
        for i, child in enumerate(node.children):
            total += self._walk(child, bounds[i], bounds[i + 1], is_root=False)
        return total
