"""Disk-based B+-tree used as the scheduled-deletion queue (Section 3)."""

from .bptree import BPlusTree

__all__ = ["BPlusTree"]
