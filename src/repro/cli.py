"""Command-line interface for the reproduction.

::

    python -m repro figures fig13            # reproduce one figure
    python -m repro figures all --scale tiny # the whole evaluation
    python -m repro table1                   # workload parameter grid
    python -m repro workload --expt 120      # generate + summarize
    python -m repro compare                  # quick R^exp vs TPR duel
    python -m repro bulkload --scale small   # STR packing vs insertion
    python -m repro batch --queries 1000     # batched vs sequential queries
    python -m repro knn --k 10               # best-first kNN vs brute force
    python -m repro forest --partitions 2 4  # velocity-partitioned forest
    python -m repro profile                  # traced run: tails + events
    python -m repro layout --page-size 4096  # node fan-outs
    python -m repro persist out.d            # durable run: WAL + page file
    python -m repro recover out.d            # replay the WAL, audit, report
    python -m repro faultcheck --stride 4    # crash-at-every-write matrix
    python -m repro soak                     # chaos soak: serve through faults
    python -m repro soak --replica           # soak with failover to a replica
    python -m repro replicate                # WAL-shipped replica + promotion
    python -m repro shards --workers 1 2 4   # process-parallel sharded index
    python -m repro top --workers 2 --once   # live observability dashboard

Figure sweeps honour the same cache as the benchmarks.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.presets import forest_config, rexp_config, tpr_config
from .experiments.adapters import ForestAdapter, TreeAdapter
from .experiments.figures import ALL_FIGURES
from .experiments.report import format_checks, format_figure, shape_checks
from .experiments.runner import run_workload
from .experiments.scale import DEFAULT_SCALE, SCALES, Scale
from .obs import MetricsRegistry, Tracer
from .storage.layout import EntryLayout
from .workloads.expiration import FixedDistance, FixedPeriod, NeverExpire
from .workloads.network import NetworkParams, generate_network_workload
from .workloads.parameters import PAPER_PARAMETERS
from .workloads.uniform import UniformParams, generate_uniform_workload


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=DEFAULT_SCALE,
        help="experiment scale preset",
    )
    parser.add_argument(
        "--population", type=int, default=None,
        help="override the scale's target population",
    )
    parser.add_argument(
        "--insertions", type=int, default=None,
        help="override the scale's insertion count",
    )
    parser.add_argument("--seed", type=int, default=0)


def _resolve_scale(args: argparse.Namespace) -> Scale:
    base = SCALES[args.scale]
    population = args.population or base.target_population
    insertions = args.insertions or base.insertions
    if (population, insertions) == (base.target_population, base.insertions):
        return base
    return Scale(
        name=f"{base.name}-custom{population}x{insertions}",
        target_population=population,
        insertions=insertions,
        page_size=base.page_size,
        buffer_pages=base.buffer_pages,
        queue_buffer_pages=base.queue_buffer_pages,
    )


def _expiration_policy(args: argparse.Namespace):
    if getattr(args, "expd", None):
        return FixedDistance(args.expd)
    if getattr(args, "expt", None):
        return FixedPeriod(args.expt)
    if getattr(args, "no_expiry", False):
        return NeverExpire()
    return None


# -- subcommands --------------------------------------------------------------


def cmd_figures(args: argparse.Namespace) -> int:
    names = args.figures
    if names == ["all"]:
        names = sorted(ALL_FIGURES)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; "
              f"choose from {', '.join(sorted(ALL_FIGURES))} or 'all'",
              file=sys.stderr)
        return 2
    scale = _resolve_scale(args)
    failures = 0
    for name in names:
        figure = ALL_FIGURES[name](scale, seed=args.seed)
        print(format_figure(figure))
        if args.chart:
            from .experiments.plotting import ascii_chart

            print(ascii_chart(figure))
        checks = shape_checks(figure)
        if checks:
            print("shape checks:")
            print(format_checks(checks))
            failures += sum(1 for c in checks if not c.passed)
        print()
    return 1 if failures and args.strict else 0


def cmd_table1(args: argparse.Namespace) -> int:
    print("Table 1: Workload Parameters (standard values starred)")
    print(f"{'Parameter':<10} {'Description':<55} Values")
    for spec in PAPER_PARAMETERS:
        values = ", ".join(
            f"*{v:g}*" if v == spec.standard else f"{v:g}"
            for v in spec.values
        )
        print(f"{spec.name:<10} {spec.description:<55} {values}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(2.0 * args.ui)
    if args.kind == "network":
        workload = generate_network_workload(
            NetworkParams(
                target_population=scale.target_population,
                insertions=scale.insertions,
                update_interval=args.ui,
                new_object_fraction=args.newob,
                seed=args.seed,
            ),
            policy,
        )
    else:
        workload = generate_uniform_workload(
            UniformParams(
                target_population=scale.target_population,
                insertions=scale.insertions,
                update_interval=args.ui,
                seed=args.seed,
            ),
            policy,
        )
    workload.validate()
    if args.save:
        from .workloads.io import save_workload

        save_workload(workload, args.save)
        print(f"saved trace to {args.save}")
    duration = workload.ops[-1].time if workload.ops else 0.0
    print(f"workload {workload.name}")
    for key, value in sorted(workload.params.items()):
        print(f"  {key:<22} {value}")
    print(f"  {'operations':<22} {len(workload)}")
    print(f"  {'insertions':<22} {workload.insertion_count}")
    print(f"  {'queries':<22} {workload.query_count}")
    print(f"  {'duration (simulated)':<22} {duration:.1f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    workload = generate_network_workload(
        NetworkParams(
            target_population=scale.target_population,
            insertions=scale.insertions,
            update_interval=args.ui,
            seed=args.seed,
        ),
        policy,
    )
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    print(f"replaying {workload.name} at scale {scale.name} ...")
    results = []
    for i, (name, config) in enumerate((
        ("Rexp-tree", rexp_config(**sizing)),
        ("TPR-tree", tpr_config(**sizing)),
    )):
        tracer = Tracer() if args.trace_out else None
        durability = None
        if args.durability:
            durability = os.path.join(
                args.durability, name.lower().replace("^", "")
            )
        result = run_workload(TreeAdapter(name, config), workload,
                              tracer=tracer, durability=durability)
        if tracer is not None:
            tracer.export_jsonl(args.trace_out, append=i > 0,
                                extra={"adapter": name})
        results.append(result)
        print(result.summary())
    if results[0].avg_search_io > 0.0:
        ratio = results[1].avg_search_io / results[0].avg_search_io
        print(f"search I/O advantage of the R^exp-tree: {ratio:.2f}x")
    else:
        print("index fits entirely in the buffer pool at this scale; "
              "increase --population for a meaningful comparison")
    return 0


def cmd_forest(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    if args.kind == "network":
        workload = generate_network_workload(
            NetworkParams(
                target_population=scale.target_population,
                insertions=scale.insertions,
                update_interval=args.ui,
                seed=args.seed,
            ),
            policy,
        )
    else:
        workload = generate_uniform_workload(
            UniformParams(
                target_population=scale.target_population,
                insertions=scale.insertions,
                update_interval=args.ui,
                seed=args.seed,
            ),
            policy,
        )
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    print(f"replaying {workload.name} at scale {scale.name} ...")
    adapters = [("Rexp-tree", TreeAdapter("Rexp-tree", rexp_config(**sizing)))]
    for k in args.partitions:
        name = f"forest/{k} ({args.partitioner})"
        adapters.append((
            name,
            ForestAdapter(
                name,
                forest_config(
                    partitions=k, partitioner=args.partitioner, **sizing
                ),
            ),
        ))
    results = []
    for i, (name, adapter) in enumerate(adapters):
        tracer = Tracer() if args.trace_out else None
        result = run_workload(
            adapter, workload, verify=args.verify, prepopulate=True,
            tracer=tracer,
        )
        if tracer is not None:
            tracer.export_jsonl(args.trace_out, append=i > 0,
                                extra={"adapter": name})
        results.append(result)
        print(result.summary())
        if args.verify:
            print(f"  oracle mismatches: {result.oracle_mismatches}")
        if isinstance(adapter, ForestAdapter):
            forest = adapter.forest
            labels = forest.partition_labels()
            snaps = forest.partition_snapshots()
            pages = forest.partition_page_counts()
            for label, snap, page in zip(labels, snaps, pages):
                print(f"  {label:<24} pages={page:5d}  "
                      f"reads={snap.reads:7d}  writes={snap.writes:7d}")
    baseline = results[0]
    mismatched = sum(r.oracle_mismatches or 0 for r in results if args.verify)
    for result in results[1:]:
        if baseline.avg_search_io > 0.0 and result.avg_search_io > 0.0:
            ratio = baseline.avg_search_io / result.avg_search_io
            factor = ratio if ratio >= 1.0 else 1.0 / ratio
            direction = "lower" if ratio >= 1.0 else "HIGHER"
            print(f"{result.adapter}: search I/O {factor:.2f}x {direction} "
                  f"than the single tree")
    if baseline.avg_search_io == 0.0:
        print("index fits entirely in the buffer pool at this scale; "
              "increase --population for a meaningful comparison")
    return 1 if mismatched else 0


def _sum_metric(registry: MetricsRegistry, suffix: str) -> float:
    """Sum a metric over every scope (``tree.splits`` and
    ``partition<i>.tree.splits`` alike)."""
    total = 0
    for name in registry.names():
        if name == suffix or name.endswith("." + suffix):
            total += registry.get(name).value
    return total


def cmd_profile(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    if args.workload == "network":
        workload = generate_network_workload(
            NetworkParams(
                target_population=scale.target_population,
                insertions=scale.insertions,
                update_interval=args.ui,
                seed=args.seed,
            ),
            policy,
        )
    else:
        workload = generate_uniform_workload(
            UniformParams(
                target_population=scale.target_population,
                insertions=scale.insertions,
                update_interval=args.ui,
                seed=args.seed,
            ),
            policy,
        )
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    if args.index == "forest":
        adapter = ForestAdapter(
            "forest", forest_config(partitions=args.partitions, **sizing)
        )
        backing = adapter.forest
    elif args.index == "tpr":
        adapter = TreeAdapter("TPR-tree", tpr_config(**sizing))
        backing = adapter.tree
    else:
        adapter = TreeAdapter("Rexp-tree", rexp_config(**sizing))
        backing = adapter.tree

    registry = MetricsRegistry()
    tracer = Tracer()
    print(f"profiling {workload.name} at scale {scale.name} "
          f"on {adapter.name} ...")
    result = run_workload(
        adapter, workload, prepopulate=args.prepopulate,
        registry=registry, tracer=tracer,
    )
    print(result.summary())
    print()

    print(f"{'per-operation cost':<26}{'p50':>10}{'p95':>10}{'p99':>10}")
    print(f"{'  search I/O (pages)':<26}{result.search_io_p50:>10.0f}"
          f"{result.search_io_p95:>10.0f}{result.search_io_p99:>10.0f}")
    print(f"{'  update I/O (pages)':<26}{result.update_io_p50:>10.0f}"
          f"{result.update_io_p95:>10.0f}{result.update_io_p99:>10.0f}")
    print(f"{'  search latency (ms)':<26}"
          f"{result.search_latency_p50 * 1e3:>10.3f}"
          f"{result.search_latency_p95 * 1e3:>10.3f}"
          f"{result.search_latency_p99 * 1e3:>10.3f}")
    print(f"{'  update latency (ms)':<26}"
          f"{result.update_latency_p50 * 1e3:>10.3f}"
          f"{result.update_latency_p95 * 1e3:>10.3f}"
          f"{result.update_latency_p99 * 1e3:>10.3f}")
    print()

    print(f"buffer pool: hits={result.buffer_hits}  "
          f"misses={result.buffer_misses}  "
          f"evictions={result.buffer_evictions}  "
          f"hit rate={result.buffer_hit_rate:.1%}")
    print()

    print("structural events:")
    tallies = tracer.event_totals()
    if not tallies:
        print("  (none)")
    for name in sorted(tallies):
        line = f"  {name:<18}{tallies[name]:>8}"
        if name == "lazy_purge":
            line += (f"   entries purged: "
                     f"{_sum_metric(registry, 'tree.purged_leaf_entries'):.0f}")
        elif name == "subtree_dealloc":
            line += (f"   pages freed: "
                     f"{_sum_metric(registry, 'tree.purged_subtree_pages'):.0f}")
        elif name == "condense_drop":
            line += (f"   entries reinserted: "
                     f"{_sum_metric(registry, 'tree.condense_orphaned_entries'):.0f}")
        print(line)
    if tracer.dropped:
        print(f"  (ring buffer dropped {tracer.dropped} records)")
    print()

    print(f"slowest operations (top {args.top}):")
    for record in tracer.slowest_spans(args.top):
        attrs = record.get("attrs", {})
        detail = "  ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        print(f"  {record['name']:<14}{record['dur'] * 1e3:>9.3f} ms  {detail}")
    print()

    print("node occupancy by level:")
    occupancy = backing.level_occupancy()
    for level in sorted(occupancy, reverse=True):
        nodes, entries = occupancy[level]
        kind = "leaf" if level == 0 else "internal"
        avg = entries / nodes if nodes else 0.0
        print(f"  level {level} ({kind:<8}) {nodes:>6} nodes "
              f"{entries:>8} entries  avg {avg:5.1f}/node")

    if args.trace_out:
        n = tracer.export_jsonl(args.trace_out, extra={"adapter": adapter.name})
        print(f"\nwrote {n} trace records to {args.trace_out}")
    if args.metrics_out:
        registry.export_json(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    return 0


def cmd_bulkload(args: argparse.Namespace) -> int:
    import random
    import time

    from .core.clock import SimulationClock
    from .core.tree import MovingObjectTree
    from .experiments.runner import split_initial_population
    from .geometry.queries import TimesliceQuery
    from .geometry.rect import Rect

    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    workload = generate_uniform_workload(
        UniformParams(
            target_population=scale.target_population,
            insertions=scale.insertions,
            update_interval=args.ui,
            seed=args.seed,
        ),
        policy,
    )
    initial, _ = split_initial_population(workload)
    if not initial:
        print("workload produced no initial population", file=sys.stderr)
        return 2
    t_end = max(point.t_ref for _, point in initial)
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    print(f"population: {len(initial)} first reports "
          f"(uniform workload, scale {scale.name}, seed {args.seed})")

    def build(bulk: bool):
        clock = SimulationClock()
        tree = MovingObjectTree(rexp_config(**sizing), clock)
        start = time.perf_counter()
        if bulk:
            clock.advance_to(initial[0][1].t_ref)
            tree.bulk_load([(point, oid) for oid, point in initial])
        else:
            for oid, point in initial:
                clock.advance_to(point.t_ref)
                tree.insert(oid, point)
        wall = time.perf_counter() - start
        clock.advance_to(t_end)
        return tree, wall

    print(f"{'build':<14}{'wall (s)':>10}{'writes':>9}{'pages':>7}{'height':>7}")
    rows = []
    for label, bulk in (("insert-built", False), ("bulk-loaded", True)):
        tree, wall = build(bulk)
        rows.append((tree, wall))
        print(f"{label:<14}{wall:>10.3f}{tree.stats.writes:>9}"
              f"{tree.page_count:>7}{tree.height:>7}")
    (inserted, t_ins), (bulked, t_blk) = rows
    if t_blk > 0.0:
        print(f"build speedup: {t_ins / t_blk:.1f}x")
    rng = random.Random(args.seed + 1)
    mismatches = 0
    for _ in range(args.queries):
        x, y = rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)
        query = TimesliceQuery(
            Rect((x, y), (x + 100.0, y + 100.0)),
            t_end + rng.uniform(0.0, 30.0),
        )
        if sorted(inserted.query(query)) != sorted(bulked.query(query)):
            mismatches += 1
    status = "identical" if mismatches == 0 else f"{mismatches} MISMATCHED"
    print(f"query check: {args.queries} timeslice queries, {status} answers")
    return 1 if mismatches else 0


def cmd_batch(args: argparse.Namespace) -> int:
    import random
    import time

    from .core.clock import SimulationClock
    from .core.forest import PartitionedMovingObjectForest
    from .core.tree import MovingObjectTree
    from .experiments.runner import split_initial_population
    from .geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
    from .geometry.rect import Rect

    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    workload = generate_uniform_workload(
        UniformParams(
            target_population=scale.target_population,
            insertions=scale.insertions,
            update_interval=args.ui,
            seed=args.seed,
        ),
        policy,
    )
    initial, _ = split_initial_population(workload)
    if not initial:
        print("workload produced no initial population", file=sys.stderr)
        return 2
    t_end = max(point.t_ref for _, point in initial)
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)

    rng = random.Random(args.seed + 1)

    def make_query():
        x, y = rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)
        rect = Rect((x, y), (x + 100.0, y + 100.0))
        kind = rng.randrange(3)
        if kind == 0:
            return TimesliceQuery(rect, t_end + rng.uniform(0.0, 30.0))
        t1 = t_end + rng.uniform(0.0, 20.0)
        if kind == 1:
            return WindowQuery(rect, t1, t1 + rng.uniform(0.0, 10.0))
        x2, y2 = rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)
        rect2 = Rect((x2, y2), (x2 + 100.0, y2 + 100.0))
        return MovingQuery(rect, rect2, t1, t1 + rng.uniform(0.0, 10.0))

    queries = [make_query() for _ in range(args.queries)]
    print(f"population: {len(initial)} first reports, "
          f"{len(queries)} mixed queries (scale {scale.name}, "
          f"seed {args.seed})")

    def build_tree():
        clock = SimulationClock()
        tree = MovingObjectTree(rexp_config(**sizing), clock)
        clock.advance_to(initial[0][1].t_ref)
        tree.bulk_load([(point, oid) for oid, point in initial])
        clock.advance_to(t_end)
        return tree

    def build_forest():
        clock = SimulationClock()
        forest = PartitionedMovingObjectForest(
            forest_config(partitions=args.partitions, **sizing), clock
        )
        clock.advance_to(initial[0][1].t_ref)
        forest.insert_batch([(oid, point) for oid, point in initial])
        clock.advance_to(t_end)
        return forest

    print(f"{'index':<10}{'sequential (s)':>16}{'batched (s)':>14}"
          f"{'speedup':>9}{'answers':>9}")
    mismatches = 0
    for label, index in (("tree", build_tree()), ("forest", build_forest())):
        start = time.perf_counter()
        sequential = [index.query(query) for query in queries]
        t_seq = time.perf_counter() - start
        start = time.perf_counter()
        batched = index.query_batch(queries)
        t_bat = time.perf_counter() - start
        bad = sum(1 for a, b in zip(sequential, batched) if a != b)
        mismatches += bad
        speedup = t_seq / t_bat if t_bat > 0.0 else float("inf")
        status = "equal" if bad == 0 else f"{bad} DIFFER"
        print(f"{label:<10}{t_seq:>16.3f}{t_bat:>14.3f}{speedup:>8.1f}x"
              f"{status:>9}")
    if mismatches:
        print(f"batched answers differ from sequential on {mismatches} "
              f"queries", file=sys.stderr)
        return 1
    print("batched answers identical to sequential on both indexes")
    return 0


def cmd_knn(args: argparse.Namespace) -> int:
    import random
    import shutil
    import tempfile
    import time

    from .core.clock import SimulationClock
    from .core.forest import PartitionedMovingObjectForest
    from .core.tree import MovingObjectTree
    from .experiments.runner import split_initial_population
    from .geometry.knn import brute_force_knn

    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    workload = generate_uniform_workload(
        UniformParams(
            target_population=scale.target_population,
            insertions=scale.insertions,
            update_interval=args.ui,
            seed=args.seed,
        ),
        policy,
    )
    initial, _ = split_initial_population(workload)
    if not initial:
        print("workload produced no initial population", file=sys.stderr)
        return 2
    t_end = max(point.t_ref for _, point in initial)
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    entries = [(point, oid) for oid, point in initial]

    rng = random.Random(args.seed + 1)
    probes = [
        (
            (rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)),
            t_end + rng.uniform(0.0, 30.0),
        )
        for _ in range(args.queries)
    ]
    print(f"population: {len(initial)} first reports, "
          f"{len(probes)} kNN probes at k={args.k} "
          f"(scale {scale.name}, seed {args.seed})")

    oracle = [brute_force_knn(entries, x, t, args.k) for x, t in probes]

    def build_tree():
        clock = SimulationClock()
        tree = MovingObjectTree(rexp_config(**sizing), clock)
        clock.advance_to(initial[0][1].t_ref)
        tree.bulk_load(entries)
        clock.advance_to(t_end)
        return tree

    def build_forest():
        clock = SimulationClock()
        forest = PartitionedMovingObjectForest(
            forest_config(partitions=args.partitions, **sizing), clock
        )
        clock.advance_to(initial[0][1].t_ref)
        forest.insert_batch([(oid, point) for oid, point in initial])
        clock.advance_to(t_end)
        return forest

    indexes = [("tree", build_tree()), ("forest", build_forest())]
    base = None
    if args.workers:
        from .shard import ShardConfig, ShardedForest

        base = tempfile.mkdtemp(prefix="repro-knn-")
        sharded = ShardedForest.create(
            base,
            ShardConfig(
                workers=args.workers,
                tree=rexp_config(**sizing),
                space=1000.0,
            ),
        )
        sharded.clock.advance_to(initial[0][1].t_ref)
        sharded.bulk_load(entries)
        sharded.clock.advance_to(t_end)
        indexes.append((f"sharded/{args.workers}", sharded))

    print(f"{'index':<12}{'wall (s)':>10}{'answers':>10}")
    mismatches = 0
    try:
        for label, index in indexes:
            start = time.perf_counter()
            got = [index.knn_entries(x, t, args.k) for x, t in probes]
            wall = time.perf_counter() - start
            bad = sum(1 for a, b in zip(got, oracle) if a != b)
            mismatches += bad
            status = "exact" if bad == 0 else f"{bad} DIFFER"
            print(f"{label:<12}{wall:>10.3f}{status:>10}")
    finally:
        if base is not None:
            indexes[-1][1].close()
            shutil.rmtree(base, ignore_errors=True)
    if mismatches:
        print("kNN answers differ from the brute-force oracle",
              file=sys.stderr)
        return 1
    print("every kNN answer bit-identical to the brute-force oracle "
          "(distances, membership and tie order)")
    return 0


def _sniff_tree_config(directory: str, buffer_pages: int):
    """Rebuild a tree configuration from a durable store's header."""
    from .core.config import TreeConfig
    from .geometry.bounding import BoundingKind
    from .storage.pagefile import read_header

    header = read_header(directory)
    return TreeConfig(
        page_size=header.page_size,
        dims=header.dims,
        buffer_pages=buffer_pages,
        bounding=(
            BoundingKind.NEAR_OPTIMAL
            if header.store_velocities
            else BoundingKind.STATIC
        ),
        store_br_expiration=header.store_br_expiration,
        store_leaf_expiration=header.store_leaf_expiration,
        lazy_expiry=header.store_leaf_expiration,
    )


def cmd_persist(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args)
    policy = _expiration_policy(args) or FixedPeriod(120.0)
    workload = generate_uniform_workload(
        UniformParams(
            target_population=scale.target_population,
            insertions=scale.insertions,
            update_interval=args.ui,
            seed=args.seed,
        ),
        policy,
    )
    sizing = dict(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    if args.index == "forest":
        adapter = ForestAdapter(
            "forest", forest_config(partitions=args.partitions, **sizing)
        )
    else:
        adapter = TreeAdapter("Rexp-tree", rexp_config(**sizing))
    print(f"replaying {workload.name} durably into {args.directory} ...")
    result = run_workload(
        adapter, workload, prepopulate=args.prepopulate,
        durability=args.directory,
    )
    print(result.summary())
    total = 0
    for root, _, files in os.walk(args.directory):
        for name in sorted(files):
            path = os.path.join(root, name)
            size = os.path.getsize(path)
            total += size
            print(f"  {os.path.relpath(path, args.directory):<24}"
                  f"{size:>12,} bytes")
    print(f"durable store: {total:,} bytes, "
          f"WAL I/O charged as auxiliary: {result.auxiliary_io} writes")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from .core.forest import (
        MANIFEST_FILENAME,
        ForestConfig,
        PartitionedMovingObjectForest,
    )
    from .core.tree import MovingObjectTree
    from .obs import MetricsRegistry

    registry = MetricsRegistry()
    manifest = os.path.join(args.directory, MANIFEST_FILENAME)
    if os.path.exists(manifest):
        member0 = PartitionedMovingObjectForest.member_directory(
            args.directory, 0
        )
        tree_config = _sniff_tree_config(member0, args.buffer_pages)
        import json

        with open(manifest, "r", encoding="utf-8") as handle:
            partitions = json.load(handle)["partitions"]
        config = ForestConfig(
            tree=tree_config, partitions=partitions, split_buffer=False
        )
        forest = PartitionedMovingObjectForest.open_from(
            args.directory, config, registry=registry
        )
        trees = forest.trees
        audit = forest.audit()
        pages = forest.page_count
        clock_time = forest.clock.time
        index = forest
    else:
        config = _sniff_tree_config(args.directory, args.buffer_pages)
        tree = MovingObjectTree.open_from(
            args.directory, config, registry=registry
        )
        trees = [tree]
        audit = tree.audit()
        pages = tree.page_count
        clock_time = tree.clock.time
        index = tree
    print(f"recovered {args.directory} (clock {clock_time:g})")
    for i, tree in enumerate(trees):
        report = tree.disk.recovery
        label = f"member{i}: " if len(trees) > 1 else ""
        print(f"  {label}scanned={report.records_scanned}  "
              f"commits={report.commits_applied}  "
              f"pages={report.pages_replayed}  "
              f"frees={report.frees_replayed}  "
              f"skipped-expired={report.wal_skipped_expired}  "
              f"torn-bytes={report.torn_bytes}  "
              f"op-seq={report.op_seq}")
    print(f"  audit: {audit.nodes} nodes, {audit.leaf_entries} leaf entries "
          f"({audit.expired_fraction:.1%} expired), {pages} pages")
    if args.checkpoint:
        index.checkpoint()
        print("  checkpointed: WAL truncated")
    index.close()
    return 0


def cmd_faultcheck(args: argparse.Namespace) -> int:
    from .core.config import TreeConfig
    from .experiments.faultcheck import default_workload, run_faultcheck

    workload = default_workload(insertions=args.insertions, seed=args.seed)
    config = TreeConfig(
        page_size=args.page_size, buffer_pages=args.buffer_pages
    )
    print(f"crash matrix over {len(workload.ops)} ops "
          f"(stride {args.stride}, modes {', '.join(args.modes)}) ...")

    ticks = [0]

    def progress(outcome) -> None:
        ticks[0] += 1
        if not outcome.ok:
            print(f"  FAIL write {outcome.write_index} ({outcome.mode}): "
                  f"{outcome.detail}")
        elif ticks[0] % 100 == 0:
            print(f"  ... {ticks[0]} crash points checked")

    report = run_faultcheck(
        workload=workload, config=config, stride=args.stride,
        modes=args.modes, seed=args.seed, progress=progress,
    )
    print(report.summary())
    return 0 if report.passed else 1


def cmd_soak(args: argparse.Namespace) -> int:
    import json

    from .experiments.soak import (
        FaultScript,
        default_fault_script,
        default_soak_params,
        run_soak,
        write_report,
    )

    if args.script is not None:
        with open(args.script, "r", encoding="utf-8") as handle:
            script = FaultScript.from_json(json.load(handle))
    else:
        script = default_fault_script(seed=args.seed)
    params = default_soak_params(seed=script.seed, insertions=args.insertions)
    tracer = Tracer() if args.trace else None
    print(f"chaos soak: {params.insertions} insertions, "
          f"script seed {script.seed} "
          f"(kill at write {script.kill_at_write}, "
          f"{len(script.transient_writes)} transient writes, "
          f"{args.subscriptions} standing queries) ...")
    scenario = None
    if args.replica:
        from .experiments.soak import default_replica_scenario

        scenario = default_replica_scenario()
        print(f"  replication: poll every {scenario.poll_every} requests, "
              f"WAL soft limit {scenario.wal_soft_limit} B, "
              f"channel faults at transfers "
              f"{list(scenario.channel_transients)} (transient) and "
              f"{scenario.channel_torn_at} (torn)")
    report = run_soak(
        script, params=params, tracer=tracer,
        subscriptions=args.subscriptions, replica=scenario,
    )
    print(report.summary())
    if report.replication:
        r = report.replication
        print(f"  replication: {r['promotions']:.0f} promotion(s), "
              f"{r['applied_batches']:.0f}/{r['shipped_batches']:.0f} "
              f"batches applied, staleness max {r['max_staleness']:.2f}s "
              f"(budget {r['staleness_budget']:.0f}s), "
              f"{r['truncation_cycles']:.0f} truncation cycles, "
              f"{r['spills']:.0f} spills, "
              f"{r['channel_faults']:.0f} channel faults, "
              f"footprint high water {r['footprint_high_water']:.0f} B")
    if report.subscriptions:
        s = report.subscriptions
        print(f"  standing queries: {s['subscriptions']} subs, "
              f"{s['adds']} adds, {s['removes']} removes, "
              f"{s['expirations']} expirations, {s['delivered']} deltas "
              f"delivered, {s['dropped']} dropped")
    for violation in report.violations:
        print(f"  SLO violation: {violation}")
    write_report(report, args.out)
    print(f"wrote {args.out}")
    if tracer is not None and args.trace:
        count = tracer.export_jsonl(args.trace)
        print(f"wrote {args.trace} ({count} records)")
    return 0 if report.passed else 1


def cmd_replicate(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from .core.clock import SimulationClock
    from .core.config import TreeConfig
    from .core.tree import MovingObjectTree
    from .replication import (
        OnlineMaintainer,
        Replica,
        ReplicaLink,
        ShippingChannel,
        WalShipper,
    )
    from .storage.faults import FaultInjector
    from .workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp

    params = NetworkParams(
        target_population=max(args.insertions // 4, 16),
        insertions=args.insertions,
        seed=args.seed,
    )
    workload = generate_network_workload(params)
    config = TreeConfig(
        page_size=args.page_size, buffer_pages=args.buffer_pages
    )
    registry = MetricsRegistry()
    base = tempfile.mkdtemp(prefix="repro-replicate-")
    try:
        tree = MovingObjectTree.create_durable(
            os.path.join(base, "primary"), config, SimulationClock()
        )
        shipper = WalShipper(tree.disk.directory, registry=registry)
        follower = Replica.bootstrap(
            tree.disk, shipper, os.path.join(base, "replica"),
            registry=registry,
        )
        channel_injector = None
        if args.torn_at or args.transients:
            channel_injector = FaultInjector(
                crash_at_write=args.torn_at or None, mode="torn",
                seed=args.seed + 77,
                transient_writes=tuple(args.transients),
            )
        channel = ShippingChannel(
            shipper, injector=channel_injector, registry=registry
        )
        maintainer = OnlineMaintainer(
            tree.disk, wal_soft_limit=args.wal_soft_limit, registry=registry
        )
        link = ReplicaLink(
            channel, follower, maintainer,
            promote_config=config, registry=registry,
            poll_every=args.poll_every,
        )
        print(f"replicating {len(workload.ops)} ops "
              f"({args.insertions} insertions, poll every "
              f"{args.poll_every} ops) ...")
        queries = []
        for op in workload.ops:
            tree.clock.advance_to(op.time)
            if isinstance(op, InsertOp):
                tree.insert(op.oid, op.point)
            elif isinstance(op, UpdateOp):
                tree.update(op.oid, op.old_point, op.new_point)
            elif isinstance(op, DeleteOp):
                tree.delete(op.oid, op.point)
            elif isinstance(op, QueryOp):
                queries.append(op.query)
            link.tick()
        link.tick(force=True)

        answers = [sorted(tree.query(q)) for q in queries]
        mismatches = sum(
            1 for q, want in zip(queries, answers)
            if follower.query(q) != want
        )
        batched = follower.query_batch(queries)
        mismatches += sum(
            1 for got, want in zip(batched, answers) if got != want
        )
        centre = (params.space / 2.0, params.space / 2.0)
        knn_want = tree.query_knn(centre, tree.clock.time, 8)
        if follower.knn(centre, tree.clock.time, 8) != knn_want:
            mismatches += 1
        print(f"  parity: {len(queries)} queries + batch + knn, "
              f"{mismatches} mismatches")
        print(f"  shipping: cursor {shipper.acked}, lag "
              f"{shipper.lag_batches()} batches, "
              f"{registry.value('replication.channel_faults'):.0f} channel "
              f"faults, {registry.value('replication.spills'):.0f} spills")
        print(f"  maintenance: {maintainer.cycles} truncation cycles, "
              f"primary WAL {maintainer.wal_bytes()} B, footprint high "
              f"water {link.footprint_high_water} B")
        print(f"  staleness: max {link.max_staleness:.2f}s over "
              f"{link.polls} polls")
        failed = mismatches > 0
        if not args.no_promote:
            committed = tree.disk.op_seq
            want_final = [sorted(tree.query(q)) for q in queries[-8:]]
            tree.disk.abandon()
            promoted, _injector = link.failover()
            lost = committed - promoted.disk.op_seq
            got_final = [sorted(promoted.query(q)) for q in queries[-8:]]
            ok = lost == 0 and got_final == want_final
            print(f"  failover: promoted at op_seq {promoted.disk.op_seq} "
                  f"({lost} committed batches lost), answer parity "
                  f"{'OK' if ok else 'FAILED'}")
            promoted.close()
            failed = failed or not ok
        else:
            tree.close()
        if link.replica is not None:
            link.replica.close()
        return 1 if failed else 0
    finally:
        shutil.rmtree(base, ignore_errors=True)


def cmd_shards(args: argparse.Namespace) -> int:
    import shutil
    import tempfile
    import time as _time

    from .core.clock import SimulationClock
    from .core.tree import MovingObjectTree
    from .shard import ShardConfig, ShardedForest
    from .workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp

    scale = _resolve_scale(args)
    ui = args.ui
    policy = _expiration_policy(args) or FixedPeriod(2.0 * ui)
    params = NetworkParams(
        target_population=scale.target_population,
        insertions=scale.insertions,
        update_interval=ui,
        queries_per_insertions=args.queries,
        seed=args.seed,
    )
    workload = generate_network_workload(params, policy)
    tree_config = rexp_config(
        page_size=scale.page_size,
        buffer_pages=scale.buffer_pages,
        default_ui=ui,
    )
    print(f"network workload: {len(workload.ops)} ops "
          f"({scale.insertions} insertions, population "
          f"{scale.target_population})")

    expected = None
    if args.verify:
        clock = SimulationClock()
        oracle = MovingObjectTree(tree_config, clock)
        expected = {}
        for index, op in enumerate(workload.ops):
            clock.advance_to(op.time)
            if isinstance(op, InsertOp):
                oracle.insert(op.oid, op.point)
            elif isinstance(op, UpdateOp):
                oracle.update(op.oid, op.old_point, op.new_point)
            elif isinstance(op, DeleteOp):
                oracle.delete(op.oid, op.point)
            elif isinstance(op, QueryOp):
                expected[index] = sorted(oracle.query(op.query))

    base = args.directory or tempfile.mkdtemp(prefix="repro-shards-")
    print(f"{'workers':>7} {'wall s':>8} {'ops/s':>9} {'capacity/s':>11} "
          f"{'busiest s':>9} {'batches':>8}")
    failures = 0
    for workers in args.workers:
        config = ShardConfig(
            workers=workers,
            tree=tree_config,
            partitioner=args.partitioner,
            max_speed=max(params.speed_groups),
            space=params.space,
            reach=max(params.speed_groups) * policy.period
            if isinstance(policy, FixedPeriod) else None,
            batch_ops=args.batch_ops,
        )
        directory = os.path.join(base, f"w{workers}")
        forest = ShardedForest.create(directory, config)
        try:
            result = forest.apply_ops(workload.ops)
        finally:
            forest.close()
        capacity = result.ops / max(result.model_makespan_seconds, 1e-9)
        print(f"{workers:>7} {result.wall_seconds:>8.2f} "
              f"{result.ops / max(result.wall_seconds, 1e-9):>9.0f} "
              f"{capacity:>11.0f} "
              f"{max(result.shard_busy_seconds, default=0.0):>9.2f} "
              f"{result.batches:>8}")
        if expected is not None:
            mismatches = sum(
                1 for index, answer in expected.items()
                if sorted(result.answers.get(index, [])) != answer
            )
            if mismatches:
                failures += 1
                print(f"        VERIFY FAILED: {mismatches} of "
                      f"{len(expected)} answers differ from the oracle")
            else:
                print(f"        verified: {len(expected)} scatter-gather "
                      f"answers identical to the single-tree oracle")
    if args.directory is None:
        shutil.rmtree(base, ignore_errors=True)
    return 1 if failures else 0


def _top_bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _render_top(records, registry, slo_statuses, heading) -> None:
    from .obs.export import latency_breakdown, shard_shares

    print(heading)
    shares = shard_shares(records)
    if shares:
        print("  shard load share (worker wall time)")
        for shard in sorted(shares):
            frac = shares[shard]
            print(f"    shard {shard:<3} {_top_bar(frac)} {frac * 100:5.1f}%")
    queue_s = 0.0
    if registry is not None:
        wait = registry.get("serve.queue_wait")
        queue_s = getattr(wait, "total", 0.0) or 0.0
    breakdown = latency_breakdown(records, queue_s=queue_s)
    total = breakdown["total_s"]
    if total > 0:
        print("  latency breakdown (cumulative)")
        stages = (
            ("queue", "queue_s"),
            ("router", "router_s"),
            ("wire", "wire_s"),
            ("worker-cpu", "worker_cpu_s"),
            ("worker-io", "worker_io_s"),
        )
        for label, key in stages:
            seconds = breakdown[key]
            print(f"    {label:<11} {seconds * 1e3:9.3f} ms "
                  f"{_top_bar(seconds / total)} {seconds / total * 100:5.1f}%")
        print(f"    {'total':<11} {total * 1e3:9.3f} ms   "
              f"(worker wall raw "
              f"{breakdown['worker_wall_raw_s'] * 1e3:.3f} ms)")
    if registry is not None:
        hits = registry.value("buffer.hits")
        misses = registry.value("buffer.misses")
        if hits or misses:
            rate = hits / (hits + misses)
            print(f"  buffer pool: hit rate {rate * 100:5.1f}%  "
                  f"(hits {hits:.0f}, misses {misses:.0f}, evictions "
                  f"{registry.value('buffer.evictions'):.0f})")
        if registry.get("replication.polls") is not None:
            promoted_at = registry.value("replication.last_promotion_time")
            line = (
                f"  replication: staleness "
                f"{registry.value('replication.staleness_seconds'):.2f}s  "
                f"cursor lag "
                f"{registry.value('replication.cursor_lag_batches'):.0f} "
                f"batches  promotions "
                f"{registry.value('replication.promotions'):.0f}"
            )
            if promoted_at:
                line += f"  last promoted at t={promoted_at:.1f}"
            print(line)
    for status in slo_statuses:
        state = "OK  " if status["met"] else "MISS"
        print(f"  SLO {status['name']:<13} {state} "
              f"ratio {status['ratio']:.3f} vs target "
              f"{status['target']:.3f}  "
              f"budget {status['budget_remaining'] * 100:6.1f}% left  "
              f"burn {status['burn_rate']:.2f}")


def cmd_top(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from .obs.export import (
        MetricsSnapshotter, accumulate, read_snapshots,
    )
    from .obs.slo import SLOTracker, check_slos, default_serve_slos
    from .obs.trace import read_jsonl
    from .shard import ShardConfig, ShardedForest
    from .workloads.base import QueryOp

    if args.from_trace or args.from_metrics:
        records = read_jsonl(args.from_trace) if args.from_trace else []
        registry = None
        statuses = []
        if args.from_metrics:
            registry = accumulate(read_snapshots(args.from_metrics))
            tracker = SLOTracker(registry, default_serve_slos())
            statuses = [
                s for s in tracker.to_dict().values()
                if s["good"] or s["bad"]
            ]
        _render_top(records, registry, statuses,
                    "repro top — from artifacts")
        return 0

    ui = 60.0
    params = NetworkParams(
        target_population=max(args.insertions // 4, 16),
        insertions=args.insertions,
        update_interval=ui,
        queries_per_insertions=args.queries,
        seed=args.seed,
    )
    workload = generate_network_workload(params, FixedPeriod(2.0 * ui))
    tree_config = rexp_config(page_size=2048, buffer_pages=64, default_ui=ui)
    registry = MetricsRegistry()
    tracer = Tracer(capacity=65536)
    tracker = SLOTracker(registry, default_serve_slos())
    rounds = 1 if args.once else args.rounds
    config = ShardConfig(
        workers=args.workers,
        tree=tree_config,
        max_speed=max(params.speed_groups),
        space=params.space,
        reach=max(params.speed_groups) * 2.0 * ui,
        batch_ops=args.batch_ops,
        flush_every=1,
    )
    base = tempfile.mkdtemp(prefix="repro-top-")
    snapper = None
    if args.snapshots:
        snapper = MetricsSnapshotter(registry, args.snapshots,
                                     interval_s=1e-9)
    forest = ShardedForest.create(
        base, config, registry=registry, tracer=tracer
    )
    try:
        ops = workload.ops
        size = max(1, (len(ops) + rounds - 1) // rounds)
        for round_no in range(rounds):
            chunk = ops[round_no * size:(round_no + 1) * size]
            if not chunk and round_no:
                break
            plain = [op for op in chunk if not isinstance(op, QueryOp)]
            queries = [op.query for op in chunk if isinstance(op, QueryOp)]
            if plain:
                forest.apply_ops(plain)
            try:
                answers = forest.query_batch(queries)
                registry.counter("serve.queries_ok").inc(len(answers))
            except Exception:
                registry.counter("serve.failed_queries").inc(len(queries))
                raise
            tracker.checkpoint()
            live = forest.live_registry()
            if snapper is not None:
                snapper.registry = live
                snapper.snapshot()
            _, statuses = check_slos(tracker)
            _render_top(
                tracer.records(), live, statuses,
                f"repro top — round {round_no + 1}/{rounds} "
                f"({args.workers} workers, {len(plain)} ops, "
                f"{len(queries)} queries)",
            )
    finally:
        forest.close()
        shutil.rmtree(base, ignore_errors=True)
    if args.trace_out:
        tracer.export_jsonl(args.trace_out)
    return 0


def cmd_layout(args: argparse.Namespace) -> int:
    print(f"{'configuration':<42} {'leaf':>6} {'internal':>9}")
    combos = [
        ("TPBRs with velocities + expiration times", True, True),
        ("TPBRs with velocities, no expiration times", True, False),
        ("static TPBRs + expiration times", False, True),
        ("static TPBRs, no expiration times", False, False),
    ]
    for label, velocities, expiration in combos:
        layout = EntryLayout(
            page_size=args.page_size,
            dims=args.dims,
            store_velocities=velocities,
            store_br_expiration=expiration,
        )
        print(f"{label:<42} {layout.leaf_capacity:>6} "
              f"{layout.internal_capacity:>9}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the R^exp-tree (Saltenis & Jensen, "
        "ICDE 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="reproduce the paper's figures")
    p.add_argument("figures", nargs="+",
                   help="figure ids (fig9..fig16) or 'all'")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any shape check misses")
    p.add_argument("--chart", action="store_true",
                   help="also render an ASCII chart per figure")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("table1", help="print the workload parameter grid")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("workload", help="generate a workload and summarize it")
    p.add_argument("--kind", choices=("network", "uniform"), default="network")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--no-expiry", action="store_true")
    p.add_argument("--newob", type=float, default=0.0)
    p.add_argument("--save", metavar="PATH", default=None,
                   help="write the generated trace to a JSONL file")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_workload)

    p = sub.add_parser("compare", help="R^exp-tree vs TPR-tree on one workload")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--trace-out", metavar="FILE.jsonl", default=None,
                   help="append both runs' span/event traces as JSON Lines")
    p.add_argument("--durability", metavar="DIR", default=None,
                   help="run each tree on a durable page store under DIR "
                   "(write-ahead-log I/O reported as auxiliary)")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "bulkload",
        help="STR bulk loading vs repeated insertion on one population",
    )
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--queries", type=int, default=20,
                   help="timeslice queries compared across both trees")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_bulkload)

    p = sub.add_parser(
        "batch",
        help="cross-query batched traversal vs sequential queries",
    )
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--queries", type=int, default=1000,
                   help="queries answered both ways and compared")
    p.add_argument("--partitions", type=int, default=4,
                   help="velocity classes in the forest comparison")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "knn",
        help="best-first k-nearest-neighbor search vs a brute-force oracle",
    )
    p.add_argument("--k", type=int, default=10,
                   help="neighbors returned per probe")
    p.add_argument("--queries", type=int, default=200,
                   help="kNN probes answered and verified")
    p.add_argument("--partitions", type=int, default=4,
                   help="velocity classes in the forest comparison")
    p.add_argument("--workers", type=int, default=0,
                   help="also run a sharded index with this many workers")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_knn)

    p = sub.add_parser(
        "forest",
        help="velocity-partitioned forest vs a single R^exp-tree",
    )
    p.add_argument("--kind", choices=("uniform", "network"), default="uniform")
    p.add_argument("--partitions", type=int, nargs="+", default=[4],
                   help="forest sizes to compare against the single tree")
    p.add_argument("--partitioner", choices=("speed", "direction"),
                   default="speed")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--verify", action="store_true",
                   help="check every answer against a brute-force oracle")
    p.add_argument("--trace-out", metavar="FILE.jsonl", default=None,
                   help="append every run's span/event trace as JSON Lines")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_forest)

    p = sub.add_parser(
        "profile",
        help="traced run: I/O and latency tails, structural events, "
        "buffer hit rate, node occupancy",
    )
    p.add_argument("--workload", choices=("uniform", "network"),
                   default="uniform")
    p.add_argument("--index", choices=("rexp", "tpr", "forest"),
                   default="rexp")
    p.add_argument("--partitions", type=int, default=4,
                   help="forest size (with --index forest)")
    p.add_argument("--prepopulate", action="store_true",
                   help="bulk-load the initial population instead of "
                   "replaying it as insertions")
    p.add_argument("--top", type=int, default=10,
                   help="slowest operations to list")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--trace-out", metavar="FILE.jsonl", default=None,
                   help="write the span/event trace as JSON Lines")
    p.add_argument("--metrics-out", metavar="FILE.json", default=None,
                   help="write the metrics registry as JSON")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("layout", help="node fan-outs for a page size")
    p.add_argument("--page-size", type=int, default=4096)
    p.add_argument("--dims", type=int, default=2)
    p.set_defaults(func=cmd_layout)

    p = sub.add_parser(
        "persist",
        help="replay a workload on a durable page store (WAL + page file)",
    )
    p.add_argument("directory", help="target directory for the durable store")
    p.add_argument("--index", choices=("rexp", "forest"), default="rexp")
    p.add_argument("--partitions", type=int, default=4,
                   help="forest size (with --index forest)")
    p.add_argument("--prepopulate", action="store_true",
                   help="bulk-load the initial population")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_persist)

    p = sub.add_parser(
        "recover",
        help="open a durable store, replaying its write-ahead log",
    )
    p.add_argument("directory", help="durable store to open")
    p.add_argument("--buffer-pages", type=int, default=50)
    p.add_argument("--checkpoint", action="store_true",
                   help="checkpoint after recovery (truncates the WAL)")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "faultcheck",
        help="crash a durable replay at every Nth write and verify recovery",
    )
    p.add_argument("--insertions", type=int, default=60,
                   help="insertions in the generated crash workload")
    p.add_argument("--stride", type=int, default=1,
                   help="check every Nth physical write")
    p.add_argument("--modes", nargs="+", default=["kill", "torn", "bitflip"],
                   choices=("kill", "torn", "bitflip"))
    p.add_argument("--page-size", type=int, default=512)
    p.add_argument("--buffer-pages", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_faultcheck)

    p = sub.add_parser(
        "soak",
        help="chaos soak: serve a workload through a scheduled fault script",
    )
    p.add_argument("--insertions", type=int, default=2000,
                   help="insertions in the generated network workload")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the default fault script and workload")
    p.add_argument("--script", default=None,
                   help="JSON fault-script file (overrides the default)")
    p.add_argument("--subscriptions", type=int, default=0,
                   help="standing queries maintained (and verified) "
                   "through the chaos run")
    p.add_argument("--replica", action="store_true",
                   help="run the replication chaos scenario: a WAL-shipped "
                   "replica tails the primary and the kill is answered by "
                   "promotion instead of reopen")
    p.add_argument("--out", default="BENCH_soak.json",
                   help="report JSON path")
    p.add_argument("--trace", default=None,
                   help="also write a JSONL trace of serving events")
    p.set_defaults(func=cmd_soak)

    p = sub.add_parser(
        "replicate",
        help="WAL-shipped read replica: tail a live primary through a "
        "faulty channel, verify parity, promote, verify zero loss",
    )
    p.add_argument("--insertions", type=int, default=400,
                   help="insertions in the generated network workload")
    p.add_argument("--poll-every", type=int, default=8,
                   help="operations between replica shipping polls")
    p.add_argument("--wal-soft-limit", type=int, default=16 * 1024,
                   help="primary WAL bytes arming an online truncation")
    p.add_argument("--torn-at", type=int, default=7,
                   help="shipping transfer that dies mid-send (0 disables)")
    p.add_argument("--transients", type=int, nargs="*", default=[3],
                   help="1-based shipping transfers that fail transiently")
    p.add_argument("--page-size", type=int, default=1024)
    p.add_argument("--buffer-pages", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-promote", action="store_true",
                   help="skip the final failover exercise")
    p.set_defaults(func=cmd_replicate)

    p = sub.add_parser(
        "shards",
        help="process-parallel sharded index: scatter-gather replay "
        "with per-worker durable stores",
    )
    p.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                   help="worker counts to replay (one run each)")
    p.add_argument("--partitioner", choices=("grid", "speed", "direction"),
                   default="grid")
    p.add_argument("--batch-ops", type=int, default=256,
                   help="operations per wire batch")
    p.add_argument("--queries", type=int, default=100,
                   help="queries per 100 insertions (paper's parameter)")
    p.add_argument("--ui", type=float, default=60.0)
    p.add_argument("--expt", type=float, default=None)
    p.add_argument("--expd", type=float, default=None)
    p.add_argument("--verify", action="store_true",
                   help="check answers against a single-tree oracle")
    p.add_argument("--directory", default=None,
                   help="keep the shard stores here (default: temp dir)")
    _add_scale_arguments(p)
    p.set_defaults(func=cmd_shards)

    p = sub.add_parser(
        "top",
        help="observability dashboard: shard load share, latency "
        "breakdown, buffer hit rates and SLO budgets",
    )
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker processes for the live run")
    p.add_argument("--rounds", type=int, default=5,
                   help="dashboard refresh rounds over the workload")
    p.add_argument("--once", action="store_true",
                   help="render a single round and exit (CI smoke)")
    p.add_argument("--insertions", type=int, default=400,
                   help="insertions in the generated network workload")
    p.add_argument("--queries", type=int, default=50,
                   help="queries per 100 insertions")
    p.add_argument("--batch-ops", type=int, default=128,
                   help="operations per wire batch")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--snapshots", default=None,
                   help="write per-round metrics snapshots (JSONL) here")
    p.add_argument("--trace-out", default=None,
                   help="write the run's span records (JSONL) here")
    p.add_argument("--from-trace", default=None,
                   help="render from a trace JSONL instead of a live run")
    p.add_argument("--from-metrics", default=None,
                   help="render from a metrics snapshot JSONL "
                   "(combinable with --from-trace)")
    p.set_defaults(func=cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
