"""The shard router: scatter-gather serving over worker processes.

:class:`ShardedForest` is the parent-side face of the sharded index.
It spawns one :mod:`~repro.shard.worker` process per shard, routes
every report through a pure :class:`~repro.core.partition.Partitioner`
(so deletions reach the shard their insertion chose without a routing
table), scatters queries to the shards whose partition can intersect
them, and gathers the merged answer.  The interface mirrors the
in-process forest — ``insert`` / ``delete`` / ``update`` / ``query`` /
``bulk_load`` / ``snapshot`` / ``checkpoint`` / ``close`` — so it drops
behind :class:`~repro.serve.frontend.ServiceFrontend` unchanged, and
adds :meth:`ShardedForest.apply_ops`, the pipelined batch driver that
amortizes IPC across operations (the benchmark hot path).

Failure semantics are deliberately simple.  A worker that dies (or
stops answering within the request timeout) marks its shard *down* and
raises :class:`ShardCrashError` — a
:class:`~repro.storage.faults.TransientIOError`, so the serving
frontend's retry machinery applies as-is.  The next operation touching
a down shard first revives it: the worker respawns over its durable
directory and WAL recovery restores every committed batch.  Requests
the dead incarnation never acknowledged are *not* replayed by the
router (per-operation commits make partial application ambiguous);
redelivery belongs to the caller, exactly as it does for the
frontend's single-store crash path.  All waits are bounded — a crashed
worker can fail an operation, never hang the router.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time as _time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.clock import SimulationClock
from ..core.config import TreeConfig
from ..core.forest import (
    ForestConfig,
    _partitioner_from_manifest,
    _partitioner_manifest,
)
from ..core.partition import Partitioner, make_partitioner
from ..core.tree import TreeAudit
from ..geometry.bounding import BoundingKind
from ..geometry.intersection import region_matches_point
from ..geometry.kinematics import MovingPoint
from ..geometry.knn import validate_knn_args
from ..geometry.queries import SpatioTemporalQuery
from ..storage.faults import TransientIOError
from ..storage.stats import IOSnapshot
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext
from ..workloads.base import (
    DeleteOp,
    InsertOp,
    KnnOp,
    Operation,
    QueryOp,
    UpdateOp,
)
from .wire import OpCodec
from .worker import WorkerSpec, worker_main

#: File name of the shard manifest inside a sharded-index directory.
MANIFEST_FILENAME = "shards.json"


class ShardError(Exception):
    """Base class for shard-layer failures."""


class ShardCrashError(TransientIOError, ShardError):
    """A worker process died or stopped answering.

    Subclasses :class:`~repro.storage.faults.TransientIOError` so the
    serving frontend treats it as a retryable storage fault; the shard
    revives (with WAL recovery) on the next operation that touches it.
    """


class ShardWorkerError(ShardError):
    """A worker reported an exception while serving a request."""


@dataclass(frozen=True)
class ShardConfig:
    """Tunable parameters of :class:`ShardedForest`.

    Parameters
    ----------
    workers : int
        Number of shard worker processes.
    tree : TreeConfig
        Base member-tree configuration; the buffer budget divides
        across workers exactly as the in-process forest divides it
        (``split_buffer``), so a k-shard index and a single tree are
        compared on equal total buffer.
    partitioner : str
        Routing function kind: ``"grid"``, ``"speed"`` or
        ``"direction"``.
    max_speed, slow_speed, space, reach : float
        Partitioner knobs, matching
        :func:`repro.core.partition.make_partitioner`; ``reach`` (drift
        bound) enables grid query pruning when finite.
    split_buffer : bool
        Divide ``tree.buffer_pages`` across workers (on, the fair
        comparison) or give every worker the full budget.
    fsync : bool
        Whether worker write-ahead logs fsync on commit.
    observability : bool
        Run a metrics registry in every worker; exports merge in the
        parent via :meth:`ShardedForest.registry_snapshot`.
    flush_every : int
        Workers piggyback their full registry export on every Nth
        apply acknowledgement, keeping :meth:`ShardedForest.live_registry`
        current without explicit stats gathers (0 disables).
    batch_ops : int
        Maximum operations per wire batch in :meth:`ShardedForest.apply_ops`.
    window : int
        In-flight batches per shard before the router blocks on an ack.
    request_timeout : float
        Wall seconds to wait for any single reply before declaring the
        worker dead.
    join_timeout : float
        Wall seconds :meth:`ShardedForest.close` waits per worker
        before escalating to kill.
    """

    workers: int = 2
    tree: TreeConfig = field(default_factory=TreeConfig)
    partitioner: str = "grid"
    max_speed: float = 3.0
    slow_speed: float = 0.25
    space: float = 1000.0
    reach: Optional[float] = None
    split_buffer: bool = True
    fsync: bool = False
    observability: bool = True
    flush_every: int = 8
    batch_ops: int = 256
    window: int = 2
    request_timeout: float = 120.0
    join_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        if self.batch_ops < 1:
            raise ValueError(f"batch_ops must be >= 1, got {self.batch_ops}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def member_tree_config(self, index: int) -> TreeConfig:
        """Worker ``index``'s tree configuration (buffer share applied)."""
        forest = ForestConfig(
            tree=self.tree,
            partitions=self.workers,
            split_buffer=self.split_buffer,
        )
        return forest.member_tree_config(index)

    def with_(self, **changes) -> "ShardConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ShardRunResult:
    """What one :meth:`ShardedForest.apply_ops` replay measured.

    Attributes
    ----------
    answers : dict
        Per query: the operation's index in the input sequence mapped
        to its merged oid list (shard-order concatenation).
    ops : int
        Operations applied.
    failed_deletes : int
        Deletions (including update-deletes) that found no live entry.
    batches : int
        Wire batches sent.
    scattered_queries : int
        Per-shard query executions (equals queries times the mean
        scatter width; with pruning it can be below queries x shards).
    wall_seconds : float
        End-to-end wall time of the replay in the router.
    blocked_seconds : float
        Wall time the router spent waiting on worker replies.
    router_cpu_seconds : float
        CPU seconds the router process spent during the replay
        (routing, encoding, decoding answers) — its critical-path work
        regardless of how the host schedules the worker processes.
    shard_busy_seconds : list of float
        Per-shard worker busy time in CPU seconds (decode plus apply),
        as reported in every batch acknowledgement.
    """

    answers: Dict[int, List[int]] = field(default_factory=dict)
    ops: int = 0
    failed_deletes: int = 0
    batches: int = 0
    scattered_queries: int = 0
    wall_seconds: float = 0.0
    blocked_seconds: float = 0.0
    router_cpu_seconds: float = 0.0
    shard_busy_seconds: List[float] = field(default_factory=list)

    @property
    def router_seconds(self) -> float:
        """Router-side critical-path work (alias of the CPU measure)."""
        return self.router_cpu_seconds

    @property
    def model_makespan_seconds(self) -> float:
        """Modeled makespan with one core per worker.

        The sequential router's CPU work plus the busiest shard's CPU
        work: on a host with at least one core per worker the shards
        run concurrently, so the replay cannot finish before the router
        is done routing nor before the slowest worker is done applying.
        All terms are per-process CPU seconds, so the model is
        scheduler-independent — on a single core the processes
        time-slice and ``wall_seconds`` stays near the *sum* of all
        terms, while on a multi-core host wall converges to this span.
        """
        busiest = max(self.shard_busy_seconds, default=0.0)
        return self.router_cpu_seconds + busiest


class GatheredSnapshot:
    """Leaf entries gathered from every shard at one instant.

    The sharded counterpart of
    :class:`~repro.core.tree.TreeSnapshot` for degraded reads: a plain
    in-memory entry set answering queries by brute-force scan through
    the same expiration-clipping predicate the trees use.
    """

    __slots__ = ("entries", "taken_at")

    def __init__(self, entries: Sequence[Tuple[MovingPoint, int]], taken_at: float):
        self.entries = list(entries)
        self.taken_at = taken_at

    def leaf_entries(self):
        """Iterate over all gathered ``(point, oid)`` leaf entries."""
        return iter(self.entries)

    @property
    def leaf_entry_count(self) -> int:
        """Number of gathered leaf entries."""
        return len(self.entries)

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Answer a query by scanning the gathered entries."""
        region = query.region()
        return [
            oid for point, oid in self.entries
            if region_matches_point(region, point)
        ]


class _Shard:
    """Parent-side state of one worker: process, pipe, sequencing."""

    __slots__ = (
        "index", "directory", "process", "conn", "sent_seq", "acked_seq",
        "down", "inflight",
    )

    def __init__(self, index: int, directory: str):
        self.index = index
        self.directory = directory
        self.process = None
        self.conn = None
        self.sent_seq = 0
        self.acked_seq = 0
        self.down = True
        #: FIFO of (seq, metas) for pipelined apply batches.
        self.inflight: List[tuple] = []


def _tree_config_manifest(config: TreeConfig) -> dict:
    """Serialize a tree configuration for the shard manifest."""
    payload = {
        fname: getattr(config, fname)
        for fname in config.__dataclass_fields__
    }
    payload["bounding"] = config.bounding.name
    return payload


def _tree_config_from_manifest(payload: dict) -> TreeConfig:
    """Rebuild a tree configuration from its manifest form."""
    fields_ = dict(payload)
    fields_["bounding"] = BoundingKind[fields_["bounding"]]
    return TreeConfig(**fields_)


class ShardedForest:
    """N worker processes, one durable member tree each, one router.

    Build with :meth:`create` (fresh directory) or :meth:`open`
    (existing directory, WAL recovery per shard).  The constructor
    itself only wires state; it does not spawn workers.
    """

    def __init__(
        self,
        directory: str,
        config: ShardConfig,
        partitioner: Partitioner,
        clock: Optional[SimulationClock] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        if partitioner.partitions != config.workers:
            raise ValueError(
                f"partitioner has {partitioner.partitions} buckets but the "
                f"configuration asks for {config.workers} workers"
            )
        self.directory = directory
        self.config = config
        self.partitioner = partitioner
        self.clock = clock if clock is not None else SimulationClock()
        self.codec = OpCodec(config.tree.dims)
        self._mp = multiprocessing.get_context("spawn")
        self._shards = [
            _Shard(i, self.shard_directory(directory, i))
            for i in range(config.workers)
        ]
        self._closed = False
        #: Router-side observability (both optional; None = no-op path).
        self._registry = registry
        self._tracer = tracer
        self._trace_seq = 0
        #: Latest full stats payload per shard index, replaced wholesale
        #: on every piggybacked flush or explicit gather — replacement
        #: (not accumulation) of cumulative exports is what makes
        #: repeated flushes idempotent.
        self._worker_exports: Dict[int, dict] = {}
        if registry is not None:
            registry.gauge("shards.workers").set(config.workers)

    # -- construction --------------------------------------------------------

    @staticmethod
    def shard_directory(directory: str, index: int) -> str:
        """Path of shard ``index``'s page-store directory."""
        return os.path.join(directory, f"shard{index}")

    @classmethod
    def create(
        cls,
        directory: str,
        config: Optional[ShardConfig] = None,
        partitioner: Optional[Partitioner] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> "ShardedForest":
        """Create a fresh sharded index and spawn its workers.

        ``registry`` / ``tracer`` attach router-side observability;
        with a tracer, workers spawn with tracing on and every
        scatter-gather reassembles into one cross-process span tree.
        """
        config = config if config is not None else ShardConfig()
        if partitioner is None:
            partitioner = make_partitioner(
                config.partitioner,
                config.workers,
                max_speed=config.max_speed,
                slow_speed=config.slow_speed,
                space=config.space,
                reach=config.reach,
            )
        os.makedirs(directory, exist_ok=True)
        forest = cls(
            directory, config, partitioner, registry=registry, tracer=tracer
        )
        forest._write_manifest()
        for shard in forest._shards:
            forest._spawn(shard, recover=False)
        return forest

    @classmethod
    def open(
        cls,
        directory: str,
        config: Optional[ShardConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> "ShardedForest":
        """Reopen a sharded index; every worker runs WAL recovery."""
        path = os.path.join(directory, MANIFEST_FILENAME)
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("version") != 1:
            raise ValueError(
                f"unsupported shard manifest version "
                f"{manifest.get('version')!r}"
            )
        stored = ShardConfig(
            workers=manifest["workers"],
            tree=_tree_config_from_manifest(manifest["tree"]),
            partitioner=manifest["partitioner"]["kind"],
            fsync=manifest["fsync"],
        )
        if config is None:
            config = stored
        elif config.workers != stored.workers:
            raise ValueError(
                f"configuration asks for {config.workers} workers but the "
                f"manifest records {stored.workers}"
            )
        else:
            config = config.with_(tree=stored.tree)
        partitioner = _partitioner_from_manifest(manifest["partitioner"])
        forest = cls(
            directory, config, partitioner, registry=registry, tracer=tracer
        )
        for shard in forest._shards:
            forest._spawn(shard, recover=True)
        return forest

    def _write_manifest(self) -> None:
        manifest = {
            "version": 1,
            "workers": self.config.workers,
            "partitioner": _partitioner_manifest(self.partitioner),
            "tree": _tree_config_manifest(self.config.tree),
            "fsync": self.config.fsync,
        }
        path = os.path.join(self.directory, MANIFEST_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, shard: _Shard, recover: bool) -> None:
        spec = WorkerSpec(
            index=shard.index,
            directory=shard.directory,
            config=self.config.member_tree_config(shard.index),
            recover=recover,
            fsync=self.config.fsync,
            observability=self.config.observability,
            tracing=self._tracer is not None,
            flush_every=self.config.flush_every,
        )
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, spec),
            daemon=True,
            name=f"repro-shard{shard.index}",
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.sent_seq = 0
        shard.acked_seq = 0
        shard.inflight = []
        shard.down = False

    def _reap(self, shard: _Shard) -> None:
        """Tear down a shard's process and pipe without waiting long."""
        if shard.conn is not None:
            shard.conn.close()
            shard.conn = None
        process = shard.process
        if process is not None:
            process.join(timeout=0.2)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - terminate suffices
                    process.kill()
                    process.join(timeout=1.0)
            shard.process = None
        shard.inflight = []
        shard.down = True

    def _fail(self, shard: _Shard, reason: str) -> None:
        self._reap(shard)
        raise ShardCrashError(
            f"shard {shard.index} worker died ({reason}); the shard "
            f"revives with WAL recovery on its next operation"
        )

    def _ensure_alive(self, shard: _Shard) -> None:
        if self._closed:
            raise ShardError("sharded forest is closed")
        if shard.down:
            self._spawn(shard, recover=True)
        elif shard.process is not None and not shard.process.is_alive():
            self._fail(shard, "process exited")

    # -- request plumbing ----------------------------------------------------

    def _send(self, shard: _Shard, verb: str, *parts) -> int:
        self._ensure_alive(shard)
        shard.sent_seq += 1
        seq = shard.sent_seq
        try:
            shard.conn.send((verb, seq, *parts))
        except (BrokenPipeError, OSError):
            self._fail(shard, "pipe broken on send")
        return seq

    def _recv(
        self, shard: _Shard, timeout: float, blocked: Optional[List[float]]
    ) -> tuple:
        waited = _time.perf_counter()
        try:
            ready = shard.conn.poll(timeout)
        except (BrokenPipeError, OSError):
            self._fail(shard, "pipe broken while waiting")
        if blocked is not None:
            blocked[0] += _time.perf_counter() - waited
        if not ready:
            self._fail(shard, f"no reply within {timeout:g}s")
        try:
            reply = shard.conn.recv()
        except (EOFError, OSError):
            self._fail(shard, "pipe closed mid-reply")
        return reply

    def _await(
        self,
        shard: _Shard,
        seq: int,
        timeout: Optional[float] = None,
        blocked: Optional[List[float]] = None,
    ) -> tuple:
        """Wait for the reply to ``seq``, discarding stale replies.

        Stale replies (sequence numbers below ``seq``) exist only after
        an aborted scatter left acknowledgements unconsumed; their
        effects are already applied, so they are dropped here — after
        absorbing their observability extras, which remain valid.
        """
        timeout = timeout if timeout is not None else self.config.request_timeout
        while True:
            reply = self._recv(shard, timeout, blocked)
            status, got = reply[0], reply[1]
            if got > seq:  # pragma: no cover - per-shard FIFO protocol
                self._fail(shard, f"reply {got} overtook request {seq}")
            shard.acked_seq = got
            if status == "err":
                raise ShardWorkerError(
                    f"shard {shard.index} request failed:\n{reply[2]}"
                )
            if len(reply) == 6:  # an apply acknowledgement
                self._absorb(shard, reply)
            if got == seq:
                return reply
            # got < seq: stale acknowledgement from an aborted scatter.

    def _absorb(self, shard: _Shard, reply: tuple) -> None:
        """Fold an apply acknowledgement's observability into the router.

        Busy seconds feed the per-shard load counters; shipped span
        records are adopted into the router's tracer (re-parented under
        the wire trace context's parent span — the fan-out span that
        stamped the batch — and labelled with the shard index); a
        piggybacked stats flush *replaces* the shard's stored export,
        so re-absorbing the same cumulative flush never double-counts.
        """
        registry = self._registry
        if registry is not None:
            registry.counter(f"shards.shard{shard.index}.busy_s").inc(reply[3])
            registry.counter("shards.batches").inc()
        extras = reply[5]
        if not extras:
            return
        spans = extras.get("spans")
        if spans and self._tracer is not None:
            ctx = extras.get("ctx")
            parent = ctx[1] if ctx is not None and ctx[1] else None
            self._tracer.adopt(
                spans, parent_id=parent, extra_attrs={"shard": shard.index}
            )
        stats = extras.get("stats")
        if stats is not None:
            self._worker_exports[shard.index] = stats

    def _request(
        self, shard: _Shard, verb: str, *parts, timeout: Optional[float] = None
    ) -> tuple:
        """One synchronous request/reply exchange with a shard."""
        seq = self._send(shard, verb, *parts)
        return self._await(shard, seq, timeout=timeout)

    def _apply_sync(self, shard_index: int, ops: List[Operation]) -> int:
        """Apply a small batch synchronously; return failed deletions."""
        shard = self._shards[shard_index]
        payload = self.codec.encode_ops(ops)
        reply = self._request(shard, "apply", payload)
        return reply[4]

    # -- the forest-like interface -------------------------------------------

    @property
    def partitions(self) -> int:
        """Number of shards (mirrors the in-process forest's property)."""
        return self.config.workers

    @property
    def now(self) -> float:
        """Current router clock time."""
        return self.clock.time

    def local_stores(self) -> list:
        """No parent-process page stores: shard stores live in workers.

        The serving frontend uses this hook to learn that commit and
        op-sequence bookkeeping happen inside the workers.
        """
        return []

    def insert(self, oid: int, point: MovingPoint) -> None:
        """Index a report in its shard (synchronous round trip)."""
        index = self.partitioner.partition_of(point)
        self._apply_sync(index, [InsertOp(self.clock.time, oid, point)])

    def delete(self, oid: int, point: MovingPoint) -> bool:
        """Remove a report from the shard its insertion chose."""
        index = self.partitioner.partition_of(point)
        failed = self._apply_sync(
            index, [DeleteOp(self.clock.time, oid, point)]
        )
        return failed == 0

    def update(
        self, oid: int, old_point: MovingPoint, new_point: MovingPoint
    ) -> bool:
        """Delete the old report and insert the new one.

        Routes as one shard-local update when both halves share a
        shard, and as a cross-shard migration (delete there, insert
        here) otherwise.
        """
        old_shard = self.partitioner.partition_of(old_point)
        new_shard = self.partitioner.partition_of(new_point)
        if old_shard == new_shard:
            failed = self._apply_sync(
                old_shard,
                [UpdateOp(self.clock.time, oid, old_point, new_point)],
            )
            return failed == 0
        existed = self.delete(oid, old_point)
        self.insert(oid, new_point)
        return existed

    def _begin_trace(self, root) -> TraceContext:
        """Mint a trace id for one fan-out and stamp its root span."""
        self._trace_seq += 1
        trace_id = self._trace_seq
        root.set(trace_id=trace_id)
        return TraceContext(trace_id, root.span_id)

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Scatter a query to the reachable shards and gather answers.

        The scatter is issued to every target before the first answer
        is collected, so shards execute concurrently; answers merge in
        shard order (each object lives in exactly one shard, so
        concatenation preserves the single-tree answer multiset).
        With a router tracer attached, the whole fan-out runs under a
        ``shards.query`` span whose trace id rides the wire batches;
        the workers' shipped spans are adopted under it, so one query
        yields one reassembled cross-process span tree.
        """
        if self._tracer is None:
            return self._query_impl(query, None, None, None)
        with self._tracer.span("shards.query") as root:
            trace = self._begin_trace(root)
            enc, blocked = [0.0], [0.0]
            results = self._query_impl(query, trace, enc, blocked)
            root.set(encode_s=enc[0], wait_s=blocked[0], results=len(results))
        return results

    def _query_impl(
        self,
        query: SpatioTemporalQuery,
        trace: Optional[TraceContext],
        enc: Optional[List[float]],
        blocked: Optional[List[float]],
    ) -> List[int]:
        targets = self.partitioner.query_partitions(query.region())
        op = QueryOp(self.clock.time, query)
        if enc is None:
            payload = self.codec.encode_ops([op])
        else:
            t0 = _time.perf_counter()
            payload = self.codec.encode_ops([op], trace=trace)
            enc[0] += _time.perf_counter() - t0
        pending: List[Tuple[_Shard, int]] = []
        for index in targets:
            shard = self._shards[index]
            pending.append((shard, self._send(shard, "apply", payload)))
        results: List[int] = []
        for shard, seq in pending:
            reply = self._await(shard, seq, blocked=blocked)
            for _, oids in self.codec.decode_answers(reply[2]):
                results.extend(oids)
        return results

    def query_batch(
        self, queries: Sequence[SpatioTemporalQuery]
    ) -> List[List[int]]:
        """Answer K queries with one wire batch per reachable shard.

        Instead of K independent scatters, every shard receives the
        queries that reach it as packed ``apply`` batches (chunked at
        ``config.batch_ops``, riding the same pipelined in-flight
        window as :meth:`apply_ops`); each worker answers its chunk in
        one shared traversal via
        :meth:`~repro.core.tree.MovingObjectTree.query_batch`.  Every
        query's answer is assembled in *that query's own*
        ``query_partitions`` order, which is exactly the merge order of
        :meth:`query` — so the answers are bit-identical (including
        order) to ``[self.query(q) for q in queries]``.

        Under tracing, the whole batch shares one ``shards.query_batch``
        span (and one trace id across all its wire batches).
        """
        if not queries:
            return []
        if self._tracer is None:
            return self._query_batch_impl(queries, None, None, None)
        with self._tracer.span("shards.query_batch") as root:
            trace = self._begin_trace(root)
            enc, blocked = [0.0], [0.0]
            answers = self._query_batch_impl(queries, trace, enc, blocked)
            root.set(
                encode_s=enc[0], wait_s=blocked[0], queries=len(queries)
            )
        return answers

    def _query_batch_impl(
        self,
        queries: Sequence[SpatioTemporalQuery],
        trace: Optional[TraceContext],
        enc: Optional[List[float]],
        blocked: Optional[List[float]],
    ) -> List[List[int]]:
        time = self.clock.time
        targets = [
            self.partitioner.query_partitions(query.region())
            for query in queries
        ]
        buffers: List[List[Operation]] = [[] for _ in self._shards]
        metas: List[List[int]] = [[] for _ in self._shards]
        for position, (query, reach) in enumerate(zip(queries, targets)):
            op = QueryOp(time, query)
            for index in reach:
                buffers[index].append(op)
                metas[index].append(position)
        parts: List[Dict[int, List[int]]] = [{} for _ in queries]

        def consume(shard: _Shard) -> None:
            seq, batch_metas = shard.inflight[0]
            reply = self._await(shard, seq, blocked=blocked)
            shard.inflight.pop(0)
            for offset, oids in self.codec.decode_answers(reply[2]):
                parts[batch_metas[offset]][shard.index] = oids

        limit = self.config.batch_ops
        for index, shard in enumerate(self._shards):
            for start in range(0, len(buffers[index]), limit):
                chunk = buffers[index][start:start + limit]
                if enc is None:
                    payload = self.codec.encode_ops(chunk)
                else:
                    t0 = _time.perf_counter()
                    payload = self.codec.encode_ops(chunk, trace=trace)
                    enc[0] += _time.perf_counter() - t0
                seq = self._send(shard, "apply", payload)
                shard.inflight.append(
                    (seq, metas[index][start:start + limit])
                )
                while len(shard.inflight) > self.config.window:
                    consume(shard)
        for shard in self._shards:
            while shard.inflight:
                consume(shard)
        return [
            [
                oid
                for index in targets[position]
                for oid in parts[position][index]
            ]
            for position in range(len(queries))
        ]

    def query_knn(self, x: Sequence[float], t: float, k: int) -> List[int]:
        """The ``k`` objects nearest to ``x`` at time ``t``, nearest first.

        Scatters a kNN record to every shard *sequentially*, tightening
        the shared squared-distance bound between shards: once ``k``
        candidates are held, the running k-th distance rides the next
        shard's wire record as its ``bound_sq`` cutoff, so later shards
        prune their descents against everything earlier shards found.
        The merged answer is bit-identical (distances, membership and
        tie order) to a single-tree descent over the union population.

        Parameters
        ----------
        x : sequence of float
            The query location (``config.tree.dims`` coordinates).
        t : float
            The evaluation time; objects whose expiration precedes
            ``t`` are invisible.
        k : int
            The number of neighbors to return.

        Returns
        -------
        list of int
            At most ``k`` object ids, ascending by
            ``(squared distance, oid)``.
        """
        return [oid for _, oid in self.knn_entries(x, t, k)]

    def knn_entries(
        self,
        x: Sequence[float],
        t: float,
        k: int,
        bound_sq: float = math.inf,
    ) -> List[Tuple[float, int]]:
        """kNN with distances: ``(squared distance, oid)`` pairs, ascending.

        The scatter-side primitive behind :meth:`query_knn`; ``bound_sq``
        is an optional externally-known cutoff (candidates strictly
        farther are never returned).  Under tracing the whole scatter
        runs beneath one ``shards.query_knn`` span.

        Parameters
        ----------
        x : sequence of float
            The query location.
        t : float
            The evaluation time.
        k : int
            The number of neighbors to return.
        bound_sq : float, optional
            Squared-distance cutoff; defaults to unbounded.

        Returns
        -------
        list of (float, int)
            At most ``k`` ``(squared distance, oid)`` pairs, ascending.
        """
        validate_knn_args(tuple(x), t, k, self.config.tree.dims)
        x = tuple(float(c) for c in x)
        if k == 0:
            return []
        if self._tracer is None:
            return self._knn_impl(x, t, k, bound_sq, None, None)
        with self._tracer.span("shards.query_knn") as root:
            root.set(k=k)
            trace = self._begin_trace(root)
            blocked = [0.0]
            best = self._knn_impl(x, t, k, bound_sq, trace, blocked)
            root.set(wait_s=blocked[0], results=len(best))
        return best

    def _knn_impl(
        self,
        x: Tuple[float, ...],
        t: float,
        k: int,
        bound_sq: float,
        trace: Optional[TraceContext],
        blocked: Optional[List[float]],
    ) -> List[Tuple[float, int]]:
        best: List[Tuple[float, int]] = []
        for shard in self._shards:
            op = KnnOp(self.clock.time, x, t, k, bound_sq)
            payload = self.codec.encode_ops([op], trace=trace)
            seq = self._send(shard, "apply", payload)
            reply = self._await(shard, seq, blocked=blocked)
            _, scored = self.codec.decode_answer_frame(reply[2])
            for _, pairs in scored:
                best.extend(pairs)
            best.sort()
            del best[k:]
            if len(best) == k:
                bound_sq = min(bound_sq, best[-1][0])
        return best

    def bulk_load(self, entries: Sequence[Tuple[MovingPoint, int]]) -> None:
        """Partition a population and STR-pack every shard's tree."""
        groups = self.partitioner.split(entries)
        pending: List[Tuple[_Shard, int]] = []
        for shard, group in zip(self._shards, groups):
            payload = self.codec.encode_entries(group)
            pending.append((
                shard,
                self._send(shard, "bulk", self.clock.time, payload),
            ))
        for shard, seq in pending:
            self._await(shard, seq, timeout=10 * self.config.request_timeout)

    # -- batched replay ------------------------------------------------------

    def apply_ops(
        self,
        ops: Sequence[Operation],
        batch_ops: Optional[int] = None,
    ) -> ShardRunResult:
        """Replay an operation stream through per-shard wire batches.

        Operations are routed into per-shard buffers and flushed as
        packed batches of up to ``batch_ops`` records; up to
        ``config.window`` batches ride in flight per shard before the
        router blocks on an acknowledgement, so shards decode and apply
        while the router keeps routing — the IPC-amortized hot path.
        A query joins the pending batch of every shard it scatters to
        (order within each shard is preserved, so every query sees
        exactly the writes that precede it in the stream), and its
        merged answer is assembled from the per-shard acknowledgements
        at the end of the replay.

        Under tracing, the whole replay shares one ``shards.apply_ops``
        span and one trace id across every wire batch it sends.
        """
        if self._tracer is None:
            return self._apply_ops_impl(ops, batch_ops, None, None)
        with self._tracer.span("shards.apply_ops") as root:
            trace = self._begin_trace(root)
            enc = [0.0]
            result = self._apply_ops_impl(ops, batch_ops, trace, enc)
            root.set(
                ops=result.ops,
                batches=result.batches,
                encode_s=enc[0],
                wait_s=result.blocked_seconds,
            )
        return result

    def _apply_ops_impl(
        self,
        ops: Sequence[Operation],
        batch_ops: Optional[int],
        trace: Optional[TraceContext],
        enc: Optional[List[float]],
    ) -> ShardRunResult:
        limit = batch_ops if batch_ops is not None else self.config.batch_ops
        result = ShardRunResult(shard_busy_seconds=[0.0] * self.partitions)
        started = _time.perf_counter()
        cpu_started = _time.process_time()
        blocked = [0.0]
        buffers: List[List[Operation]] = [[] for _ in self._shards]
        metas: List[List[Optional[int]]] = [[] for _ in self._shards]
        #: query op index -> {shard index -> answer part}
        parts: Dict[int, Dict[int, List[int]]] = {}

        def consume(shard: _Shard) -> None:
            seq, batch_metas = shard.inflight[0]
            reply = self._await(shard, seq, blocked=blocked)
            shard.inflight.pop(0)
            result.shard_busy_seconds[shard.index] += reply[3]
            result.failed_deletes += reply[4]
            for position, oids in self.codec.decode_answers(reply[2]):
                parts[batch_metas[position]][shard.index] = oids

        def flush(index: int) -> None:
            if not buffers[index]:
                return
            shard = self._shards[index]
            if enc is None:
                payload = self.codec.encode_ops(buffers[index])
            else:
                t0 = _time.perf_counter()
                payload = self.codec.encode_ops(buffers[index], trace=trace)
                enc[0] += _time.perf_counter() - t0
            seq = self._send(shard, "apply", payload)
            shard.inflight.append((seq, metas[index]))
            buffers[index] = []
            metas[index] = []
            result.batches += 1
            while len(shard.inflight) > self.config.window:
                consume(shard)

        def enqueue(index: int, op: Operation, query_index: Optional[int]) -> None:
            buffers[index].append(op)
            metas[index].append(query_index)
            if len(buffers[index]) >= limit:
                flush(index)

        for op_index, op in enumerate(ops):
            self.clock.advance_to(op.time)
            if isinstance(op, InsertOp):
                enqueue(self.partitioner.partition_of(op.point), op, None)
            elif isinstance(op, DeleteOp):
                enqueue(self.partitioner.partition_of(op.point), op, None)
            elif isinstance(op, UpdateOp):
                old_shard = self.partitioner.partition_of(op.old_point)
                new_shard = self.partitioner.partition_of(op.new_point)
                if old_shard == new_shard:
                    enqueue(old_shard, op, None)
                else:
                    enqueue(
                        old_shard,
                        DeleteOp(op.time, op.oid, op.old_point),
                        None,
                    )
                    enqueue(
                        new_shard,
                        InsertOp(op.time, op.oid, op.new_point),
                        None,
                    )
            elif isinstance(op, QueryOp):
                targets = self.partitioner.query_partitions(op.query.region())
                parts[op_index] = {}
                result.scattered_queries += len(targets)
                for index in targets:
                    enqueue(index, op, op_index)
            else:
                raise TypeError(f"cannot route operation {op!r}")
            result.ops += 1
        for index in range(self.partitions):
            flush(index)
        for shard in self._shards:
            while shard.inflight:
                consume(shard)
        result.answers = {
            op_index: [
                oid
                for shard_index in sorted(shard_parts)
                for oid in shard_parts[shard_index]
            ]
            for op_index, shard_parts in parts.items()
        }
        result.wall_seconds = _time.perf_counter() - started
        result.blocked_seconds = blocked[0]
        result.router_cpu_seconds = _time.process_time() - cpu_started
        return result

    # -- durability and lifecycle --------------------------------------------

    def checkpoint(self) -> None:
        """Checkpoint every shard's store (truncates worker WALs)."""
        pending = [
            (shard, self._send(shard, "checkpoint"))
            for shard in self._shards
        ]
        for shard, seq in pending:
            self._await(shard, seq)

    def close(self) -> None:
        """Checkpoint and stop every worker; bounded, idempotent.

        Live workers get a ``close`` request (checkpoint plus store
        close) and ``join_timeout`` seconds to comply before being
        reaped; down shards stay recoverable through their WALs.  A
        worker that died since its last acknowledgement is reaped
        rather than raising — closing must always terminate.
        """
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.down or shard.conn is None:
                continue
            try:
                shard.conn.send(("close", shard.sent_seq + 1))
                shard.sent_seq += 1
            except (BrokenPipeError, OSError):
                self._reap(shard)
                continue
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            process.join(timeout=self.config.join_timeout)
            self._reap(shard)

    def __enter__(self) -> "ShardedForest":
        """Context-manager entry: the forest itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close every worker (bounded)."""
        self.close()

    # -- gathers -------------------------------------------------------------

    def _gather(self, verb: str) -> List[tuple]:
        pending = [
            (shard, self._send(shard, verb)) for shard in self._shards
        ]
        return [self._await(shard, seq) for shard, seq in pending]

    def snapshot(self) -> GatheredSnapshot:
        """Gather every shard's committed leaf entries for degraded reads."""
        entries: List[Tuple[MovingPoint, int]] = []
        for reply in self._gather("snapshot"):
            entries.extend(self.codec.decode_entries(reply[3]))
        return GatheredSnapshot(entries, self.clock.time)

    def stats_payloads(self) -> List[dict]:
        """Per-shard stats exports (metrics, I/O counters, sizes).

        An explicit gather; it also refreshes the piggyback cache
        behind :meth:`live_registry` / :meth:`worker_summaries`.
        """
        payloads = [reply[2] for reply in self._gather("stats")]
        for index, payload in enumerate(payloads):
            self._worker_exports[index] = payload
        return payloads

    def io_snapshot(self) -> IOSnapshot:
        """Summed I/O counters across all shards."""
        payloads = self.stats_payloads()
        return IOSnapshot(
            sum(p["io"]["reads"] for p in payloads),
            sum(p["io"]["writes"] for p in payloads),
            sum(p["io"]["allocations"] for p in payloads),
            sum(p["io"]["frees"] for p in payloads),
        )

    def registry_snapshot(self) -> MetricsRegistry:
        """Merge every worker's metrics export into one parent registry.

        Counters sum, gauges sum and histograms merge bucket-wise (see
        :meth:`repro.obs.metrics.MetricsRegistry.merge`), so
        ``tree.*`` totals read exactly like a single tree's.
        """
        merged = MetricsRegistry()
        for payload in self.stats_payloads():
            merged.merge(MetricsRegistry.from_dict(payload["metrics"]))
        merged.gauge("shards.workers").set(self.partitions)
        return merged

    def live_registry(self) -> MetricsRegistry:
        """Merge the latest piggybacked worker flushes, without a gather.

        Like :meth:`registry_snapshot` but built entirely from the
        stats flushes workers piggyback on apply acknowledgements
        (``config.flush_every``) plus the router's own registry — no
        round trips, so it is safe to call from a serving loop.  Each
        call merges fresh from the stored cumulative exports, so
        repeated calls (and repeated identical flushes) are idempotent.
        Shards that have not flushed yet simply contribute nothing.
        """
        merged = MetricsRegistry()
        for payload in self._worker_exports.values():
            merged.merge(MetricsRegistry.from_dict(payload["metrics"]))
        if self._registry is not None:
            merged.merge(self._registry)
        merged.gauge("shards.workers").set(self.partitions)
        return merged

    def worker_summaries(self) -> Dict[int, dict]:
        """Latest per-shard size/I-O summaries from the piggyback cache.

        Maps shard index to its most recent stats payload (``io``,
        ``pages``, ``entries``, ``height``) — live to within
        ``config.flush_every`` applies, no round trip.
        """
        return {
            index: {k: v for k, v in payload.items() if k != "metrics"}
            for index, payload in sorted(self._worker_exports.items())
        }

    @property
    def page_count(self) -> int:
        """Total index size in disk pages, across all shards."""
        return sum(p["pages"] for p in self.stats_payloads())

    @property
    def leaf_entry_count(self) -> int:
        """Total live-tree leaf entries across all shards."""
        return sum(p["entries"] for p in self.stats_payloads())

    def audit(self) -> TreeAudit:
        """Shard-wide structural census (counts summed over shards)."""
        audits = [reply[2] for reply in self._gather("audit")]
        return TreeAudit(
            height=max(audit.height for audit in audits),
            nodes=sum(audit.nodes for audit in audits),
            leaf_entries=sum(audit.leaf_entries for audit in audits),
            expired_leaf_entries=sum(
                audit.expired_leaf_entries for audit in audits
            ),
            internal_entries=sum(audit.internal_entries for audit in audits),
            expired_internal_entries=sum(
                audit.expired_internal_entries for audit in audits
            ),
        )

    # -- test hooks ----------------------------------------------------------

    def crash_worker(self, index: int) -> None:
        """Ask one worker to die unannounced (tests and chaos drills).

        The router's state is deliberately left untouched: like a real
        power loss, the death is discovered by the next operation that
        touches the shard, which raises :class:`ShardCrashError`; the
        operation after that revives the shard through WAL recovery.
        """
        shard = self._shards[index]
        self._ensure_alive(shard)
        try:
            shard.conn.send(("crash", shard.sent_seq + 1))
            shard.sent_seq += 1
        except (BrokenPipeError, OSError):
            pass
        if shard.process is not None:
            shard.process.join(timeout=self.config.join_timeout)
