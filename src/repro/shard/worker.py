"""The shard worker process: one durable member tree behind a pipe.

``worker_main`` is the ``spawn`` entry point of every shard.  A worker
owns exactly one :class:`~repro.core.tree.MovingObjectTree` backed by a
durable :class:`~repro.storage.pagefile.FilePageStore` (its own page
file, write-ahead log and buffer budget) and serves a simple
request/reply protocol over its end of a ``multiprocessing`` pipe:
operation batches to apply, stats/snapshot/audit gathers, checkpoints
and a clean close.  Requests carry a sequence number that the reply
echoes; the router matches them FIFO since the worker is strictly
sequential.

Every ``apply`` reply reports the worker's busy time: *CPU seconds*
(``time.process_time``) spent decoding and applying the batch, so the
number measures the shard's actual work even when many workers
time-slice one core — wall clocks would count the neighbours'
slices too.  The shard benchmark sums these per shard to model the
scatter-gather critical path on a machine with one core per worker —
see ``benchmarks/bench_shards.py``.

A worker never shares state with the parent: the tree, clock, metrics
registry and page store all live in this process, and everything that
crosses the pipe is a packed batch (:mod:`repro.shard.wire`) or a small
picklable summary.
"""

from __future__ import annotations

import os
import time as _time
import traceback
from dataclasses import dataclass
from typing import Optional

from ..core.clock import SimulationClock
from ..core.config import TreeConfig
from ..core.tree import MovingObjectTree
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..workloads.base import DeleteOp, InsertOp, KnnOp, QueryOp, UpdateOp
from .wire import OpCodec

#: Span name a worker records around one applied batch; the router
#: adopts these (re-parented under its fan-out span) and ``repro top``
#: keys its worker-stage arithmetic on the name.
BATCH_SPAN = "worker.batch"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs to build (or reopen) its tree.

    Parameters
    ----------
    index : int
        Shard index, for error messages and metric labels.
    directory : str
        The shard's page-store directory.
    config : TreeConfig
        Member-tree configuration (buffer budget already applied).
    recover : bool
        Reopen an existing store (running WAL recovery) instead of
        creating a fresh one.
    fsync : bool
        Whether the worker's write-ahead log fsyncs on commit.
    observability : bool
        Attach a per-worker metrics registry to the tree; its export
        ships back on ``stats`` requests for parent-side merging.
    tracing : bool
        Run a per-worker :class:`~repro.obs.trace.Tracer`; each apply
        reply then carries the batch's span records (plus any wire
        trace context) for router-side adoption.
    flush_every : int
        Piggyback the worker's full registry export on every Nth apply
        reply, so router-side stats stay live without explicit gathers
        (0 disables the piggyback).
    """

    index: int
    directory: str
    config: TreeConfig
    recover: bool = False
    fsync: bool = False
    observability: bool = True
    tracing: bool = False
    flush_every: int = 8


def _build_tree(
    spec: WorkerSpec,
    clock: SimulationClock,
    registry: Optional[MetricsRegistry],
    tracer: Optional[Tracer] = None,
) -> MovingObjectTree:
    """Create or recover the worker's durable member tree."""
    if spec.recover:
        return MovingObjectTree.open_from(
            spec.directory, spec.config, clock,
            fsync=spec.fsync, registry=registry, tracer=tracer,
        )
    tree = MovingObjectTree.create_durable(
        spec.directory, spec.config, clock, fsync=spec.fsync
    )
    if registry is not None or tracer is not None:
        tree.enable_observability(registry, tracer)
    return tree


def _apply_batch(tree, clock, codec, payload):
    """Apply one decoded batch.

    Returns ``(answers bytes, failed deletes, trace context, op
    count)`` — the trace context is the wire batch's, ``None`` when the
    router sent it untraced.

    Runs of consecutive queries at the same timestamp are answered
    through :meth:`~repro.core.tree.MovingObjectTree.query_batch` — one
    shared traversal for the whole run — whose answers are bit-identical
    to querying them one by one, so a router-side query batch costs the
    shard a single descent per shared node.

    A batch containing kNN records yields a *framed* answer block
    (range answers then scored answers); the router knows to expect the
    frame because it built the batch with kNN ops in it.
    """
    answers = []
    scored = []
    failed_deletes = 0
    ops, trace = codec.decode_ops_traced(payload)
    total = len(ops)
    position = 0
    while position < total:
        op = ops[position]
        clock.advance_to(op.time)
        if isinstance(op, KnnOp):
            scored.append((
                position,
                tree.knn_entries(op.x, op.t, op.k, bound_sq=op.bound_sq),
            ))
            position += 1
            continue
        if isinstance(op, QueryOp):
            stop = position + 1
            while (
                stop < total
                and isinstance(ops[stop], QueryOp)
                and ops[stop].time == op.time
            ):
                stop += 1
            if stop == position + 1:
                answers.append((position, tree.query(op.query)))
            else:
                run = [ops[i].query for i in range(position, stop)]
                for offset, oids in enumerate(tree.query_batch(run)):
                    answers.append((position + offset, oids))
            position = stop
            continue
        if isinstance(op, InsertOp):
            tree.insert(op.oid, op.point)
        elif isinstance(op, UpdateOp):
            if not tree.update(op.oid, op.old_point, op.new_point):
                failed_deletes += 1
        elif isinstance(op, DeleteOp):
            if not tree.delete(op.oid, op.point):
                failed_deletes += 1
        else:  # pragma: no cover - decode_ops only yields known kinds
            raise TypeError(f"unsupported operation {op!r}")
        position += 1
    if scored:
        payload = codec.encode_answer_frame(answers, scored)
    else:
        payload = codec.encode_answers(answers)
    return payload, failed_deletes, trace, total


def _stats_payload(tree, registry: Optional[MetricsRegistry]) -> dict:
    """The worker's aggregable state summary for a ``stats`` request."""
    return {
        "metrics": registry.to_dict() if registry is not None else {},
        "io": {
            "reads": tree.stats.reads,
            "writes": tree.stats.writes,
            "allocations": tree.stats.allocations,
            "frees": tree.stats.frees,
        },
        "pages": tree.page_count,
        "entries": tree.leaf_entry_count,
        "height": tree.height,
    }


def worker_main(conn, spec: WorkerSpec) -> None:
    """Serve shard requests until ``close`` (or parent disappearance).

    The protocol is strict request/reply: every request tuple starts
    with a verb and a sequence number, and every reply is either
    ``("ok", seq, ...)`` or ``("err", seq, traceback_text)``.  An
    exception inside a request is reported, not fatal — the tree's own
    durability guarantees cover whatever the failed request left
    behind.  A lost parent (EOF on the pipe) closes the tree and exits.

    Every ``apply`` reply ends with an *extras* slot: ``None`` on the
    plain path, else a dict carrying the batch's span records (under
    ``spans``/``dropped``/``ctx`` when tracing) and, every
    ``flush_every`` applies, the worker's full stats payload (under
    ``stats``) — the piggybacked flush that keeps router-side metrics
    live.  The flush is the *cumulative* registry export, so the
    router replacing its stored copy is idempotent by construction.
    """
    registry = MetricsRegistry() if spec.observability else None
    tracer = Tracer() if spec.tracing else None
    clock = SimulationClock()
    tree = _build_tree(spec, clock, registry, tracer)
    codec = OpCodec(spec.config.dims)
    applies = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            verb, seq = message[0], message[1]
            try:
                if verb == "apply":
                    extras = None
                    started = _time.process_time()
                    if tracer is None:
                        answers, failed, _, _ = _apply_batch(
                            tree, clock, codec, message[2]
                        )
                        busy = _time.process_time() - started
                    else:
                        with tracer.span(BATCH_SPAN) as span:
                            answers, failed, trace, nops = _apply_batch(
                                tree, clock, codec, message[2]
                            )
                            busy = _time.process_time() - started
                            span.set(ops=nops, cpu_s=busy)
                            if trace is not None:
                                span.set(trace_id=trace.trace_id)
                        extras = {
                            "spans": tracer.records(),
                            "dropped": tracer.dropped,
                        }
                        if trace is not None:
                            extras["ctx"] = tuple(trace)
                        tracer.clear()
                    applies += 1
                    if (
                        registry is not None
                        and spec.flush_every
                        and applies % spec.flush_every == 0
                    ):
                        extras = extras if extras is not None else {}
                        extras["stats"] = _stats_payload(tree, registry)
                    conn.send(("ok", seq, answers, busy, failed, extras))
                elif verb == "bulk":
                    clock.advance_to(message[2])
                    entries = codec.decode_entries(message[3])
                    tree.bulk_load(entries)
                    conn.send(("ok", seq, len(entries)))
                elif verb == "stats":
                    conn.send(("ok", seq, _stats_payload(tree, registry)))
                elif verb == "snapshot":
                    snapshot = tree.snapshot()
                    entries = codec.encode_entries(
                        list(snapshot.leaf_entries())
                    )
                    conn.send(("ok", seq, snapshot.taken_at, entries))
                elif verb == "audit":
                    conn.send(("ok", seq, tree.audit()))
                elif verb == "checkpoint":
                    tree.checkpoint()
                    conn.send(("ok", seq))
                elif verb == "close":
                    tree.close()
                    conn.send(("ok", seq))
                    return
                elif verb == "crash":
                    # Test hook: die without flushing or replying, as a
                    # power loss would.  WAL recovery picks up the shard.
                    os._exit(13)
                else:
                    raise ValueError(f"unknown request verb {verb!r}")
            except Exception:
                conn.send(("err", seq, traceback.format_exc()))
    finally:
        tree.close()
