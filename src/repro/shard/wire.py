"""Packed-struct wire format for shard operation batches.

Everything the router exchanges with a worker travels as flat
``struct``-packed byte strings: operation batches (reports, deletions
and queries), gathered query answers, and leaf-entry sets (bulk loads
and snapshot gathers).  All coordinates and times are IEEE-754 doubles
— the workers must reconstruct byte-identical
:class:`~repro.geometry.kinematics.MovingPoint` objects, or scatter-
gather answers could drift from a single-tree run — and object ids are
signed 64-bit integers.

The format is deliberately dumb: fixed-size records, no compression,
one :class:`OpCodec` per dimensionality with every ``struct`` layout
precompiled.  Encoding a batch is a single join of per-record packs;
decoding is sequential ``unpack_from``.  A four-byte magic and a
version byte guard against driving a worker with a foreign payload.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from ..geometry.kinematics import MovingPoint
from ..geometry.queries import (
    MovingQuery,
    SpatioTemporalQuery,
    TimesliceQuery,
    WindowQuery,
)
from ..geometry.rect import Rect
from ..obs.trace import TraceContext
from ..workloads.base import (
    DeleteOp,
    InsertOp,
    KnnOp,
    Operation,
    QueryOp,
    UpdateOp,
)

#: Batch magic ("RXSB": R-exp-tree shard batch) and format version.
MAGIC = 0x52585342
VERSION = 1

#: Header flag: an optional trace-context frame (``_TRACE``) follows
#: the header.  Flags live in the header's formerly-reserved u16, so a
#: flag-free batch is byte-identical to the pre-flags format and the
#: version byte stays 1.
FLAG_TRACE = 0x0001
#: Header flag: the batch contains at least one :data:`OP_KNN` record,
#: and the worker's answer block uses the *framed* form (range answers
#: followed by scored kNN answers).  A decoder predating kNN rejects
#: the unknown flag loudly instead of mis-parsing the record.
FLAG_KNN = 0x0002
_KNOWN_FLAGS = FLAG_TRACE | FLAG_KNN

#: Operation record kinds.
OP_INSERT, OP_DELETE, OP_UPDATE, OP_QUERY, OP_KNN = 1, 2, 3, 4, 5
#: Query record sub-kinds (the three query types of Section 2.1).
Q_TIMESLICE, Q_WINDOW, Q_MOVING = 1, 2, 3

_HEADER = struct.Struct("<IBBHI")  # magic, version, dims, flags, count
_TRACE = struct.Struct("<QQ")  # trace id, parent span id (0 = none)
_KIND = struct.Struct("<B")
_ANSWER_HEADER = struct.Struct("<I")  # number of answered queries
_ANSWER_ENTRY = struct.Struct("<II")  # op index in batch, oid count
_SCORED_PAIR = struct.Struct("<dq")  # squared distance, oid

LeafEntry = Tuple[MovingPoint, int]
Answer = Tuple[int, List[int]]
ScoredAnswer = Tuple[int, List[Tuple[float, int]]]


class OpCodec:
    """Encode/decode operation batches for one dimensionality.

    Parameters
    ----------
    dims : int
        Dimensionality of the indexed space; every point and rectangle
        in a batch must match it.
    """

    def __init__(self, dims: int):
        if dims < 1:
            raise ValueError(f"dims must be positive, got {dims}")
        self.dims = dims
        d = dims
        # A point is pos(d), vel(d), t_ref, t_exp.
        self._write = struct.Struct(f"<Bq{2 * d + 3}d")  # kind, oid, time, pt
        self._update = struct.Struct(f"<Bq{2 * (2 * d + 2) + 1}d")
        self._query = {
            Q_TIMESLICE: struct.Struct(f"<BB{2 * d + 2}d"),
            Q_WINDOW: struct.Struct(f"<BB{2 * d + 3}d"),
            Q_MOVING: struct.Struct(f"<BB{4 * d + 3}d"),
        }
        # A kNN record is kind, k, time, t, bound, x(d).
        self._knn = struct.Struct(f"<BI{d + 3}d")
        self._entry = struct.Struct(f"<q{2 * d + 2}d")

    # -- points and rectangles ----------------------------------------------

    def _point_fields(self, point: MovingPoint) -> Tuple[float, ...]:
        if point.dims != self.dims:
            raise ValueError(
                f"point has {point.dims} dims, codec expects {self.dims}"
            )
        return (*point.pos, *point.vel, point.t_ref, point.t_exp)

    def _point_from(self, fields: Sequence[float]) -> MovingPoint:
        d = self.dims
        return MovingPoint(
            tuple(fields[:d]), tuple(fields[d:2 * d]),
            fields[2 * d], fields[2 * d + 1],
        )

    # -- encoding ------------------------------------------------------------

    def _encode_op(self, op: Operation) -> bytes:
        if isinstance(op, InsertOp):
            return self._write.pack(
                OP_INSERT, op.oid, op.time, *self._point_fields(op.point)
            )
        if isinstance(op, DeleteOp):
            return self._write.pack(
                OP_DELETE, op.oid, op.time, *self._point_fields(op.point)
            )
        if isinstance(op, UpdateOp):
            return self._update.pack(
                OP_UPDATE, op.oid, op.time,
                *self._point_fields(op.old_point),
                *self._point_fields(op.new_point),
            )
        if isinstance(op, QueryOp):
            return self._encode_query(op)
        if isinstance(op, KnnOp):
            if len(op.x) != self.dims:
                raise ValueError(
                    f"kNN point has {len(op.x)} dims, codec expects "
                    f"{self.dims}"
                )
            return self._knn.pack(
                OP_KNN, op.k, op.time, op.t, op.bound_sq, *op.x
            )
        raise TypeError(f"cannot encode operation {op!r}")

    def _encode_query(self, op: QueryOp) -> bytes:
        q = op.query
        if isinstance(q, TimesliceQuery):
            return self._query[Q_TIMESLICE].pack(
                OP_QUERY, Q_TIMESLICE, op.time, *q.rect.lo, *q.rect.hi, q.t
            )
        if isinstance(q, WindowQuery):
            return self._query[Q_WINDOW].pack(
                OP_QUERY, Q_WINDOW, op.time,
                *q.rect.lo, *q.rect.hi, q.t1, q.t2,
            )
        if isinstance(q, MovingQuery):
            return self._query[Q_MOVING].pack(
                OP_QUERY, Q_MOVING, op.time,
                *q.rect1.lo, *q.rect1.hi, *q.rect2.lo, *q.rect2.hi,
                q.t1, q.t2,
            )
        raise TypeError(f"cannot encode query {q!r}")

    def encode_ops(
        self, ops: Sequence[Operation], trace: Optional[TraceContext] = None
    ) -> bytes:
        """Pack a batch of operations into one byte string.

        With ``trace`` given, the batch carries a trace-context frame
        (trace id + parent span id) between header and records and
        sets :data:`FLAG_TRACE`; workers decode it via
        :meth:`decode_ops_traced` and hang their spans under the
        router's fan-out span.  Without it the bytes are identical to
        the untraced format.  A batch containing kNN records sets
        :data:`FLAG_KNN` (the answer block is then framed); batches
        without either feature stay byte-identical to the original
        format.
        """
        flags = 0
        parts = [b""]
        if trace is not None:
            flags |= FLAG_TRACE
            parts.append(_TRACE.pack(trace.trace_id, trace.parent_span_id))
        if any(isinstance(op, KnnOp) for op in ops):
            flags |= FLAG_KNN
        parts[0] = _HEADER.pack(MAGIC, VERSION, self.dims, flags, len(ops))
        parts.extend(self._encode_op(op) for op in ops)
        return b"".join(parts)

    # -- decoding ------------------------------------------------------------

    def _check_header(self, buf: bytes) -> Tuple[int, int]:
        magic, version, dims, flags, count = _HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            raise ValueError(f"bad batch magic {magic:#x}")
        if version != VERSION:
            raise ValueError(f"unsupported batch version {version}")
        if dims != self.dims:
            raise ValueError(
                f"batch encoded for {dims} dims, codec expects {self.dims}"
            )
        if flags & ~_KNOWN_FLAGS:
            raise ValueError(f"unknown batch flags {flags:#06x}")
        return count, flags

    def decode_ops(self, buf: bytes) -> List[Operation]:
        """Unpack a batch back into operation objects (exact fields).

        Any trace-context frame is skipped; use
        :meth:`decode_ops_traced` to receive it.
        """
        ops, _ = self.decode_ops_traced(buf)
        return ops

    def decode_ops_traced(
        self, buf: bytes
    ) -> Tuple[List[Operation], Optional[TraceContext]]:
        """Unpack a batch plus its trace context (None when untraced)."""
        count, flags = self._check_header(buf)
        offset = _HEADER.size
        trace: Optional[TraceContext] = None
        if flags & FLAG_TRACE:
            trace_id, parent = _TRACE.unpack_from(buf, offset)
            offset += _TRACE.size
            trace = TraceContext(trace_id, parent)
        d = self.dims
        ops: List[Operation] = []
        for _ in range(count):
            (kind,) = _KIND.unpack_from(buf, offset)
            if kind in (OP_INSERT, OP_DELETE):
                _, oid, time, *fields = self._write.unpack_from(buf, offset)
                offset += self._write.size
                point = self._point_from(fields)
                cls = InsertOp if kind == OP_INSERT else DeleteOp
                ops.append(cls(time, oid, point))
            elif kind == OP_UPDATE:
                _, oid, time, *fields = self._update.unpack_from(buf, offset)
                offset += self._update.size
                half = 2 * d + 2
                ops.append(UpdateOp(
                    time, oid,
                    self._point_from(fields[:half]),
                    self._point_from(fields[half:]),
                ))
            elif kind == OP_QUERY:
                op, offset = self._decode_query(buf, offset)
                ops.append(op)
            elif kind == OP_KNN:
                _, k, time, t, bound, *x = self._knn.unpack_from(buf, offset)
                offset += self._knn.size
                ops.append(KnnOp(time, tuple(x), t, k, bound))
            else:
                raise ValueError(f"unknown op kind {kind} at offset {offset}")
        return ops, trace

    def _decode_query(self, buf: bytes, offset: int) -> Tuple[QueryOp, int]:
        _, qkind = struct.unpack_from("<BB", buf, offset)
        layout = self._query.get(qkind)
        if layout is None:
            raise ValueError(f"unknown query kind {qkind} at offset {offset}")
        fields = layout.unpack_from(buf, offset)
        offset += layout.size
        d = self.dims
        values = fields[2:]  # skip kind, qkind
        time = values[0]
        values = values[1:]
        query: SpatioTemporalQuery
        if qkind == Q_TIMESLICE:
            rect = Rect(tuple(values[:d]), tuple(values[d:2 * d]))
            query = TimesliceQuery(rect, values[2 * d])
        elif qkind == Q_WINDOW:
            rect = Rect(tuple(values[:d]), tuple(values[d:2 * d]))
            query = WindowQuery(rect, values[2 * d], values[2 * d + 1])
        else:
            rect1 = Rect(tuple(values[:d]), tuple(values[d:2 * d]))
            rect2 = Rect(
                tuple(values[2 * d:3 * d]), tuple(values[3 * d:4 * d])
            )
            query = MovingQuery(rect1, rect2, values[4 * d], values[4 * d + 1])
        return QueryOp(time, query), offset

    # -- answers -------------------------------------------------------------

    def encode_answers(self, answers: Sequence[Answer]) -> bytes:
        """Pack per-query answers: (batch op index, matching oids)."""
        parts = [_ANSWER_HEADER.pack(len(answers))]
        for index, oids in answers:
            parts.append(_ANSWER_ENTRY.pack(index, len(oids)))
            parts.append(struct.pack(f"<{len(oids)}q", *oids))
        return b"".join(parts)

    def decode_answers(self, buf: bytes) -> List[Answer]:
        """Unpack an answer block back into (op index, oids) pairs."""
        answers, _ = self._decode_answers_at(buf, 0)
        return answers

    def _decode_answers_at(
        self, buf: bytes, offset: int
    ) -> Tuple[List[Answer], int]:
        (count,) = _ANSWER_HEADER.unpack_from(buf, offset)
        offset += _ANSWER_HEADER.size
        answers: List[Answer] = []
        for _ in range(count):
            index, n = _ANSWER_ENTRY.unpack_from(buf, offset)
            offset += _ANSWER_ENTRY.size
            oids = list(struct.unpack_from(f"<{n}q", buf, offset))
            offset += 8 * n
            answers.append((index, oids))
        return answers, offset

    # -- scored (kNN) answers ------------------------------------------------

    def encode_answer_frame(
        self,
        answers: Sequence[Answer],
        scored: Sequence[ScoredAnswer],
    ) -> bytes:
        """Pack the framed answer form of a :data:`FLAG_KNN` batch.

        The frame is the ordinary range-answer block (byte-identical to
        :meth:`encode_answers`) immediately followed by a scored block:
        a count header, then per kNN op its batch index, pair count and
        ``(squared distance, oid)`` pairs as double/int64.  Distances
        travel as raw IEEE-754 doubles so the router's cross-shard merge
        stays bit-identical to a single-tree descent.

        Parameters
        ----------
        answers : sequence of (int, list of int)
            Range-query answers, as for :meth:`encode_answers`.
        scored : sequence of (int, list of (float, int))
            Per kNN op: its index in the batch and the ascending
            ``(squared distance, oid)`` result pairs.

        Returns
        -------
        bytes
            The framed answer block.
        """
        parts = [self.encode_answers(answers)]
        parts.append(_ANSWER_HEADER.pack(len(scored)))
        for index, pairs in scored:
            parts.append(_ANSWER_ENTRY.pack(index, len(pairs)))
            parts.extend(_SCORED_PAIR.pack(dist, oid) for dist, oid in pairs)
        return b"".join(parts)

    def decode_answer_frame(
        self, buf: bytes
    ) -> Tuple[List[Answer], List[ScoredAnswer]]:
        """Unpack a framed answer block (see :meth:`encode_answer_frame`).

        Parameters
        ----------
        buf : bytes
            A framed answer block produced by a worker for a batch with
            :data:`FLAG_KNN` set.

        Returns
        -------
        tuple of (list of Answer, list of ScoredAnswer)
            The range answers and the scored kNN answers, each keyed by
            their op's index in the originating batch.
        """
        answers, offset = self._decode_answers_at(buf, 0)
        (count,) = _ANSWER_HEADER.unpack_from(buf, offset)
        offset += _ANSWER_HEADER.size
        scored: List[ScoredAnswer] = []
        for _ in range(count):
            index, n = _ANSWER_ENTRY.unpack_from(buf, offset)
            offset += _ANSWER_ENTRY.size
            pairs: List[Tuple[float, int]] = []
            for _ in range(n):
                dist, oid = _SCORED_PAIR.unpack_from(buf, offset)
                offset += _SCORED_PAIR.size
                pairs.append((dist, oid))
            scored.append((index, pairs))
        return answers, scored

    # -- leaf entries --------------------------------------------------------

    def encode_entries(self, entries: Sequence[LeafEntry]) -> bytes:
        """Pack ``(point, oid)`` leaf entries (bulk loads, snapshots)."""
        parts = [_ANSWER_HEADER.pack(len(entries))]
        parts.extend(
            self._entry.pack(oid, *self._point_fields(point))
            for point, oid in entries
        )
        return b"".join(parts)

    def decode_entries(self, buf: bytes) -> List[LeafEntry]:
        """Unpack a leaf-entry block back into ``(point, oid)`` pairs."""
        (count,) = _ANSWER_HEADER.unpack_from(buf, 0)
        offset = _ANSWER_HEADER.size
        entries: List[LeafEntry] = []
        for _ in range(count):
            oid, *fields = self._entry.unpack_from(buf, offset)
            offset += self._entry.size
            entries.append((self._point_from(fields), oid))
        return entries
