"""Process-parallel sharding of the moving-object index.

A :class:`~repro.shard.router.ShardedForest` runs one worker process
per shard (``multiprocessing`` with the ``spawn`` start method), each
owning a durable member tree — its own page file, write-ahead log and
buffer budget — while a router in the parent process routes reports
through the pure :class:`~repro.core.partition.Partitioner` protocol
and scatters queries to the shards whose partition can intersect them,
gathering the merged answer.  Operations travel as compact packed-
struct batches (:mod:`repro.shard.wire`) to amortize IPC.

This is the MOIST-style scale-out layer (Jiang et al.,
arXiv:1208.4178) over the paper's R^exp-trees: the partitioning line
already gave us routing functions that are pure in the report, so
deletions reach the same shard their insertion chose without any
routing table, and each worker runs the unmodified single-tree code.
"""

from .router import (
    ShardConfig,
    ShardCrashError,
    ShardedForest,
    ShardWorkerError,
)
from .wire import OpCodec

__all__ = [
    "OpCodec",
    "ShardConfig",
    "ShardCrashError",
    "ShardWorkerError",
    "ShardedForest",
]
