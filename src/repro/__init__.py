"""repro — a reproduction of the R^exp-tree.

Indexing of Moving Objects for Location-Based Services
(Simonas Saltenis and Christian S. Jensen, TimeCenter TR-63 / ICDE 2002).

Quickstart::

    from repro import MovingObjectTree, MovingPoint, TimesliceQuery, Rect

    tree = MovingObjectTree()
    tree.clock.advance_to(0.0)
    tree.insert(1, MovingPoint(pos=(10.0, 20.0), vel=(0.5, -0.25),
                               t_ref=0.0, t_exp=120.0))
    hits = tree.query(TimesliceQuery(Rect((0.0, 0.0), (50.0, 50.0)), t=30.0))

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the figure-by-figure reproduction.
"""

from .core import (
    DirectionPartitioner,
    ForestConfig,
    MovingObjectTree,
    PartitionedMovingObjectForest,
    ScheduledDeletionIndex,
    SimulationClock,
    SpeedPartitioner,
    TreeConfig,
    forest_config,
    rexp_config,
    tpr_config,
)
from .geometry import (
    TPBR,
    BoundingKind,
    MovingPoint,
    MovingQuery,
    Rect,
    TimesliceQuery,
    WindowQuery,
)
from .obs import Histogram, MetricsRegistry, Tracer

__version__ = "1.0.0"

__all__ = [
    "BoundingKind",
    "DirectionPartitioner",
    "ForestConfig",
    "Histogram",
    "MetricsRegistry",
    "MovingObjectTree",
    "MovingPoint",
    "MovingQuery",
    "PartitionedMovingObjectForest",
    "Rect",
    "ScheduledDeletionIndex",
    "SimulationClock",
    "SpeedPartitioner",
    "TPBR",
    "TimesliceQuery",
    "Tracer",
    "TreeConfig",
    "WindowQuery",
    "__version__",
    "forest_config",
    "rexp_config",
    "tpr_config",
]
