"""The uniform workload of Section 5.1.

Initial coordinates are uniform in the space; velocity directions are
random (initially and on every update) with speeds uniform in
[0, 3 km/min]; the time between successive updates of an object is
uniform in (0, 2*UI].  Objects follow their reported predictions exactly
between reports and bounce off the space boundary.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from .base import Workload
from .expiration import ExpirationPolicy, FixedPeriod, estimate_live_fraction
from .queries import QueryProfile
from .stream import Report, StreamParams, build_stream


@dataclass(frozen=True)
class UniformParams:
    """Knobs of the uniform workload generator."""

    target_population: int = 100_000
    insertions: int = 1_000_000
    update_interval: float = 60.0
    querying_window: Optional[float] = None  # defaults to UI / 2
    new_object_fraction: float = 0.0
    space: float = 1000.0
    max_speed: float = 3.0
    queries_per_insertions: int = 100
    seed: int = 0

    @property
    def window(self) -> float:
        if self.querying_window is not None:
            return self.querying_window
        return self.update_interval / 2.0


def uniform_journey_factory(params: UniformParams):
    """Endless uniform random motion for one object."""

    space = params.space

    def factory(rng: random.Random, start_time: float) -> Iterator[Report]:
        def journey() -> Iterator[Report]:
            t = start_time
            x = rng.uniform(0.0, space)
            y = rng.uniform(0.0, space)
            while True:
                speed = rng.uniform(0.0, params.max_speed)
                angle = rng.uniform(0.0, 2.0 * math.pi)
                vx = speed * math.cos(angle)
                vy = speed * math.sin(angle)
                yield (t, (x, y), (vx, vy), speed)
                gap = rng.uniform(0.0, 2.0 * params.update_interval)
                gap = max(gap, 1e-6)
                t += gap
                x, vx = _bounce(x + vx * gap, space)
                y, vy_dummy = _bounce(y + vy * gap, space)
        return journey()

    return factory


def _bounce(coord: float, space: float) -> Tuple[float, float]:
    """Reflect a coordinate back into [0, space]."""
    if coord < 0.0:
        return -coord % space, 0.0
    if coord > space:
        return space - (coord - space) % space, 0.0
    return coord, 0.0


def generate_uniform_workload(
    params: UniformParams,
    policy: Optional[ExpirationPolicy] = None,
) -> Workload:
    """Build the uniform workload (used by Figure 11)."""
    if policy is None:
        policy = FixedPeriod(2.0 * params.update_interval)
    fraction = estimate_live_fraction(
        policy, params.update_interval, params.max_speed / 2.0
    )
    population = max(1, math.ceil(params.target_population / fraction))
    stream = StreamParams(
        population=population,
        insertions=params.insertions,
        update_interval=params.update_interval,
        querying_window=params.window,
        new_object_fraction=params.new_object_fraction,
        queries_per_insertions=params.queries_per_insertions,
        seed=params.seed,
    )
    profile = QueryProfile(space=params.space)
    workload = build_stream(
        name=f"uniform[{policy.describe()},UI={params.update_interval:g}]",
        params=stream,
        journey_factory=uniform_journey_factory(params),
        policy=policy,
        query_profile=profile,
    )
    workload.params["kind"] = "uniform"
    return workload
