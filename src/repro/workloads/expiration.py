"""Expiration-time assignment policies (Section 5.1).

Two approaches are evaluated by the paper:

* **ExpT** — a fixed expiration *period*: ``t_exp = t_upd + ExpT`` for
  every object (most experiments use ExpT = 2·UI).
* **ExpD** — a fixed expiration *distance*: fast objects expire sooner,
  ``t_exp = t_upd + ExpD / v`` where ``v`` is the reported speed.

A third policy (never expire) feeds the plain TPR-tree comparisons.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..geometry.kinematics import NEVER


class ExpirationPolicy(ABC):
    """Maps an update's time and reported speed to an expiration time."""

    @abstractmethod
    def expiration(self, t_upd: float, speed: float) -> float:
        """Expiration time for a report issued at ``t_upd``."""

    @abstractmethod
    def mean_validity(self, mean_speed: float) -> float:
        """Expected validity duration (for population-size estimation)."""

    @abstractmethod
    def describe(self) -> str:
        """Short label for reports."""


@dataclass(frozen=True)
class FixedPeriod(ExpirationPolicy):
    """ExpT: every report is valid for the same duration."""

    period: float

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError(f"expiration period must be positive: {self.period}")

    def expiration(self, t_upd: float, speed: float) -> float:
        return t_upd + self.period

    def mean_validity(self, mean_speed: float) -> float:
        return self.period

    def describe(self) -> str:
        return f"ExpT={self.period:g}"


@dataclass(frozen=True)
class FixedDistance(ExpirationPolicy):
    """ExpD: a report is valid until the object travels ``distance``.

    Stationary (or nearly stationary) objects would never expire; their
    validity is capped via ``min_speed``.
    """

    distance: float
    min_speed: float = 0.05

    def __post_init__(self) -> None:
        if self.distance <= 0.0:
            raise ValueError(f"expiration distance must be positive: {self.distance}")
        if self.min_speed <= 0.0:
            raise ValueError(f"min_speed must be positive: {self.min_speed}")

    def expiration(self, t_upd: float, speed: float) -> float:
        return t_upd + self.distance / max(speed, self.min_speed)

    def mean_validity(self, mean_speed: float) -> float:
        return self.distance / max(mean_speed, self.min_speed)

    def describe(self) -> str:
        return f"ExpD={self.distance:g}"


@dataclass(frozen=True)
class NeverExpire(ExpirationPolicy):
    """Reports stay valid forever (classic TPR-tree data)."""

    def expiration(self, t_upd: float, speed: float) -> float:
        return NEVER

    def mean_validity(self, mean_speed: float) -> float:
        return math.inf

    def describe(self) -> str:
        return "no-expiry"


def estimate_live_fraction(
    policy: ExpirationPolicy, update_interval: float, mean_speed: float
) -> float:
    """Expected fraction of objects whose last report is still valid.

    Assuming times between successive updates uniform on (0, 2·UI) — the
    paper's assumption when compensating for expired-but-not-updated
    objects — an object whose report lives for T is present for
    ``min(T, u)`` of each inter-update gap ``u``, giving the fraction
    ``E[min(T, u)] / E[u] = (T - T^2 / (4·UI)) / UI`` for T < 2·UI.
    """
    validity = policy.mean_validity(mean_speed)
    if math.isinf(validity):
        return 1.0
    two_ui = 2.0 * update_interval
    if validity >= two_ui:
        return 1.0
    expected_presence = validity - validity * validity / (2.0 * two_ui)
    return max(0.05, min(1.0, expected_presence / update_interval))
