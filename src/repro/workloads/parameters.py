"""Table 1 of the paper: workload parameters and their values.

Standard values (used when a parameter is not the one being varied) are
the paper's bold-face entries; where the scan of the paper is ambiguous
we use the values its text pins down (ExpT defaults to 2*UI = 120;
ExpD to the consistent 180 = 2*UI * mean speed; UI to 60).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ParameterSpec:
    """One row of Table 1."""

    name: str
    description: str
    values: Tuple[float, ...]
    standard: float


PAPER_PARAMETERS = (
    ParameterSpec(
        name="ExpT",
        description="Expiration duration (time interval until expiration)",
        values=(30.0, 60.0, 120.0, 180.0, 240.0),
        standard=120.0,
    ),
    ParameterSpec(
        name="ExpD",
        description="Expiration distance (distance traveled until expiration)",
        values=(45.0, 90.0, 180.0, 270.0, 360.0),
        standard=180.0,
    ),
    ParameterSpec(
        name="NewOb",
        description="Fraction of new objects",
        values=(0.0, 0.5, 1.0, 1.5, 2.0),
        standard=0.5,
    ),
    ParameterSpec(
        name="UI",
        description="Update interval length",
        values=(30.0, 60.0, 90.0, 120.0),
        standard=60.0,
    ),
)


def parameter(name: str) -> ParameterSpec:
    """Look up a Table 1 row by name."""
    for spec in PAPER_PARAMETERS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown workload parameter: {name}")


#: The paper's special case: ExpT = 30 workloads use W = 15 instead of
#: W = UI / 2 = 30 (Section 5.1).
SHORT_EXPT_WINDOW = {30.0: 15.0}


def querying_window(update_interval: float, expt: float = None) -> float:
    """W for a workload: UI/2, except W = 15 when ExpT = 30."""
    if expt is not None and expt in SHORT_EXPT_WINDOW:
        return SHORT_EXPT_WINDOW[expt]
    return update_interval / 2.0
