"""The network-based workload of Section 5.1.

Objects ("cars") move between twenty uniformly placed destinations
("cities") connected by 380 one-way routes (a fully connected digraph)
in a 1000 km x 1000 km space.  Each object belongs to one of three speed
groups (0.75, 1.5 or 3 km/min).  Over the first sixth of a route it
accelerates from standstill to its maximum speed, cruises for the middle
two thirds, and decelerates over the last sixth.  Reports are issued at
the start of each route and during the acceleration and deceleration
stretches, in numbers chosen so the mean inter-report gap approximates
the target update interval UI.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .base import Workload
from .expiration import ExpirationPolicy, FixedPeriod, estimate_live_fraction
from .queries import QueryProfile
from .stream import Report, StreamParams, build_stream

Point = Tuple[float, float]

#: The paper's three maximum speeds in km/min (45, 90, 180 km/h).
SPEED_GROUPS = (0.75, 1.5, 3.0)


@dataclass(frozen=True)
class NetworkParams:
    """Knobs of the network workload generator.

    ``target_population`` is the desired *average number of leaf
    entries*; when expirations outpace updates the generator simulates
    proportionally more objects, as the paper's generator does.
    """

    target_population: int = 100_000
    insertions: int = 1_000_000
    update_interval: float = 60.0
    querying_window: Optional[float] = None  # defaults to UI / 2
    new_object_fraction: float = 0.0
    space: float = 1000.0
    destinations: int = 20
    speed_groups: Tuple[float, ...] = SPEED_GROUPS
    queries_per_insertions: int = 100
    seed: int = 0

    @property
    def window(self) -> float:
        if self.querying_window is not None:
            return self.querying_window
        return self.update_interval / 2.0


class RouteNetwork:
    """Destinations plus the derived fully connected route graph."""

    def __init__(self, params: NetworkParams, rng: random.Random):
        self.space = params.space
        self.destinations: List[Point] = [
            (rng.uniform(0, params.space), rng.uniform(0, params.space))
            for _ in range(params.destinations)
        ]

    @property
    def route_count(self) -> int:
        """One-way routes in the fully connected digraph (20 -> 380)."""
        n = len(self.destinations)
        return n * (n - 1)

    def random_route(self, rng: random.Random) -> Tuple[Point, Point]:
        n = len(self.destinations)
        i = rng.randrange(n)
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        return self.destinations[i], self.destinations[j]

    def random_destination(
        self, rng: random.Random, exclude: Point
    ) -> Point:
        while True:
            d = self.destinations[rng.randrange(len(self.destinations))]
            if d != exclude:
                return d


def _route_reports(
    t_start: float,
    origin: Point,
    dest: Point,
    vmax: float,
    update_interval: float,
) -> Iterator[Report]:
    """Reports along one route: start-of-route plus accel/decel updates.

    The speed profile is the paper's: linear acceleration over the first
    sixth of the route, cruising over the middle two thirds, linear
    deceleration over the last sixth.  Updates are spread over the
    acceleration and deceleration stretches; their count targets a mean
    inter-report gap of the update interval.
    """
    dx = dest[0] - origin[0]
    dy = dest[1] - origin[1]
    length = math.hypot(dx, dy)
    if length <= 1e-9:
        return
    ux, uy = dx / length, dy / length
    t_accel = length / (3.0 * vmax)   # covers length/6 from standstill
    t_cruise = 2.0 * length / (3.0 * vmax)
    total = 2.0 * t_accel + t_cruise
    # The start-of-route report counts toward the budget, so a route of
    # duration T carries about T / UI reports in total.
    updates = max(1, round(total / update_interval) - 1)
    n_accel = (updates + 1) // 2
    n_decel = updates - n_accel

    def at(t_offset: float) -> Report:
        if t_offset <= t_accel:
            speed = vmax * t_offset / t_accel
            dist = 0.5 * vmax * t_offset * t_offset / t_accel
        elif t_offset <= t_accel + t_cruise:
            speed = vmax
            dist = length / 6.0 + vmax * (t_offset - t_accel)
        else:
            into = t_offset - t_accel - t_cruise
            speed = vmax * (1.0 - into / t_accel)
            dist = 5.0 * length / 6.0 + vmax * into - 0.5 * vmax * into * into / t_accel
        pos = (origin[0] + ux * dist, origin[1] + uy * dist)
        vel = (ux * speed, uy * speed)
        return (t_start + t_offset, pos, vel, speed)

    yield at(0.0)
    # Acceleration-stretch updates; the last lands exactly at cruise
    # start, making the cruise prediction exact.
    for i in range(n_accel):
        yield at(t_accel * (i + 1) / n_accel)
    decel_start = t_accel + t_cruise
    for i in range(n_decel):
        yield at(decel_start + t_accel * (i + 0.5) / n_decel)


def network_journey_factory(params: NetworkParams, network: RouteNetwork):
    """Journey factory: endless route-to-route travel for one object."""

    def factory(rng: random.Random, start_time: float) -> Iterator[Report]:
        vmax = params.speed_groups[rng.randrange(len(params.speed_groups))]

        def journey() -> Iterator[Report]:
            origin, dest = network.random_route(rng)
            # First placement: a random position along a random route;
            # the object drives the remainder of that route.
            frac = rng.random()
            origin = (
                origin[0] + (dest[0] - origin[0]) * frac,
                origin[1] + (dest[1] - origin[1]) * frac,
            )
            t = start_time
            while True:
                last_t = t
                for report in _route_reports(
                    t, origin, dest, vmax, params.update_interval
                ):
                    last_t = report[0]
                    yield report
                # Arrive and immediately head for a new destination.
                length = math.dist(origin, dest)
                t = t + 4.0 * length / (3.0 * vmax)
                t = max(t, last_t)
                origin, dest = dest, network.random_destination(rng, dest)

        return journey()

    return factory


def mean_reported_speed(params: NetworkParams) -> float:
    """Mean of the group maxima, discounted for accel/decel stretches."""
    # Time-weighted mean speed over a route: distance L in time 4L/(3v)
    # gives an average of 0.75 * vmax.
    return 0.75 * sum(params.speed_groups) / len(params.speed_groups)


def generate_network_workload(
    params: NetworkParams,
    policy: Optional[ExpirationPolicy] = None,
) -> Workload:
    """Build the full network workload (Section 5.1).

    Args:
        params: generator knobs; defaults reproduce the paper's setup.
        policy: expiration policy; defaults to ExpT = 2 * UI.
    """
    if policy is None:
        policy = FixedPeriod(2.0 * params.update_interval)
    rng = random.Random(params.seed)
    network = RouteNetwork(params, rng)
    fraction = estimate_live_fraction(
        policy, params.update_interval, mean_reported_speed(params)
    )
    population = max(1, math.ceil(params.target_population / fraction))
    stream = StreamParams(
        population=population,
        insertions=params.insertions,
        update_interval=params.update_interval,
        querying_window=params.window,
        new_object_fraction=params.new_object_fraction,
        queries_per_insertions=params.queries_per_insertions,
        seed=params.seed,
    )
    profile = QueryProfile(space=params.space)
    workload = build_stream(
        name=f"network[{policy.describe()},UI={params.update_interval:g},"
        f"NewOb={params.new_object_fraction:g}]",
        params=stream,
        journey_factory=network_journey_factory(params, network),
        policy=policy,
        query_profile=profile,
    )
    workload.params["kind"] = "network"
    workload.params["routes"] = network.route_count
    return workload
