"""Synthetic workload generation (Section 5.1)."""

from .base import DeleteOp, InsertOp, Operation, QueryOp, UpdateOp, Workload
from .expiration import (
    ExpirationPolicy,
    FixedDistance,
    FixedPeriod,
    NeverExpire,
    estimate_live_fraction,
)
from .io import load_workload, save_workload
from .network import (
    NetworkParams,
    RouteNetwork,
    SPEED_GROUPS,
    generate_network_workload,
)
from .parameters import PAPER_PARAMETERS, ParameterSpec, parameter, querying_window
from .queries import QueryGenerator, QueryProfile
from .stream import StreamParams, build_stream
from .uniform import UniformParams, generate_uniform_workload

__all__ = [
    "DeleteOp",
    "ExpirationPolicy",
    "FixedDistance",
    "FixedPeriod",
    "InsertOp",
    "NetworkParams",
    "NeverExpire",
    "Operation",
    "PAPER_PARAMETERS",
    "ParameterSpec",
    "QueryGenerator",
    "QueryOp",
    "QueryProfile",
    "RouteNetwork",
    "SPEED_GROUPS",
    "StreamParams",
    "UniformParams",
    "UpdateOp",
    "Workload",
    "build_stream",
    "estimate_live_fraction",
    "generate_network_workload",
    "generate_uniform_workload",
    "load_workload",
    "parameter",
    "save_workload",
    "querying_window",
]
