"""Arrival pacing: mapping workload operation times onto request arrivals.

The serving frontend treats a workload's operation stream as a request
flow: operation ``i`` *arrives* at the frontend at some time ``a_i`` and
is queued, shed or served by a single logical server.  By default an
operation arrives exactly at its workload timestamp, so an unloaded
frontend replays the stream at the generator's natural cadence.

An :class:`ArrivalPacer` additionally models *overload phases*: inside a
:class:`BurstWindow` the inter-arrival gaps are compressed by a factor,
as if the reporting population had briefly multiplied — arrivals stay
strictly ordered, only their spacing shrinks, so the request *content*
(and the index's semantic timeline, which always follows the operation
timestamps) is untouched.  Everything here is pure arithmetic on the
operation times: the same workload and bursts always produce the same
arrival schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class BurstWindow:
    """One overload phase: compressed arrivals over a time window.

    Operations whose *workload* timestamps fall in ``[start, end)``
    arrive ``compress`` times faster than they were generated (their
    inter-arrival gaps are divided by ``compress``).  A factor of 1 is
    a no-op; factors below 1 stretch arrivals instead.
    """

    start: float
    end: float
    compress: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"burst window end {self.end} precedes start {self.start}"
            )
        if self.compress <= 0:
            raise ValueError(
                f"burst compression must be positive, got {self.compress}"
            )

    def covers(self, t: float) -> bool:
        """Whether workload time ``t`` lies inside the window."""
        return self.start <= t < self.end


class ArrivalPacer:
    """Derives per-operation arrival times from operation timestamps.

    Parameters
    ----------
    bursts : sequence of BurstWindow, optional
        Overload phases; windows are applied by the workload time of
        each gap's *end* operation.  No bursts means arrivals equal the
        operation timestamps exactly.
    """

    def __init__(self, bursts: Sequence[BurstWindow] = ()):
        self.bursts = tuple(bursts)

    def _factor(self, t: float) -> float:
        for burst in self.bursts:
            if burst.covers(t):
                return burst.compress
        return 1.0

    def arrivals(self, ops) -> List[float]:
        """Arrival time of every operation, in order.

        Each gap between consecutive operation timestamps is divided by
        the compression factor in force at the later operation's
        workload time; the first operation arrives at its own
        timestamp.  The result is nondecreasing whenever the operation
        timestamps are.
        """
        out: List[float] = []
        prev_t = prev_a = None
        for op in ops:
            t = op.time
            if prev_t is None:
                arrival = t
            else:
                arrival = prev_a + max(0.0, t - prev_t) / self._factor(t)
            out.append(arrival)
            prev_t, prev_a = t, arrival
        return out
