"""Workloads: timestamped operation streams (Section 5.1).

A workload intermixes insertions, updates (a deletion immediately
followed by an insertion) and queries, "simulating index usage across a
period of time".  Workload generators produce these streams; the
experiment runner replays them against index adapters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

from ..geometry.kinematics import MovingPoint
from ..geometry.queries import SpatioTemporalQuery


@dataclass(frozen=True)
class InsertOp:
    """An object reports its first position (or re-appears)."""

    time: float
    oid: int
    point: MovingPoint


@dataclass(frozen=True)
class UpdateOp:
    """An object reports fresh parameters: delete old, insert new."""

    time: float
    oid: int
    old_point: MovingPoint
    new_point: MovingPoint


@dataclass(frozen=True)
class DeleteOp:
    """An object explicitly leaves the service."""

    time: float
    oid: int
    point: MovingPoint


@dataclass(frozen=True)
class QueryOp:
    """A timeslice/window/moving query issued at ``time``."""

    time: float
    query: SpatioTemporalQuery


@dataclass(frozen=True)
class KnnOp:
    """A k-nearest-neighbor request issued at ``time``.

    Asks for the ``k`` objects nearest to location ``x`` at evaluation
    time ``t``; ``bound_sq`` is an optional squared-distance cutoff a
    scatter layer threads through to prune a member's descent (the
    shard router tightens it shard by shard).  Not part of the
    :data:`Operation` routing union — kNN rides its own scatter path,
    not the report stream.
    """

    time: float
    x: Tuple[float, ...]
    t: float
    k: int
    bound_sq: float = math.inf


Operation = Union[InsertOp, UpdateOp, DeleteOp, QueryOp]


@dataclass
class Workload:
    """A generated operation stream plus its generation parameters."""

    name: str
    ops: List[Operation] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def insertion_count(self) -> int:
        """Insertions in the paper's sense: inserts plus update-inserts."""
        return sum(
            1 for op in self.ops if isinstance(op, (InsertOp, UpdateOp))
        )

    @property
    def query_count(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, QueryOp))

    def validate(self) -> None:
        """Check timestamps are sorted and points are well-formed."""
        last = float("-inf")
        for op in self.ops:
            if op.time < last:
                raise ValueError(
                    f"operation at {op.time} precedes earlier {last}"
                )
            last = op.time
