"""Workload persistence: save/load operation streams as JSON lines.

Large workloads are expensive to generate (and, at paper scale, big); a
saved trace lets experiments re-run against the exact same stream —
useful for regression comparisons and for sharing workloads between
machines.  The format is line-delimited JSON: a header line with the
workload name and parameters, then one line per operation.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from ..geometry.kinematics import MovingPoint
from ..geometry.queries import (
    MovingQuery,
    SpatioTemporalQuery,
    TimesliceQuery,
    WindowQuery,
)
from ..geometry.rect import Rect
from .base import DeleteOp, InsertOp, Operation, QueryOp, UpdateOp, Workload

_FORMAT_VERSION = 1


def _encode_float(value: float):
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _point_to_json(point: MovingPoint) -> dict:
    return {
        "pos": list(point.pos),
        "vel": list(point.vel),
        "t_ref": point.t_ref,
        "t_exp": _encode_float(point.t_exp),
    }


def _point_from_json(data: dict) -> MovingPoint:
    return MovingPoint(
        tuple(data["pos"]),
        tuple(data["vel"]),
        data["t_ref"],
        _decode_float(data["t_exp"]),
    )


def _query_to_json(query: SpatioTemporalQuery) -> dict:
    if isinstance(query, TimesliceQuery):
        return {
            "kind": "timeslice",
            "lo": list(query.rect.lo), "hi": list(query.rect.hi),
            "t": query.t,
        }
    if isinstance(query, WindowQuery):
        return {
            "kind": "window",
            "lo": list(query.rect.lo), "hi": list(query.rect.hi),
            "t1": query.t1, "t2": query.t2,
        }
    if isinstance(query, MovingQuery):
        return {
            "kind": "moving",
            "lo1": list(query.rect1.lo), "hi1": list(query.rect1.hi),
            "lo2": list(query.rect2.lo), "hi2": list(query.rect2.hi),
            "t1": query.t1, "t2": query.t2,
        }
    raise TypeError(f"unknown query type {type(query).__name__}")


def _query_from_json(data: dict) -> SpatioTemporalQuery:
    kind = data["kind"]
    if kind == "timeslice":
        return TimesliceQuery(
            Rect(tuple(data["lo"]), tuple(data["hi"])), data["t"]
        )
    if kind == "window":
        return WindowQuery(
            Rect(tuple(data["lo"]), tuple(data["hi"])),
            data["t1"], data["t2"],
        )
    if kind == "moving":
        return MovingQuery(
            Rect(tuple(data["lo1"]), tuple(data["hi1"])),
            Rect(tuple(data["lo2"]), tuple(data["hi2"])),
            data["t1"], data["t2"],
        )
    raise ValueError(f"unknown query kind {kind!r}")


def _op_to_json(op: Operation) -> dict:
    if isinstance(op, InsertOp):
        return {"op": "insert", "time": op.time, "oid": op.oid,
                "point": _point_to_json(op.point)}
    if isinstance(op, UpdateOp):
        return {"op": "update", "time": op.time, "oid": op.oid,
                "old": _point_to_json(op.old_point),
                "new": _point_to_json(op.new_point)}
    if isinstance(op, DeleteOp):
        return {"op": "delete", "time": op.time, "oid": op.oid,
                "point": _point_to_json(op.point)}
    if isinstance(op, QueryOp):
        return {"op": "query", "time": op.time,
                "query": _query_to_json(op.query)}
    raise TypeError(f"unknown operation type {type(op).__name__}")


def _op_from_json(data: dict) -> Operation:
    kind = data["op"]
    if kind == "insert":
        return InsertOp(data["time"], data["oid"],
                        _point_from_json(data["point"]))
    if kind == "update":
        return UpdateOp(data["time"], data["oid"],
                        _point_from_json(data["old"]),
                        _point_from_json(data["new"]))
    if kind == "delete":
        return DeleteOp(data["time"], data["oid"],
                        _point_from_json(data["point"]))
    if kind == "query":
        return QueryOp(data["time"], _query_from_json(data["query"]))
    raise ValueError(f"unknown operation kind {kind!r}")


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to a JSON-lines trace file."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "format": "repro-workload",
            "version": _FORMAT_VERSION,
            "name": workload.name,
            "params": {k: str(v) if not isinstance(v, (int, float, bool))
                       else v for k, v in workload.params.items()},
        }
        handle.write(json.dumps(header) + "\n")
        for op in workload.ops:
            handle.write(json.dumps(_op_to_json(op)) + "\n")


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload back from a JSON-lines trace file."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty workload file")
        header = json.loads(header_line)
        if header.get("format") != "repro-workload":
            raise ValueError(f"{path}: not a repro workload trace")
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        ops = [_op_from_json(json.loads(line)) for line in handle if line.strip()]
    return Workload(header["name"], ops, dict(header.get("params", {})))
