"""Query generation (Section 5.1).

Timeslice, window and moving queries are generated with probabilities
0.6 / 0.2 / 0.2.  Temporal parts fall in a window of length W starting
at the current time; the spatial part of each query is a square covering
0.25 % of the space.  Timeslice and window queries land at random
locations; a moving query's center follows the trajectory of one of the
points currently in the index.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..geometry.kinematics import MovingPoint
from ..geometry.queries import (
    MovingQuery,
    SpatioTemporalQuery,
    TimesliceQuery,
    WindowQuery,
)
from ..geometry.rect import Rect


@dataclass(frozen=True)
class QueryProfile:
    """Shape parameters of the generated query mix."""

    space: float = 1000.0
    area_fraction: float = 0.0025
    timeslice_probability: float = 0.6
    window_probability: float = 0.2
    moving_probability: float = 0.2

    def __post_init__(self) -> None:
        total = (
            self.timeslice_probability
            + self.window_probability
            + self.moving_probability
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"query probabilities sum to {total}, not 1")

    @property
    def side(self) -> float:
        """Side length of the square query region."""
        return self.space * math.sqrt(self.area_fraction)


class QueryGenerator:
    """Draws queries per the paper's mix."""

    def __init__(self, profile: QueryProfile, rng: random.Random):
        self.profile = profile
        self.rng = rng

    def _square_at(self, cx: float, cy: float) -> Rect:
        half = self.profile.side / 2.0
        space = self.profile.space
        lo_x = min(max(cx - half, 0.0), space - 2 * half)
        lo_y = min(max(cy - half, 0.0), space - 2 * half)
        return Rect((lo_x, lo_y), (lo_x + 2 * half, lo_y + 2 * half))

    def _random_square(self) -> Rect:
        side = self.profile.side
        space = self.profile.space
        x = self.rng.uniform(0.0, space - side)
        y = self.rng.uniform(0.0, space - side)
        return Rect((x, y), (x + side, y + side))

    def generate(
        self,
        now: float,
        window: float,
        tracked: Optional[Sequence[MovingPoint]] = None,
    ) -> SpatioTemporalQuery:
        """One query with temporal parts in [now, now + window].

        Args:
            now: query issue time.
            window: the querying-window length W.
            tracked: points currently in the index; a moving query's
                center follows one of them.  When absent, moving queries
                degrade to window queries.
        """
        rng = self.rng
        roll = rng.random()
        t_a = now + rng.uniform(0.0, window)
        t_b = now + rng.uniform(0.0, window)
        t1, t2 = min(t_a, t_b), max(t_a, t_b)
        if roll < self.profile.timeslice_probability:
            return TimesliceQuery(self._random_square(), t1)
        if (
            roll < self.profile.timeslice_probability + self.profile.window_probability
            or not tracked
        ):
            return WindowQuery(self._random_square(), t1, t2)
        target = rng.choice(tracked)
        c1 = target.position_at(t1)
        c2 = target.position_at(t2)
        return MovingQuery(
            self._square_at(*c1), self._square_at(*c2), t1, t2
        )
