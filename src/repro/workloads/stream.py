"""Shared machinery turning per-object journeys into operation streams.

Both workload families (network-based and uniform, Section 5.1) simulate
a population of objects that periodically report (position, velocity)
samples.  This module merges per-object report streams into a single
time-ordered operation stream, interleaves queries (one per 100
insertions), assigns expiration times, and implements the "turned off"
objects of the NewOb experiments: a turned-off object silently stops
reporting and a replacement object is introduced in its place.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..geometry.kinematics import MovingPoint
from .base import InsertOp, Operation, QueryOp, UpdateOp, Workload
from .expiration import ExpirationPolicy
from .queries import QueryGenerator, QueryProfile

#: One report: (time, position, velocity, speed).
Report = Tuple[float, Tuple[float, float], Tuple[float, float], float]

#: Produces an endless report stream for one object.
JourneyFactory = Callable[[random.Random, float], Iterator[Report]]


@dataclass(frozen=True)
class StreamParams:
    """Parameters of the merged operation stream.

    Attributes:
        population: number of simultaneously simulated objects.
        insertions: total insertions to generate (inserts + update-inserts);
            the paper uses one million.
        update_interval: target mean time between an object's reports (UI).
        querying_window: W — how far queries look into the future.
        new_object_fraction: NewOb — fraction of the population silently
            replaced by new objects over the course of the workload.
        queries_per_insertions: one query per this many insertions.
        start_ramp: objects send their first positions at times uniform
            in [0, start_ramp] ("the index is populated gradually").
        seed: RNG seed.
    """

    population: int
    insertions: int
    update_interval: float
    querying_window: float
    new_object_fraction: float = 0.0
    queries_per_insertions: int = 100
    start_ramp: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be at least 1")
        if self.insertions < 1:
            raise ValueError("insertions must be at least 1")
        if self.update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if self.new_object_fraction < 0:
            raise ValueError("new_object_fraction must be non-negative")

    @property
    def ramp(self) -> float:
        if self.start_ramp is not None:
            return self.start_ramp
        return self.update_interval

    @property
    def estimated_duration(self) -> float:
        """Rough workload length: reports arrive at rate N / UI."""
        return self.insertions * self.update_interval / self.population


class _ObjectState:
    __slots__ = ("oid", "journey", "last_point", "alive")

    def __init__(self, oid: int, journey: Iterator[Report]):
        self.oid = oid
        self.journey = journey
        self.last_point: Optional[MovingPoint] = None
        self.alive = True


def build_stream(
    name: str,
    params: StreamParams,
    journey_factory: JourneyFactory,
    policy: ExpirationPolicy,
    query_profile: QueryProfile,
) -> Workload:
    """Merge object journeys into a time-ordered workload."""
    rng = random.Random(params.seed)
    query_gen = QueryGenerator(query_profile, random.Random(params.seed + 1))
    ops: List[Operation] = []

    heap: List[Tuple[float, int, _ObjectState]] = []
    seq = 0
    alive_oids: List[int] = []
    alive_pos: Dict[int, int] = {}
    states: Dict[int, _ObjectState] = {}
    current_points: Dict[int, MovingPoint] = {}
    next_oid = 0

    def spawn(start_time: float) -> None:
        nonlocal next_oid, seq
        oid = next_oid
        next_oid += 1
        state = _ObjectState(oid, journey_factory(rng, start_time))
        states[oid] = state
        alive_pos[oid] = len(alive_oids)
        alive_oids.append(oid)
        try:
            report = next(state.journey)
        except StopIteration:  # pragma: no cover - journeys are endless
            return
        heapq.heappush(heap, (report[0], seq, (state, report)))
        seq += 1

    def kill_random(now: float) -> None:
        if not alive_oids:
            return
        victim = alive_oids[rng.randrange(len(alive_oids))]
        _remove_alive(victim)
        states[victim].alive = False
        spawn(now)

    def _remove_alive(oid: int) -> None:
        pos = alive_pos.pop(oid)
        last = alive_oids[-1]
        alive_oids[pos] = last
        alive_oids.pop()
        if last != oid:
            alive_pos[last] = pos

    for _ in range(params.population):
        spawn(rng.uniform(0.0, params.ramp))

    turnoffs = sorted(
        rng.uniform(0.0, params.estimated_duration)
        for _ in range(round(params.new_object_fraction * params.population))
    )
    turnoff_idx = 0

    insertions = 0
    since_query = 0
    while insertions < params.insertions and heap:
        t, _, (state, report) = heapq.heappop(heap)
        while turnoff_idx < len(turnoffs) and turnoffs[turnoff_idx] <= t:
            turnoff_idx += 1
            kill_random(t)
        if not state.alive:
            current_points.pop(state.oid, None)
            continue
        _, pos, vel, speed = report
        point = MovingPoint(pos, vel, t, policy.expiration(t, speed))
        if state.last_point is None:
            ops.append(InsertOp(t, state.oid, point))
        else:
            ops.append(UpdateOp(t, state.oid, state.last_point, point))
        state.last_point = point
        current_points[state.oid] = point
        insertions += 1
        since_query += 1
        if since_query >= params.queries_per_insertions:
            since_query = 0
            tracked = _sample_points(rng, alive_oids, current_points)
            ops.append(
                QueryOp(t, query_gen.generate(t, params.querying_window, tracked))
            )
        try:
            nxt = next(state.journey)
        except StopIteration:  # pragma: no cover - journeys are endless
            continue
        heapq.heappush(heap, (nxt[0], seq, (state, nxt)))
        seq += 1

    workload = Workload(name=name, ops=ops)
    workload.params = {
        "population": params.population,
        "insertions": insertions,
        "update_interval": params.update_interval,
        "querying_window": params.querying_window,
        "new_object_fraction": params.new_object_fraction,
        "expiration": policy.describe(),
        "seed": params.seed,
    }
    return workload


def _sample_points(
    rng: random.Random,
    alive_oids: List[int],
    current_points: Dict[int, MovingPoint],
    attempts: int = 8,
) -> List[MovingPoint]:
    """A few currently indexed points for moving-query targets."""
    picks: List[MovingPoint] = []
    for _ in range(attempts):
        if not alive_oids:
            break
        oid = alive_oids[rng.randrange(len(alive_oids))]
        point = current_points.get(oid)
        if point is not None:
            picks.append(point)
    return picks
