"""Disk cache for experiment runs.

Replaying a workload takes seconds to minutes depending on scale; the
figure benchmarks share many runs (Figures 14-16 are three views of the
same sweep), so completed runs are cached as JSON keyed by a hash of the
workload signature, the adapter flavour and the scale.

Set ``REPRO_CACHE_DIR`` to relocate the cache, or ``REPRO_NO_CACHE=1``
to disable it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from .runner import RunResult

_CACHE_VERSION = 4


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return Path(root)


def run_key(adapter_label: str, workload_signature: dict, scale_name: str) -> str:
    """Stable key identifying one (workload, adapter, scale) run."""
    blob = json.dumps(
        {
            "version": _CACHE_VERSION,
            "adapter": adapter_label,
            "workload": workload_signature,
            "scale": scale_name,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def load_result(key: str) -> Optional[RunResult]:
    """Fetch a cached run, or None."""
    if not cache_enabled():
        return None
    path = cache_dir() / f"{key}.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    field_names = {f.name for f in dataclasses.fields(RunResult)}
    filtered = {k: v for k, v in payload.items() if k in field_names}
    try:
        return RunResult(**filtered)
    except TypeError:
        return None


def store_result(key: str, result: RunResult) -> None:
    """Persist a run result."""
    if not cache_enabled():
        return
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    payload = dataclasses.asdict(result)
    (directory / f"{key}.json").write_text(
        json.dumps(payload, default=str, indent=1)
    )
