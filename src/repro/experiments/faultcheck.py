"""Crash-consistency checker: crash at every write, recover, compare.

The durability guarantee this package makes is concrete: whatever
physical write a crash interrupts, reopening the directory recovers the
index to its last *committed* operation, and that recovered index
answers all three query types exactly as a never-crashed replay of the
same operation prefix would.  This module turns that sentence into a
machine check.

The check has three parts:

1. A *recording* pass replays the workload against a durable tree whose
   fault injector merely counts physical writes, producing the total
   write count and the committed operation sequence number after every
   operation.
2. For every write index (or every ``stride``-th one) and every fault
   mode, a fresh replay crashes at exactly that write — the process
   "dies" mid-write via :class:`~repro.storage.faults.SimulatedCrash`
   with the file torn or bit-flipped exactly as a real crash could
   leave it — and the directory is reopened, running WAL recovery.
3. The recovered tree is compared against an *oracle*: a clean replay
   of the committed operation prefix, closed and reopened so both sides
   saw the same float32 page round-trip.  Query answers for all three
   query types and the structural census must match.

A crash before the first commit legitimately leaves nothing durable;
such an open failure is accepted if and only if the crashed directory's
write-ahead log contains no intact commit record.
"""

from __future__ import annotations

import os
import tempfile
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.clock import SimulationClock
from ..core.config import TreeConfig
from ..core.tree import MovingObjectTree
from ..geometry import MovingQuery, Rect, TimesliceQuery, WindowQuery
from ..storage.faults import MODES, FaultInjector, SimulatedCrash
from ..storage.pagefile import WAL_FILENAME
from ..storage.wal import COMMIT_RECORD, scan_wal
from ..workloads.base import DeleteOp, InsertOp, Operation, QueryOp, UpdateOp
from ..workloads.expiration import FixedPeriod
from ..workloads.uniform import UniformParams, generate_uniform_workload


@dataclass(frozen=True)
class CrashOutcome:
    """What happened at one (write index, fault mode) crash point.

    Attributes:
        write_index: the 1-based physical write the crash interrupted.
        mode: the fault mode (``kill``, ``torn`` or ``bitflip``).
        op_seq: committed operation sequence recovered (0 when the
            crash preceded the first commit and nothing was durable).
        ok: whether recovery met the durability guarantee.
        detail: human-readable diagnosis when ``ok`` is false.
    """

    write_index: int
    mode: str
    op_seq: int
    ok: bool
    detail: str = ""


@dataclass
class FaultCheckReport:
    """Aggregate result of a crash-at-every-write matrix run."""

    total_writes: int
    op_count: int
    stride: int
    modes: Tuple[str, ...]
    outcomes: List[CrashOutcome] = field(default_factory=list)
    wal_skipped_expired: int = 0

    @property
    def crash_points(self) -> int:
        """Number of (write index, mode) pairs exercised."""
        return len(self.outcomes)

    @property
    def failures(self) -> List[CrashOutcome]:
        """Crash points where recovery broke the guarantee."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def passed(self) -> bool:
        """Whether every crash point recovered correctly."""
        return not self.failures

    def summary(self) -> str:
        """One line: crash points, writes covered, pass/fail."""
        verdict = "PASS" if self.passed else f"FAIL({len(self.failures)})"
        return (
            f"faultcheck {verdict}: {self.crash_points} crash points "
            f"({self.total_writes} writes x {len(self.modes)} modes, "
            f"stride {self.stride}) over {self.op_count} ops; "
            f"expired-skips {self.wal_skipped_expired}"
        )


def default_workload(insertions: int = 80, seed: int = 0):
    """A small mixed workload sized for an exhaustive crash matrix."""
    params = UniformParams(
        target_population=40,
        insertions=insertions,
        update_interval=10.0,
        space=100.0,
        queries_per_insertions=10,
        seed=seed,
    )
    return generate_uniform_workload(params, FixedPeriod(20.0))


def _atomic_ops(ops: Sequence[Operation]) -> List[tuple]:
    """Flatten workload operations into single-commit index actions.

    An :class:`~repro.workloads.base.UpdateOp` is a deletion followed by
    an insertion — *two* commits — so recovery can legitimately land
    between them.  Flattening first keeps the committed-prefix mapping
    exact at commit granularity.
    """
    atoms: List[tuple] = []
    for op in ops:
        if isinstance(op, InsertOp):
            atoms.append(("insert", op.time, op.oid, op.point))
        elif isinstance(op, UpdateOp):
            atoms.append(("delete", op.time, op.oid, op.old_point))
            atoms.append(("insert", op.time, op.oid, op.new_point))
        elif isinstance(op, DeleteOp):
            atoms.append(("delete", op.time, op.oid, op.point))
        elif isinstance(op, QueryOp):
            atoms.append(("query", op.time, op.query))
        else:  # pragma: no cover - exhaustive over Operation
            raise TypeError(f"unknown operation {op!r}")
    return atoms


def _apply(tree: MovingObjectTree, clock: SimulationClock, atom: tuple):
    """Replay one atomic action against a raw tree."""
    kind, time = atom[0], atom[1]
    clock.advance_to(time)
    if kind == "insert":
        tree.insert(atom[2], atom[3])
    elif kind == "delete":
        tree.delete(atom[2], atom[3])
    else:
        tree.query(atom[2])


def _space_extent(ops: Sequence[Operation]) -> Tuple[Tuple[float, ...], ...]:
    """Per-dimension (lo, hi) bounds over every point in the workload."""
    points = []
    for op in ops:
        if isinstance(op, InsertOp) or isinstance(op, DeleteOp):
            points.append(op.point)
        elif isinstance(op, UpdateOp):
            points.append(op.old_point)
            points.append(op.new_point)
    if not points:
        raise ValueError("workload contains no positions to probe")
    dims = len(points[0].pos)
    lo = [min(p.pos[d] for p in points) for d in range(dims)]
    hi = [max(p.pos[d] for p in points) for d in range(dims)]
    return tuple(lo), tuple(hi)


def _probe_queries(lo, hi, now: float):
    """One query of each of the paper's three types, spanning the space."""
    mid = tuple((a + b) / 2.0 for a, b in zip(lo, hi))
    full = Rect(lo, hi)
    lower = Rect(lo, mid)
    upper = Rect(mid, hi)
    return (
        TimesliceQuery(full, now + 1.0),
        WindowQuery(lower, now, now + 5.0),
        MovingQuery(lower, upper, now, now + 5.0),
    )


def _reference_state(
    directory: str,
    ops: Sequence[Operation],
    prefix: int,
    config: TreeConfig,
    lo,
    hi,
):
    """Answers and census of a clean replay of ``prefix`` ops, reopened.

    Closing and reopening forces the same float32 page round-trip a
    recovered tree went through, making the comparison byte-fair.
    """
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(directory, config, clock)
    for op in ops[:prefix]:
        _apply(tree, clock, op)
    tree.close()
    reopened = MovingObjectTree.open_from(directory, config, SimulationClock())
    now = reopened.clock.time
    answers = tuple(
        tuple(sorted(reopened.query(q))) for q in _probe_queries(lo, hi, now)
    )
    audit = reopened.audit()
    reopened.close()
    return now, answers, (audit.nodes, audit.leaf_entries)


def run_faultcheck(
    workload=None,
    config: Optional[TreeConfig] = None,
    stride: int = 1,
    modes: Sequence[str] = MODES,
    seed: int = 0,
    progress: Optional[Callable[[CrashOutcome], None]] = None,
) -> FaultCheckReport:
    """Crash a workload replay at every ``stride``-th write and verify.

    Args:
        workload: operation stream to replay; defaults to a small mixed
            insert/update/delete/query stream sized for stride 1.
        config: member tree configuration; defaults to 512-byte pages
            with a 4-page buffer, the densest commit cadence.
        stride: check every ``stride``-th physical write (1 = all).
        modes: fault modes to exercise at each write index.
        seed: seed for the injector's torn-length / bit-position RNG.
        progress: optional callback invoked with every outcome.

    Returns:
        The populated :class:`FaultCheckReport`.
    """
    if workload is None:
        workload = default_workload(seed=seed)
    if config is None:
        config = TreeConfig(page_size=512, buffer_pages=4)
    if stride < 1:
        raise ValueError(f"stride must be at least 1, got {stride}")
    lo, hi = _space_extent(workload.ops)
    ops = _atomic_ops(workload.ops)

    with tempfile.TemporaryDirectory(prefix="faultcheck-") as tmp:
        # Recording pass: count writes, map op prefix -> committed seq.
        counter = FaultInjector()
        clock = SimulationClock()
        recorder = MovingObjectTree.create_durable(
            os.path.join(tmp, "record"), config, clock, injector=counter
        )
        seq_after = [recorder.disk.op_seq]
        for op in ops:
            _apply(recorder, clock, op)
            seq_after.append(recorder.disk.op_seq)
        total_writes = counter.writes
        recorder.disk.abandon()

        report = FaultCheckReport(
            total_writes=total_writes,
            op_count=len(ops),
            stride=stride,
            modes=tuple(modes),
        )
        oracle: Dict[int, tuple] = {}

        for n in range(1, total_writes + 1, stride):
            for mode in modes:
                outcome = _check_crash_point(
                    tmp, ops, n, mode, config, seed, seq_after, lo, hi,
                    oracle, report,
                )
                report.outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
        return report


def _check_crash_point(
    tmp, ops, n, mode, config, seed, seq_after, lo, hi, oracle, report
) -> CrashOutcome:
    """Crash at write ``n`` in ``mode``, recover, compare to the oracle."""
    directory = os.path.join(tmp, f"crash-{n}-{mode}")
    clock = SimulationClock()
    injector = FaultInjector(crash_at_write=n, mode=mode, seed=seed)
    crashed = None
    try:
        crashed = MovingObjectTree.create_durable(
            directory, config, clock, injector=injector
        )
        for op in ops:
            _apply(crashed, clock, op)
    except SimulatedCrash:
        pass
    else:  # pragma: no cover - n never exceeds the recorded write count
        raise RuntimeError(f"replay finished before write {n}")
    finally:
        if crashed is not None:
            crashed.disk.abandon()

    try:
        recovered = MovingObjectTree.open_from(
            directory, config, SimulationClock()
        )
    except Exception as exc:
        records, _, _ = scan_wal(os.path.join(directory, WAL_FILENAME))
        committed = any(r.kind == COMMIT_RECORD for r in records)
        if committed:
            return CrashOutcome(
                n, mode, 0, False,
                f"open failed despite a committed WAL record: {exc}",
            )
        return CrashOutcome(n, mode, 0, True, "nothing committed")

    recovery = recovered.disk.recovery
    report.wal_skipped_expired += recovery.wal_skipped_expired
    op_seq = recovered.disk.op_seq
    prefix = bisect_right(seq_after, op_seq) - 1
    if prefix < 0 or seq_after[prefix] != op_seq:
        recovered.disk.abandon()
        return CrashOutcome(
            n, mode, op_seq, False,
            f"recovered op_seq {op_seq} matches no committed prefix",
        )

    if prefix not in oracle:
        oracle[prefix] = _reference_state(
            os.path.join(tmp, f"oracle-{prefix}"), ops, prefix, config, lo, hi
        )
    now, want_answers, want_audit = oracle[prefix]
    got_answers = tuple(
        tuple(sorted(recovered.query(q))) for q in _probe_queries(lo, hi, now)
    )
    audit = recovered.audit()
    got_audit = (audit.nodes, audit.leaf_entries)
    recovered.disk.abandon()

    if got_answers != want_answers:
        return CrashOutcome(
            n, mode, op_seq, False,
            f"query answers diverge from clean replay of {prefix} ops",
        )
    if recovery.wal_skipped_expired == 0 and got_audit != want_audit:
        return CrashOutcome(
            n, mode, op_seq, False,
            f"audit {got_audit} != clean replay audit {want_audit}",
        )
    return CrashOutcome(n, mode, op_seq, True)
