"""Chaos soak: drive a served workload through a scheduled fault script.

The soak harness is the serving layer's end-to-end acceptance test.  It
replays a Section 5.1 network workload twice:

1. An *oracle* pass: a pure-python brute-force replay over the exact
   float64 workload points, recording every query's answer set and each
   object's full report history.
2. A *served* pass: a durable tree behind a
   :class:`~repro.serve.frontend.ServiceFrontend`, with a
   :class:`FaultScript` injecting transient I/O bursts, one mid-run
   process kill (recovered via WAL replay) and a sustained overload
   phase (compressed arrivals).

It then asserts the serving SLOs:

* every non-degraded (``ok``) answer equals the oracle answer exactly;
* every degraded answer is explainable within expiration semantics —
  each *extra* object is backed by a genuinely reported motion that
  still matched the query inside its expiration window, and each
  *missing* object's latest report postdates the backing snapshot;
* the write backlog fully drains (nothing lost, nothing duplicated)
  and no write is ever shed;
* breaker trips, probes, recoveries and kills match the script's
  pinned expectations exactly;
* degraded staleness stays under the script's bound.

``repro soak`` runs the seeded default script and writes
``BENCH_soak.json``.  With ``--replica`` a :class:`ReplicaScenario`
rides on top: the primary ships its WAL to a tailing replica through a
faulty channel while online maintenance truncates the log, the kill is
answered by promotion instead of a reopen (audited for zero committed-
write loss), and the replication SLOs — bounded staleness, completed
truncation cycles, bounded WAL footprint — are asserted alongside the
serving ones.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.clock import SimulationClock
from ..core.config import TreeConfig
from ..core.tree import MovingObjectTree
from ..geometry.intersection import region_matches_point
from ..obs.metrics import MetricsRegistry
from ..obs.slo import default_serve_slos
from ..replication import (
    OnlineMaintainer,
    Replica,
    ReplicaLink,
    ShippingChannel,
    WalShipper,
)
from ..serve.frontend import FrontendConfig, ServiceFrontend, ServiceReport
from ..serve.retry import RetryPolicy
from ..serve.subscriptions import SubscriptionIndex
from ..storage.faults import FaultInjector
from ..workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp
from ..workloads.network import NetworkParams, generate_network_workload
from ..workloads.pacing import ArrivalPacer, BurstWindow


@dataclass(frozen=True)
class FaultScript:
    """A deterministic schedule of faults and overload for one soak run.

    Attributes
    ----------
    transient_writes : tuple of int
        1-based physical-write indices that fail transiently in the
        first process incarnation.
    transient_reads : tuple of int
        1-based guarded-read indices (reads are only counted while a
        query executes) that fail transiently in the first incarnation.
    kill_at_write : int, optional
        Physical write at which the first incarnation dies
        (:class:`~repro.storage.faults.SimulatedCrash`); ``None`` for
        no kill.
    post_kill_transient_writes, post_kill_transient_reads : tuple of int
        Transient schedules armed on the post-recovery incarnation.
    overload : tuple of float, optional
        ``(start, end, compress)``: workload times whose arrivals are
        compressed by ``compress`` (the sustained overload phase).
    seed : int
        Seed shared by the workload generator and the backoff jitter.
    staleness_bound : float
        Maximum tolerated degraded-answer staleness, workload seconds.
    expected_trips, expected_probes, expected_recoveries : int, optional
        Pinned breaker counts the run must reproduce exactly; ``None``
        skips the check (used while calibrating a new script).
    """

    transient_writes: Tuple[int, ...] = ()
    transient_reads: Tuple[int, ...] = ()
    kill_at_write: Optional[int] = None
    post_kill_transient_writes: Tuple[int, ...] = ()
    post_kill_transient_reads: Tuple[int, ...] = ()
    overload: Optional[Tuple[float, float, float]] = None
    seed: int = 0
    staleness_bound: float = 60.0
    expected_trips: Optional[int] = None
    expected_probes: Optional[int] = None
    expected_recoveries: Optional[int] = None

    def injector(self, incarnation: int) -> FaultInjector:
        """Build the fault injector for process incarnation ``incarnation``.

        Incarnation 0 carries the transient schedules plus the kill;
        every later incarnation (after WAL recovery) carries the
        post-kill schedules and never dies again.
        """
        if incarnation == 0:
            return FaultInjector(
                crash_at_write=self.kill_at_write,
                mode="kill",
                seed=self.seed,
                transient_writes=self.transient_writes,
                transient_reads=self.transient_reads,
            )
        return FaultInjector(
            seed=self.seed + incarnation,
            transient_writes=self.post_kill_transient_writes,
            transient_reads=self.post_kill_transient_reads,
        )

    def bursts(self) -> Tuple[BurstWindow, ...]:
        """The overload phase as arrival-pacing burst windows."""
        if self.overload is None:
            return ()
        start, end, compress = self.overload
        return (BurstWindow(start, end, compress),)

    def to_json(self) -> dict:
        """A JSON-serializable form (the documented fault-script format)."""
        payload = asdict(self)
        payload["transient_writes"] = list(self.transient_writes)
        payload["transient_reads"] = list(self.transient_reads)
        payload["post_kill_transient_writes"] = list(
            self.post_kill_transient_writes
        )
        payload["post_kill_transient_reads"] = list(
            self.post_kill_transient_reads
        )
        payload["overload"] = (
            list(self.overload) if self.overload is not None else None
        )
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "FaultScript":
        """Rebuild a script from its :meth:`to_json` form."""
        overload = payload.get("overload")
        return cls(
            transient_writes=tuple(payload.get("transient_writes", ())),
            transient_reads=tuple(payload.get("transient_reads", ())),
            kill_at_write=payload.get("kill_at_write"),
            post_kill_transient_writes=tuple(
                payload.get("post_kill_transient_writes", ())
            ),
            post_kill_transient_reads=tuple(
                payload.get("post_kill_transient_reads", ())
            ),
            overload=tuple(overload) if overload is not None else None,
            seed=payload.get("seed", 0),
            staleness_bound=payload.get("staleness_bound", 60.0),
            expected_trips=payload.get("expected_trips"),
            expected_probes=payload.get("expected_probes"),
            expected_recoveries=payload.get("expected_recoveries"),
        )


def default_fault_script(seed: int = 0) -> FaultScript:
    """The seeded default script ``repro soak`` runs.

    Two transient write bursts (each long enough to outlast the retry
    ladder and trip the breaker, with one fault left over to fail the
    first probe), a guarded-read hiccup during a query (retried
    successfully), one process kill with WAL recovery, a transient
    fault in the recovered incarnation, and a 25x arrival-compression
    overload phase.  The expected breaker counts are pinned from the
    recorded deterministic run.
    """
    return FaultScript(
        transient_writes=(2000, 2001, 2002, 2003, 8000, 8001, 8002, 8003),
        transient_reads=(1500,),
        kill_at_write=16000,
        post_kill_transient_writes=(200,),
        overload=(220.0, 260.0, 25.0),
        seed=seed,
        staleness_bound=30.0,
        expected_trips=2,
        expected_probes=4,
        expected_recoveries=2,
    )


@dataclass(frozen=True)
class ReplicaScenario:
    """The replication chaos scenario riding on a soak's fault script.

    When active, the soak's primary ships its WAL to a tailing replica
    through a faulty channel while an online maintainer truncates the
    log under it; the script's process kill is answered by *failover*
    (promotion) instead of a reopen, with a fresh follower re-seeded
    from the promoted primary.  The scenario's own SLOs are asserted on
    top of the serving ones.

    Attributes
    ----------
    poll_every : int
        Served requests between replica shipping polls.
    wal_soft_limit : int
        Primary WAL bytes that arm an online truncation cycle.
    chain_budget : int
        Free-chain slot writes per maintenance step.
    staleness_budget : float
        Maximum tolerated replica lag (index-clock seconds) — both the
        per-poll SLO budget and the run-level ``max_staleness`` bound.
    slo_target : float
        Target fraction of polls inside the budget.
    channel_transients : tuple of int
        1-based shipping-channel transfer indices that fail
        transiently (the transfer never happened; retried).
    channel_torn_at : int, optional
        Transfer at which the shipping connection dies mid-send,
        delivering torn bytes; ``None`` for no torn fault.
    min_truncations : int
        Truncation cycles the run must complete (across incarnations)
        for the WAL-footprint measurement to mean anything.
    footprint_bound : int
        Bound on the replication disk high-water mark (live primary
        WAL + archive segments + replica WAL), in bytes.
    expected_trips, expected_probes, expected_recoveries : int, optional
        Breaker pins for the *replicated* run (maintenance writes share
        the injector's write counter, so the script's own pins do not
        transfer); ``None`` skips, as in :class:`FaultScript`.
    """

    poll_every: int = 4
    wal_soft_limit: int = 24 * 1024
    chain_budget: int = 8
    staleness_budget: float = 30.0
    slo_target: float = 0.9
    channel_transients: Tuple[int, ...] = (3,)
    channel_torn_at: Optional[int] = 9
    min_truncations: int = 3
    footprint_bound: int = 1 << 20
    expected_trips: Optional[int] = None
    expected_probes: Optional[int] = None
    expected_recoveries: Optional[int] = None

    def to_json(self) -> dict:
        """A JSON-serializable form, symmetric with :meth:`from_json`."""
        payload = asdict(self)
        payload["channel_transients"] = list(self.channel_transients)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ReplicaScenario":
        """Rebuild a scenario from its :meth:`to_json` form."""
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in payload.items() if k in known}
        kwargs["channel_transients"] = tuple(
            kwargs.get("channel_transients", ())
        )
        return cls(**kwargs)


def default_replica_scenario() -> ReplicaScenario:
    """The pinned replication scenario ``repro soak --replica`` runs.

    A transient shipping fault and a torn mid-transfer connection death
    early in the run, aggressive truncation (small soft limit) so log
    compaction races shipment many times, and the default script's kill
    answered by promotion.  Breaker pins recorded from the
    deterministic run.
    """
    return ReplicaScenario(
        poll_every=4,
        wal_soft_limit=24 * 1024,
        staleness_budget=30.0,
        channel_transients=(3,),
        channel_torn_at=9,
        min_truncations=3,
        footprint_bound=1 << 20,
        expected_trips=1,
        expected_probes=1,
        expected_recoveries=1,
    )


def default_soak_params(seed: int = 0, insertions: int = 2000) -> NetworkParams:
    """The small Section 5.1 network workload the soak drives."""
    return NetworkParams(
        target_population=60,
        insertions=insertions,
        update_interval=10.0,
        space=100.0,
        destinations=6,
        queries_per_insertions=5,
        seed=seed,
    )


def default_frontend_config(script: FaultScript) -> FrontendConfig:
    """Serving parameters matched to the default script's overload."""
    return FrontendConfig(
        queue_capacity=256,
        service_time=0.05,
        query_deadline=5.0,
        retry=RetryPolicy(budget=200),
        failure_threshold=3,
        cooldown=5.0,
        checkpoint_interval=25,
        backlog_capacity=512,
        seed=script.seed,
    )


@dataclass
class SoakReport:
    """Outcome of one soak run: counters, SLO verdicts, violations."""

    ops: int
    queries: int
    total_writes: int
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    script: Optional[dict] = None
    #: Per-objective status exports from the frontend's SLOTracker
    #: (availability / freshness error budgets), keyed by SLO name.
    slos: Dict[str, dict] = field(default_factory=dict)
    #: Standing-query counters (adds/removes/expirations/delivered/
    #: dropped), present only when the soak ran with subscriptions.
    subscriptions: Dict[str, int] = field(default_factory=dict)
    #: Replication scenario measurements (shipping, staleness, failover,
    #: truncation), present only when the soak ran with a replica.
    replication: Dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Whether every SLO held."""
        return not self.violations

    def summary(self) -> str:
        """One line: ops served, degradation/retry counts, verdict."""
        verdict = "PASS" if self.passed else f"FAIL({len(self.violations)})"
        c = self.counters
        return (
            f"soak {verdict}: {self.ops} ops ({self.queries} queries, "
            f"{self.total_writes} physical writes); "
            f"degraded {c.get('degraded_answers', 0)}, retries "
            f"{c.get('retries', 0)}, trips {c.get('trips', 0)}, "
            f"recoveries {c.get('recoveries', 0)}, kills "
            f"{c.get('kills', 0)}, shed {c.get('shed_queries', 0)}q/"
            f"{c.get('shed_writes', 0)}w, timeouts "
            f"{c.get('deadline_timeouts', 0)}, max staleness "
            f"{c.get('max_staleness', 0.0):.1f}s"
        )

    def to_json(self) -> dict:
        """JSON payload written to ``BENCH_soak.json``."""
        return {
            "passed": self.passed,
            "ops": self.ops,
            "queries": self.queries,
            "total_writes": self.total_writes,
            "counters": self.counters,
            "violations": self.violations,
            "script": self.script,
            "slos": self.slos,
            "subscriptions": self.subscriptions,
            "replication": self.replication,
        }


def _oracle_replay(ops: Sequence) -> Tuple[Dict[int, set], Dict[int, list]]:
    """Brute-force replay: per-query answer sets and report histories.

    Returns
    -------
    answers : dict
        Stream index of each query -> set of matching oids.
    history : dict
        oid -> ordered ``(stream_index, point_or_None)`` report events
        (``None`` marks an explicit deletion).
    """
    live: Dict[int, object] = {}
    history: Dict[int, list] = {}
    answers: Dict[int, set] = {}
    for i, op in enumerate(ops):
        if isinstance(op, InsertOp):
            live[op.oid] = op.point
            history.setdefault(op.oid, []).append((i, op.point))
        elif isinstance(op, UpdateOp):
            live[op.oid] = op.new_point
            history.setdefault(op.oid, []).append((i, op.new_point))
        elif isinstance(op, DeleteOp):
            live.pop(op.oid, None)
            history.setdefault(op.oid, []).append((i, None))
        elif isinstance(op, QueryOp):
            region = op.query.region()
            answers[i] = {
                oid
                for oid, point in live.items()
                if region_matches_point(region, point)
            }
    return answers, history


def _points_close(a, b, tol: float = 1e-4) -> bool:
    """Whether two motion points agree up to float32 round-tripping."""
    def close(x: float, y: float) -> bool:
        return abs(x - y) <= tol * max(1.0, abs(x), abs(y))

    return (
        all(close(x, y) for x, y in zip(a.pos, b.pos))
        and all(close(x, y) for x, y in zip(a.vel, b.vel))
        and close(a.t_ref, b.t_ref)
        and (a.t_exp == b.t_exp or close(a.t_exp, b.t_exp))
    )


def _verify_degraded(outcome, op, oracle_answer, history) -> List[str]:
    """SLO 2: a degraded answer must be explainable within expiration."""
    violations: List[str] = []
    region = op.query.region()
    got = set(outcome.answer)
    idx = outcome.index
    for oid in sorted(got - oracle_answer):
        evidence = outcome.evidence.get(oid)
        if evidence is None:
            violations.append(
                f"query {idx}: extra oid {oid} carries no evidence"
            )
            continue
        if not region_matches_point(region, evidence):
            violations.append(
                f"query {idx}: extra oid {oid} evidence does not match "
                f"the query within its expiration window"
            )
            continue
        reported = any(
            point is not None
            and event_index <= idx
            and _points_close(point, evidence)
            for event_index, point in history.get(oid, ())
        )
        if not reported:
            violations.append(
                f"query {idx}: extra oid {oid} evidence matches no "
                f"actually reported motion"
            )
    for oid in sorted(oracle_answer - got):
        events = [
            event_index
            for event_index, _ in history.get(oid, ())
            if event_index <= idx
        ]
        latest = max(events) if events else -1
        if latest < outcome.snapshot_op_index:
            violations.append(
                f"query {idx}: missing oid {oid} was last reported at "
                f"op {latest}, inside the snapshot horizon "
                f"{outcome.snapshot_op_index}"
            )
    return violations


def _check_slos(
    script: FaultScript,
    report: ServiceReport,
    ops: Sequence,
    oracle_answers: Dict[int, set],
    history: Dict[int, list],
    replicated: bool = False,
) -> List[str]:
    """Assert every serving SLO; return the violations found."""
    violations: List[str] = []
    for outcome in report.outcomes:
        if outcome.status == "ok":
            want = oracle_answers.get(outcome.index)
            if want is None:
                violations.append(
                    f"op {outcome.index} answered but is not a query"
                )
            elif set(outcome.answer) != want:
                violations.append(
                    f"query {outcome.index}: non-degraded answer "
                    f"{sorted(outcome.answer)} != oracle {sorted(want)}"
                )
        elif outcome.status == "degraded":
            violations.extend(
                _verify_degraded(
                    outcome,
                    ops[outcome.index],
                    oracle_answers.get(outcome.index, set()),
                    history,
                )
            )
    if report.backlog_replayed != report.backlog_enqueued:
        violations.append(
            f"backlog not fully replayed: {report.backlog_replayed} of "
            f"{report.backlog_enqueued}"
        )
    if report.backlog_remaining:
        violations.append(
            f"{report.backlog_remaining} atoms left in the backlog"
        )
    if report.shed_writes:
        violations.append(f"{report.shed_writes} writes shed")
    if report.failed_queries:
        violations.append(
            f"{report.failed_queries} queries failed terminally"
        )
    expected_kills = 1 if script.kill_at_write is not None else 0
    if replicated:
        # A ready follower turns every kill into a promotion; a reopen
        # would mean the failover path was silently bypassed.
        if report.kills != expected_kills or \
                report.promotions != expected_kills:
            violations.append(
                f"kills/promotions {report.kills}/{report.promotions} != "
                f"expected {expected_kills}"
            )
        if report.reopens:
            violations.append(
                f"{report.reopens} reopens despite a promotable replica"
            )
    elif report.kills != expected_kills or report.reopens != expected_kills:
        violations.append(
            f"kills/reopens {report.kills}/{report.reopens} != "
            f"expected {expected_kills}"
        )
    for name, expected in (
        ("trips", script.expected_trips),
        ("probes", script.expected_probes),
        ("recoveries", script.expected_recoveries),
    ):
        if expected is not None and getattr(report, name) != expected:
            violations.append(
                f"{name} {getattr(report, name)} != pinned {expected}"
            )
    if report.max_staleness > script.staleness_bound:
        violations.append(
            f"max degraded staleness {report.max_staleness:.1f}s exceeds "
            f"bound {script.staleness_bound:.1f}s"
        )
    if script.overload is not None and not (
        report.shed_queries or report.deadline_timeouts
    ):
        violations.append(
            "overload phase produced neither shedding nor timeouts"
        )
    return violations


def _standing_queries(
    count: int, space: float, duration: float, seed: int
) -> List:
    """Seeded standing queries mixing all three paper query types."""
    import random as _random

    from ..geometry.queries import MovingQuery, TimesliceQuery, WindowQuery
    from ..geometry.rect import Rect

    rng = _random.Random(seed)

    def rect() -> Rect:
        x = rng.uniform(0.0, 0.8 * space)
        y = rng.uniform(0.0, 0.8 * space)
        w = rng.uniform(0.05, 0.25) * space
        return Rect((x, y), (x + w, y + w))

    queries = []
    for _ in range(count):
        kind = rng.randrange(3)
        t1 = rng.uniform(0.0, duration)
        if kind == 0:
            queries.append(TimesliceQuery(rect(), t1))
        elif kind == 1:
            queries.append(
                WindowQuery(rect(), t1, t1 + rng.uniform(0.0, duration / 4))
            )
        else:
            queries.append(MovingQuery(
                rect(), rect(), t1, t1 + rng.uniform(1.0, duration / 4)
            ))
    return queries


def _check_subscriptions(
    subs: SubscriptionIndex,
    sids: Sequence[int],
    final_entries: Sequence[Tuple],
    now: float,
) -> List[str]:
    """Assert the continuous-query SLOs; return violations found.

    Three checks per subscription: no deltas were dropped, replaying
    the published deltas from empty reconstructs exactly the maintained
    answer, and that answer equals a fresh brute-force evaluation of
    the standing query over the mirrored live population.  Finally the
    mirrored population itself must agree with the served index's final
    expiration-visible leaf entries.
    """
    violations: List[str] = []
    if subs.dropped:
        violations.append(
            f"{subs.dropped} subscription deltas dropped to queue overflow"
        )
    for sid in sids:
        if subs.is_lagged(sid):
            violations.append(f"subscription {sid} lagged")
            continue
        replayed: set = set()
        for delta in subs.poll(sid):
            replayed |= set(delta.added)
            replayed -= set(delta.removed)
        answer = set(subs.answer(sid))
        if replayed != answer:
            violations.append(
                f"subscription {sid}: delta replay {sorted(replayed)} != "
                f"maintained answer {sorted(answer)}"
            )
        region = subs._subs[sid].region
        fresh = {
            oid for point, oid in subs.live_entries()
            if not point.t_exp < now and region_matches_point(region, point)
        }
        if answer != fresh:
            violations.append(
                f"subscription {sid}: maintained answer {sorted(answer)} "
                f"!= re-evaluated answer {sorted(fresh)}"
            )
    mirrored = {
        oid for point, oid in subs.live_entries() if not point.t_exp < now
    }
    indexed = {
        oid for point, oid in final_entries if not point.t_exp < now
    }
    if mirrored != indexed:
        violations.append(
            f"subscription live mirror diverged from the index: "
            f"{len(mirrored ^ indexed)} oids differ"
        )
    return violations


def run_soak(
    script: Optional[FaultScript] = None,
    params: Optional[NetworkParams] = None,
    tree_config: Optional[TreeConfig] = None,
    frontend_config: Optional[FrontendConfig] = None,
    registry=None,
    tracer=None,
    subscriptions: int = 0,
    replica: Optional[ReplicaScenario] = None,
) -> SoakReport:
    """Run the chaos soak and verify every SLO.

    Parameters
    ----------
    script : FaultScript, optional
        Fault schedule; the pinned default when omitted.
    params : NetworkParams, optional
        Workload shape; the small default network workload when omitted.
    tree_config : TreeConfig, optional
        Member tree configuration (512-byte pages by default, the
        densest commit cadence).
    frontend_config : FrontendConfig, optional
        Serving parameters; defaults matched to the default script.
    registry, tracer : optional
        Observability sinks passed through to the frontend.  A
        registry is created when none is given: the soak always
        *measures* its SLOs through the frontend's SLOTracker (error
        budgets are asserted like every other SLO), rather than only
        re-deriving them from report counters.
    subscriptions : int, optional
        Standing queries registered on a
        :class:`~repro.serve.subscriptions.SubscriptionIndex` the
        frontend notifies through every fault, crash and backlog
        replay.  After the run, every subscription's delta stream must
        replay to exactly its re-evaluated answer set (see
        :func:`_check_subscriptions`); 0 disables the scenario.
    replica : ReplicaScenario, optional
        Runs the replication chaos scenario: a WAL-shipped read
        replica tails the primary through a faulty channel, online
        maintenance truncates the primary's log mid-run, and the
        script's kill is answered by promoting the replica (zero
        committed writes lost, audited bit-for-bit against the dead
        primary's committed prefix).  ``None`` disables the scenario.

    Returns
    -------
    SoakReport
        Counters plus the list of SLO violations (empty = pass).
    """
    if script is None:
        script = default_fault_script()
    if registry is None:
        registry = MetricsRegistry()
    if params is None:
        params = default_soak_params(seed=script.seed)
    if tree_config is None:
        tree_config = TreeConfig(page_size=512, buffer_pages=8)
    if frontend_config is None:
        frontend_config = default_frontend_config(script)
    workload = generate_network_workload(params)
    ops = workload.ops
    oracle_answers, history = _oracle_replay(ops)

    subs = None
    sub_sids: List[int] = []
    if subscriptions:
        duration = ops[-1].time if ops else 0.0
        # An unbounded-in-practice queue: the soak polls only at the
        # end, and a dropped delta would (correctly) fail the replay
        # check rather than model consumer lag.
        subs = SubscriptionIndex(
            space=params.space,
            cells=8,
            max_pending=1 << 30,
            registry=registry,
        )
        for query in _standing_queries(
            subscriptions, params.space, max(duration, 1.0), script.seed + 1
        ):
            sub_sids.append(subs.register(query))

    with tempfile.TemporaryDirectory(prefix="soak-") as tmp:
        directory = os.path.join(tmp, "store")
        injector = script.injector(0)
        injectors = [injector]
        tree = MovingObjectTree.create_durable(
            directory, tree_config, SimulationClock(), injector=injector
        )

        def reopen():
            reopened = MovingObjectTree.open_from(
                directory, tree_config, SimulationClock()
            )
            fresh = script.injector(len(injectors))
            injectors.append(fresh)
            reopened.disk.arm_injector(fresh)
            return reopened, fresh

        link: Optional[ReplicaLink] = None
        maintainers: List[OnlineMaintainer] = []
        audit_violations: List[str] = []
        if replica is not None:
            primary_dirs = [directory]
            follower_seq = [0]

            def build_follower(primary_tree, channel_injector=None):
                n = follower_seq[0]
                follower_seq[0] += 1
                shipper = WalShipper(
                    primary_tree.disk.directory, registry=registry
                )
                follower = Replica.bootstrap(
                    primary_tree.disk, shipper,
                    os.path.join(tmp, f"replica{n}"), registry=registry,
                )
                channel = ShippingChannel(
                    shipper, injector=channel_injector, registry=registry
                )
                maintainer = OnlineMaintainer(
                    primary_tree.disk,
                    wal_soft_limit=replica.wal_soft_limit,
                    chain_budget=replica.chain_budget,
                    registry=registry,
                )
                maintainers.append(maintainer)
                return channel, follower, maintainer

            def audit_promotion(promoted) -> None:
                # Zero-loss check: recover a copy of the dead primary's
                # directory (its durable committed prefix, exactly what
                # a plain reopen would serve) and demand the promoted
                # tree matches it bit for bit — same commit sequence,
                # identical unexpired entries.
                ground_dir = os.path.join(tmp, f"audit{len(injectors)}")
                shutil.copytree(primary_dirs[-1], ground_dir)
                ground = MovingObjectTree.open_from(
                    ground_dir, tree_config, SimulationClock()
                )
                now = promoted.clock.time

                def unexpired(t):
                    return sorted(
                        (oid, tuple(p.pos), tuple(p.vel), p.t_ref, p.t_exp)
                        for p, oid in t.snapshot().leaf_entries()
                        if not p.t_exp < now
                    )

                if ground.disk.op_seq != promoted.disk.op_seq:
                    audit_violations.append(
                        f"promotion lost commits: op_seq "
                        f"{promoted.disk.op_seq} != committed prefix "
                        f"{ground.disk.op_seq}"
                    )
                elif unexpired(ground) != unexpired(promoted):
                    audit_violations.append(
                        "promoted state is not bit-identical to the dead "
                        "primary's committed prefix"
                    )
                ground.close()

            def on_promote(promoted):
                audit_promotion(promoted)
                primary_dirs.append(promoted.disk.directory)
                fresh = script.injector(len(injectors))
                injectors.append(fresh)
                promoted.disk.arm_injector(fresh)
                return fresh

            channel_injector = None
            if replica.channel_torn_at or replica.channel_transients:
                channel_injector = FaultInjector(
                    crash_at_write=replica.channel_torn_at,
                    mode="torn",
                    seed=script.seed + 77,
                    transient_writes=replica.channel_transients,
                )
            first_channel, first_follower, first_maint = build_follower(
                tree, channel_injector
            )
            link = ReplicaLink(
                first_channel, first_follower, first_maint,
                promote_config=tree_config,
                registry=registry,
                staleness_budget=replica.staleness_budget,
                slo_target=replica.slo_target,
                poll_every=replica.poll_every,
                reseed=build_follower,
                on_promote=on_promote,
                tracer=tracer,
            )

        # The chaos script *deliberately* sheds and times out queries
        # (the pinned default burns ~15% of them), so the soak asserts
        # chaos-mode error budgets rather than the production serving
        # targets of :func:`~repro.obs.slo.default_serve_slos`.
        frontend = ServiceFrontend(
            tree,
            frontend_config,
            registry=registry,
            tracer=tracer,
            injector=injector,
            reopen=reopen,
            slos=default_serve_slos(
                availability_target=0.75, freshness_target=0.70
            ),
            subscriptions=subs,
            replication=link,
        )
        served = frontend.run(
            ops, pacer=ArrivalPacer(script.bursts())
        )
        total_writes = sum(inj.writes for inj in injectors)
        slo_statuses = frontend.slo_status()
        final_entries: List[Tuple] = []
        if subs is not None:
            final_entries = list(frontend.index.snapshot().leaf_entries())
        frontend.index.close()
        if link is not None and link.replica is not None:
            link.replica.close()

    if replica is not None:
        script = replace(
            script,
            expected_trips=replica.expected_trips,
            expected_probes=replica.expected_probes,
            expected_recoveries=replica.expected_recoveries,
        )
    violations = _check_slos(
        script, served, ops, oracle_answers, history,
        replicated=replica is not None,
    )
    replication_stats: Dict[str, float] = {}
    if link is not None:
        violations.extend(audit_violations)
        truncations = sum(m.cycles for m in maintainers)
        if link.max_staleness > replica.staleness_budget:
            violations.append(
                f"replica staleness {link.max_staleness:.1f}s exceeds "
                f"budget {replica.staleness_budget:.1f}s"
            )
        if truncations < replica.min_truncations:
            violations.append(
                f"only {truncations} online truncation cycles completed "
                f"(need >= {replica.min_truncations} for a meaningful "
                f"footprint bound)"
            )
        if link.footprint_high_water > replica.footprint_bound:
            violations.append(
                f"replication WAL footprint high water "
                f"{link.footprint_high_water} bytes exceeds bound "
                f"{replica.footprint_bound}"
            )
        expected_faults = len(replica.channel_transients) + (
            1 if replica.channel_torn_at else 0
        )
        observed_faults = registry.value("replication.channel_faults")
        if observed_faults < expected_faults:
            violations.append(
                f"shipping channel saw {observed_faults} faults, "
                f"scheduled {expected_faults}"
            )
        replication_stats = {
            "promotions": served.promotions,
            "replica_answers": served.replica_answers,
            "max_staleness": link.max_staleness,
            "staleness_budget": replica.staleness_budget,
            "polls": link.polls,
            "shipped_batches": registry.value("replication.shipped_batches"),
            "applied_batches": registry.value("replication.applied_batches"),
            "channel_faults": observed_faults,
            "spills": registry.value("replication.spills"),
            "truncation_cycles": truncations,
            "truncations_deferred": registry.value(
                "replication.truncation_deferred"
            ),
            "footprint_high_water": link.footprint_high_water,
            "footprint_bound": replica.footprint_bound,
        }
    sub_stats: Dict[str, int] = {}
    if subs is not None:
        violations.extend(_check_subscriptions(
            subs, sub_sids, final_entries, subs.now
        ))
        sub_stats = subs.stats()
    for name, status in sorted(slo_statuses.items()):
        if not status["met"]:
            violations.append(
                f"SLO {name!r} error budget exhausted: success ratio "
                f"{status['ratio']:.4f} < target {status['target']:.4f} "
                f"(burn rate {status['burn_rate']:.2f})"
            )
    counters = {
        name: getattr(served, name)
        for name in (
            "admitted", "served_queries", "served_writes", "shed_queries",
            "shed_writes", "retries", "retry_successes", "retry_exhausted",
            "deadline_timeouts", "trips", "probes", "probe_failures",
            "recoveries", "degraded_answers", "backlog_enqueued",
            "backlog_replayed", "backlog_peak", "backlog_remaining",
            "kills", "reopens", "promotions", "replica_answers",
            "checkpoints", "failed_queries", "max_staleness",
        )
    }
    return SoakReport(
        ops=len(ops),
        queries=workload.query_count,
        total_writes=total_writes,
        violations=violations,
        counters=counters,
        script=script.to_json(),
        slos=slo_statuses,
        subscriptions=sub_stats,
        replication=replication_stats,
    )


def write_report(report: SoakReport, path: str) -> None:
    """Write the soak report JSON (the ``BENCH_soak.json`` artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
