"""One experiment definition per figure of the paper's Section 5.

Each ``figure*`` function sweeps the figure's x-axis parameter, replays
the workload against every series' index flavour, and returns a
:class:`FigureResult` holding the same series the paper plots.  Runs are
cached on disk (see :mod:`repro.experiments.cache`), so Figures 14-16 —
three views of one sweep — share their runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.presets import bounding_config, flavor_config, rexp_config, tpr_config
from ..geometry.bounding import BoundingKind
from ..workloads.base import Workload
from ..workloads.expiration import ExpirationPolicy, FixedDistance, FixedPeriod
from ..workloads.network import NetworkParams, generate_network_workload
from ..workloads.parameters import querying_window
from ..workloads.uniform import UniformParams, generate_uniform_workload
from .adapters import IndexAdapter, ScheduledAdapter, TreeAdapter
from .cache import load_result, run_key, store_result
from .runner import RunResult, run_workload
from .scale import Scale, current_scale

AdapterFactory = Callable[[], IndexAdapter]


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    xs: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    runs: Dict[str, List[RunResult]] = field(default_factory=dict)
    scale_name: str = ""

    def best_series_at(self, x: float) -> str:
        """Label of the lowest-valued series at an x position."""
        i = self.xs.index(x)
        return min(self.series, key=lambda label: self.series[label][i])


# ---------------------------------------------------------------------------
# Index flavours (the line labels of each figure)
# ---------------------------------------------------------------------------


def flavor_adapters_fig9(scale: Scale) -> Dict[str, AdapterFactory]:
    """Figures 9-10: TPBR expiration recording x ChooseSubtree variants."""

    def make(brs: bool, algs: bool) -> AdapterFactory:
        config = flavor_config(
            brs_with_expiration=brs,
            algs_with_expiration=algs,
            page_size=scale.page_size,
            buffer_pages=scale.buffer_pages,
        )
        return lambda: TreeAdapter(_flavor_name(brs, algs), config)

    return {
        _flavor_name(True, True): make(True, True),
        _flavor_name(False, True): make(False, True),
        _flavor_name(True, False): make(True, False),
        _flavor_name(False, False): make(False, False),
    }


def _flavor_name(brs: bool, algs: bool) -> str:
    brs_part = "BRs with exp.t." if brs else "BRs w/o exp.t."
    algs_part = "algs with exp.t." if algs else "algs w/o exp.t."
    return f"{brs_part}, {algs_part}"


def bounding_adapters(scale: Scale) -> Dict[str, AdapterFactory]:
    """Figures 11-12: the five bounding-rectangle types."""

    def make(name: str, kind: BoundingKind, algs: bool = True) -> AdapterFactory:
        config = bounding_config(
            kind,
            algs_with_expiration=algs,
            page_size=scale.page_size,
            buffer_pages=scale.buffer_pages,
        )
        return lambda: TreeAdapter(name, config)

    return {
        "Static": make("Static", BoundingKind.STATIC),
        "Update-minimum, algs w/o exp.t.": make(
            "Update-minimum, algs w/o exp.t.",
            BoundingKind.UPDATE_MINIMUM,
            algs=False,
        ),
        "Update-minimum, algs with exp.t.": make(
            "Update-minimum, algs with exp.t.", BoundingKind.UPDATE_MINIMUM
        ),
        "Near-optimal": make("Near-optimal", BoundingKind.NEAR_OPTIMAL),
        "Optimal": make("Optimal", BoundingKind.OPTIMAL),
    }


def architecture_adapters(scale: Scale) -> Dict[str, AdapterFactory]:
    """Figures 13-16: R^exp vs TPR, each with/without scheduled deletions."""
    rexp = rexp_config(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    tpr = tpr_config(page_size=scale.page_size, buffer_pages=scale.buffer_pages)
    return {
        "Rexp-tree": lambda: TreeAdapter("Rexp-tree", rexp),
        "TPR-tree": lambda: TreeAdapter("TPR-tree", tpr),
        "Rexp-tree with scheduled deletions": lambda: ScheduledAdapter(
            "Rexp-tree with scheduled deletions",
            rexp,
            queue_buffer_pages=scale.queue_buffer_pages,
        ),
        "TPR-tree with scheduled deletions": lambda: ScheduledAdapter(
            "TPR-tree with scheduled deletions",
            tpr,
            queue_buffer_pages=scale.queue_buffer_pages,
        ),
    }


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------


def _network_workload(
    scale: Scale,
    policy: ExpirationPolicy,
    update_interval: float = 60.0,
    window: Optional[float] = None,
    new_ob: float = 0.0,
    seed: int = 0,
) -> Workload:
    params = NetworkParams(
        target_population=scale.target_population,
        insertions=scale.insertions,
        update_interval=update_interval,
        querying_window=window,
        new_object_fraction=new_ob,
        seed=seed,
    )
    return generate_network_workload(params, policy)


def _uniform_workload(
    scale: Scale,
    policy: ExpirationPolicy,
    update_interval: float = 60.0,
    window: Optional[float] = None,
    seed: int = 0,
) -> Workload:
    params = UniformParams(
        target_population=scale.target_population,
        insertions=scale.insertions,
        update_interval=update_interval,
        querying_window=window,
        seed=seed,
    )
    return generate_uniform_workload(params, policy)


def _run_series(
    figure: FigureResult,
    workloads: Sequence[Workload],
    adapters: Dict[str, AdapterFactory],
    scale: Scale,
    metric: Callable[[RunResult], float],
    prepopulate: bool = False,
) -> FigureResult:
    for label, factory in adapters.items():
        values: List[float] = []
        runs: List[RunResult] = []
        for workload in workloads:
            signature = {"name": workload.name, **workload.params}
            if prepopulate:
                # Bulk-loaded runs measure a different update stream;
                # never share cache entries with replayed ones.
                signature["setup"] = "bulkload"
            key = run_key(label, signature, scale.name)
            result = load_result(key)
            if result is None:
                result = run_workload(
                    factory(), workload, prepopulate=prepopulate
                )
                store_result(key, result)
            values.append(metric(result))
            runs.append(result)
        figure.series[label] = values
        figure.runs[label] = runs
    figure.scale_name = scale.name
    return figure


# ---------------------------------------------------------------------------
# The eight figures
# ---------------------------------------------------------------------------

EXPT_VALUES = [30.0, 60.0, 120.0, 180.0, 240.0]
UI_VALUES = [30.0, 60.0, 90.0, 120.0]
EXPD_VALUES = [45.0, 90.0, 180.0, 270.0, 360.0]
NEWOB_VALUES = [0.0, 0.5, 1.0, 1.5, 2.0]

#: Standard values when a parameter is not being varied (Table 1).
STANDARD_EXPT = 120.0
STANDARD_EXPD = 180.0
STANDARD_NEWOB = 0.5
STANDARD_UI = 60.0


def figure9(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Search I/O for varying ExpT (network data; four algorithm flavours)."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig9", "Search Performance For Varying ExpT",
        "Expiration Period, ExpT", "Search I/O", list(EXPT_VALUES),
    )
    workloads = [
        _network_workload(
            scale,
            FixedPeriod(expt),
            window=querying_window(STANDARD_UI, expt),
            seed=seed,
        )
        for expt in EXPT_VALUES
    ]
    return _run_series(
        fig, workloads, flavor_adapters_fig9(scale), scale,
        lambda r: r.avg_search_io,
    )


def figure10(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Search I/O for varying UI (four algorithm flavours)."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig10", "Search Performance For Varying UI",
        "Update Interval, UI", "Search I/O", list(UI_VALUES),
    )
    workloads = [
        _network_workload(
            scale,
            FixedPeriod(STANDARD_EXPT),
            update_interval=ui,
            window=querying_window(ui),
            seed=seed,
        )
        for ui in UI_VALUES
    ]
    return _run_series(
        fig, workloads, flavor_adapters_fig9(scale), scale,
        lambda r: r.avg_search_io,
    )


def figure11(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Search I/O for uniform data and varying ExpT (five TPBR types)."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig11", "Search Performance for Uniform Data and Varying ExpT",
        "Expiration Period, ExpT", "Search I/O", list(EXPT_VALUES),
    )
    workloads = [
        _uniform_workload(
            scale,
            FixedPeriod(expt),
            window=querying_window(STANDARD_UI, expt),
            seed=seed,
        )
        for expt in EXPT_VALUES
    ]
    return _run_series(
        fig, workloads, bounding_adapters(scale), scale,
        lambda r: r.avg_search_io,
    )


def figure12(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Search I/O for varying ExpD (speed-dependent expiry; five TPBR types)."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig12", "Search Performance for Varying ExpD",
        "Expiration Distance, ExpD", "Search I/O", list(EXPD_VALUES),
    )
    workloads = [
        _network_workload(scale, FixedDistance(expd), seed=seed)
        for expd in EXPD_VALUES
    ]
    return _run_series(
        fig, workloads, bounding_adapters(scale), scale,
        lambda r: r.avg_search_io,
    )


def figure13(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Search I/O for varying ExpD: R^exp vs TPR vs scheduled deletions."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig13", "Search Performance For Varying ExpD",
        "Expiration Distance, ExpD", "Search I/O", list(EXPD_VALUES),
    )
    workloads = [
        _network_workload(scale, FixedDistance(expd), seed=seed)
        for expd in EXPD_VALUES
    ]
    return _run_series(
        fig, workloads, architecture_adapters(scale), scale,
        lambda r: r.avg_search_io,
    )


def _newob_workloads(scale: Scale, seed: int) -> List[Workload]:
    return [
        _network_workload(
            scale, FixedDistance(STANDARD_EXPD), new_ob=new_ob, seed=seed
        )
        for new_ob in NEWOB_VALUES
    ]


def figure14(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Search I/O for a varying fraction of new objects (NewOb)."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig14", "Search Performance for Varying Fraction of New Objects",
        "Fraction of New Objects, NewOb", "Search I/O", list(NEWOB_VALUES),
    )
    return _run_series(
        fig, _newob_workloads(scale, seed), architecture_adapters(scale),
        scale, lambda r: r.avg_search_io,
    )


def figure15(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Index size (pages) for varying NewOb — same runs as Figure 14."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig15", "Index Size for Varying Fraction of New Objects",
        "Fraction of New Objects, NewOb", "Index Size (# of disk pages)",
        list(NEWOB_VALUES),
    )
    return _run_series(
        fig, _newob_workloads(scale, seed), architecture_adapters(scale),
        scale, lambda r: float(r.page_count),
    )


def figure16(scale: Optional[Scale] = None, seed: int = 0) -> FigureResult:
    """Update I/O for varying NewOb — same runs as Figure 14."""
    scale = scale or current_scale()
    fig = FigureResult(
        "fig16", "Update Performance for Varying Fraction of New Objects",
        "Fraction of New Objects, NewOb", "Update I/O", list(NEWOB_VALUES),
    )
    return _run_series(
        fig, _newob_workloads(scale, seed), architecture_adapters(scale),
        scale, lambda r: r.avg_update_io,
    )


ALL_FIGURES = {
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    "fig16": figure16,
}


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures (design choices argued in prose)
# ---------------------------------------------------------------------------


def ablation_overlap_heuristic(
    scale: Optional[Scale] = None, seed: int = 0
) -> FigureResult:
    """Does overlap enlargement in ChooseSubtree help the R^exp-tree?

    Section 4.2.2 claims it does not; this sweeps ExpT with it on/off.
    """
    scale = scale or current_scale()
    fig = FigureResult(
        "ablation-overlap", "ChooseSubtree overlap heuristic (Section 4.2.2)",
        "Expiration Period, ExpT", "Search I/O", list(EXPT_VALUES),
    )
    workloads = [
        _network_workload(
            scale, FixedPeriod(expt),
            window=querying_window(STANDARD_UI, expt), seed=seed,
        )
        for expt in EXPT_VALUES
    ]
    adapters: Dict[str, AdapterFactory] = {}
    for label, use in (("without overlap", False), ("with overlap", True)):
        config = rexp_config(
            use_overlap_in_choose=use,
            page_size=scale.page_size,
            buffer_pages=scale.buffer_pages,
        )
        adapters[label] = (
            lambda config=config, label=label: TreeAdapter(label, config)
        )
    return _run_series(
        fig, workloads, adapters, scale, lambda r: r.avg_search_io
    )


def ablation_buffer_size(
    scale: Optional[Scale] = None,
    seed: int = 0,
    buffer_sizes: Sequence[int] = (2, 4, 8, 16, 32),
) -> FigureResult:
    """Sensitivity of search I/O to the buffer-pool size (Section 5.1)."""
    scale = scale or current_scale()
    fig = FigureResult(
        "ablation-buffer", "Buffer-pool size sensitivity",
        "Buffer pages", "Search I/O", [float(b) for b in buffer_sizes],
    )
    workload = _network_workload(scale, FixedPeriod(STANDARD_EXPT), seed=seed)
    values: List[float] = []
    runs: List[RunResult] = []
    for pages in buffer_sizes:
        config = rexp_config(page_size=scale.page_size, buffer_pages=pages)
        label = f"Rexp-tree (buffer={pages})"
        signature = {"name": workload.name, **workload.params}
        key = run_key(label, signature, scale.name)
        result = load_result(key)
        if result is None:
            result = run_workload(TreeAdapter(label, config), workload)
            store_result(key, result)
        values.append(result.avg_search_io)
        runs.append(result)
    fig.series["Rexp-tree"] = values
    fig.runs["Rexp-tree"] = runs
    fig.scale_name = scale.name
    return fig


def ablation_lazy_purge(
    scale: Optional[Scale] = None, seed: int = 0
) -> FigureResult:
    """Expired-entry fraction left behind by the lazy strategy.

    Section 5.4 claims lazy purging keeps "all but a very small fraction"
    of expired entries out of the index; this measures that fraction
    directly across ExpT.
    """
    scale = scale or current_scale()
    fig = FigureResult(
        "ablation-lazy", "Expired entries surviving lazy purging",
        "Expiration Period, ExpT", "Expired fraction of leaf entries",
        list(EXPT_VALUES),
    )
    workloads = [
        _network_workload(
            scale, FixedPeriod(expt),
            window=querying_window(STANDARD_UI, expt), seed=seed,
        )
        for expt in EXPT_VALUES
    ]
    adapters: Dict[str, AdapterFactory] = {
        "Rexp-tree": lambda: TreeAdapter(
            "Rexp-tree",
            rexp_config(page_size=scale.page_size, buffer_pages=scale.buffer_pages),
        ),
    }
    return _run_series(
        fig, workloads, adapters, scale, lambda r: r.expired_fraction
    )
