"""Workload replay: feed an operation stream to an index adapter.

Produces the per-run measurements the paper's figures report: average
search I/O per query, average update I/O per insertion/deletion, index
size in pages, plus auxiliary (B-tree) costs and structural audits.
"""

from __future__ import annotations

import time as _wall
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.intersection import region_matches_point
from ..geometry.kinematics import MovingPoint
from ..obs.metrics import LATENCY_BUCKETS, Histogram
from ..workloads.base import DeleteOp, InsertOp, QueryOp, UpdateOp, Workload
from .adapters import IndexAdapter


@dataclass
class RunResult:
    """Everything measured while replaying one workload on one index."""

    adapter: str
    workload: str
    avg_search_io: float = 0.0
    avg_update_io: float = 0.0
    avg_update_io_with_aux: float = 0.0
    search_ops: int = 0
    update_ops: int = 0
    page_count: int = 0
    aux_page_count: int = 0
    leaf_entries: int = 0
    expired_fraction: float = 0.0
    avg_result_size: float = 0.0
    failed_deletes: int = 0
    oracle_mismatches: Optional[int] = None
    wall_seconds: float = 0.0
    prepopulated: int = 0
    setup_io: int = 0
    auxiliary_io: int = 0
    search_io_p50: float = 0.0
    search_io_p95: float = 0.0
    search_io_p99: float = 0.0
    update_io_p50: float = 0.0
    update_io_p95: float = 0.0
    update_io_p99: float = 0.0
    search_latency_p50: float = 0.0
    search_latency_p95: float = 0.0
    search_latency_p99: float = 0.0
    update_latency_p50: float = 0.0
    update_latency_p95: float = 0.0
    update_latency_p99: float = 0.0
    buffer_hits: int = 0
    buffer_misses: int = 0
    buffer_evictions: int = 0
    buffer_hit_rate: float = 0.0
    partition_pages: List[int] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        """One line per run: averages, tails, and every I/O class.

        Setup (bulk-load) and auxiliary (deletion-queue B-tree) I/O are
        always shown when present — a ``ScheduledDeletionIndex`` or a
        prepopulated run is *not* just its search/update averages.
        """
        line = (
            f"{self.adapter:<28} search={self.avg_search_io:7.2f}  "
            f"update={self.avg_update_io:6.2f}  pages={self.page_count:5d}  "
            f"expired={self.expired_fraction:5.1%}"
        )
        if self.search_ops:
            line += (
                f"  search p50/p95/p99={self.search_io_p50:.0f}/"
                f"{self.search_io_p95:.0f}/{self.search_io_p99:.0f}"
            )
        if self.auxiliary_io:
            line += (
                f"  aux={self.auxiliary_io}"
                f" (update+aux={self.avg_update_io_with_aux:.2f}/op)"
            )
        if self.setup_io:
            line += f"  setup={self.setup_io}"
        return line


def split_initial_population(
    workload: Workload,
) -> Tuple[List[Tuple[int, MovingPoint]], List[object]]:
    """Split off the initial population for bulk loading.

    Every first report that precedes the workload's first query can be
    bulk-loaded instead of inserted one by one: all such objects are
    present before any query runs, and later updates or deletions of
    them find exactly the entries insertion would have left.  Returns
    the ``(oid, point)`` population and the remaining operation stream.
    """
    first_query = next(
        (i for i, op in enumerate(workload.ops) if isinstance(op, QueryOp)),
        len(workload.ops),
    )
    initial: List[Tuple[int, MovingPoint]] = []
    seen = set()
    remaining: List[object] = []
    for i, op in enumerate(workload.ops):
        if i < first_query and isinstance(op, InsertOp) and op.oid not in seen:
            seen.add(op.oid)
            initial.append((op.oid, op.point))
        else:
            remaining.append(op)
    return initial, remaining


def run_workload(
    adapter: IndexAdapter,
    workload: Workload,
    verify: bool = False,
    prepopulate: bool = False,
    registry=None,
    tracer=None,
    profile: bool = False,
    durability: Optional[str] = None,
) -> RunResult:
    """Replay a workload and collect the paper's metrics.

    Args:
        adapter: the index under test.
        verify: additionally maintain a brute-force table of live
            reports and compare every query answer against it (slow;
            used by integration tests).
        prepopulate: bulk-load the initial population (every first
            report before the first query) instead of replaying it as
            insertions.  Build I/O is reported as ``setup_io`` and does
            not enter the update averages.
        registry: a :class:`repro.obs.MetricsRegistry` to attach to the
            index (enables its counters/gauges/histograms).
        tracer: a :class:`repro.obs.Tracer` to attach to the index
            (records per-operation spans and structural events).
        profile: additionally time every operation and fill the
            ``*_latency_*`` percentile fields.  Implied by passing a
            registry or tracer.
        durability: a directory; when given, the adapter re-homes onto a
            durable page store there before replay (every operation
            group-commits through a write-ahead log, whose I/O enters
            ``auxiliary_io``), and the store is checkpointed and closed
            after the run, leaving a recoverable index on disk.

    Returns:
        The populated :class:`RunResult`.
    """
    start = _wall.perf_counter()
    oracle: Dict[int, MovingPoint] = {}
    mismatches = 0
    failed_deletes = 0
    result_sizes = 0
    profile = profile or registry is not None or tracer is not None
    if durability is not None:
        # Before observability: durability swaps the backing index out.
        adapter.enable_durability(durability)
    if registry is not None or tracer is not None:
        adapter.enable_observability(registry, tracer)
    search_latency = update_latency = None
    if profile:
        search_latency = Histogram("search_latency_s", LATENCY_BUCKETS)
        update_latency = Histogram("update_latency_s", LATENCY_BUCKETS)
    timed = _wall.perf_counter

    ops: Sequence[object] = workload.ops
    prepopulated = 0
    if prepopulate:
        initial, ops = split_initial_population(workload)
        if initial:
            adapter.advance_time(initial[0][1].t_ref)
            adapter.bulk_load(initial)
            prepopulated = len(initial)
            if verify:
                for oid, point in initial:
                    oracle[oid] = point

    for op in ops:
        adapter.advance_time(op.time)
        if isinstance(op, InsertOp):
            if profile:
                t0 = timed()
                adapter.insert(op.oid, op.point)
                update_latency.record(timed() - t0)
            else:
                adapter.insert(op.oid, op.point)
            if verify:
                oracle[op.oid] = op.point
        elif isinstance(op, UpdateOp):
            if profile:
                t0 = timed()
                existed = adapter.update(op.oid, op.old_point, op.new_point)
                update_latency.record(timed() - t0)
            else:
                existed = adapter.update(op.oid, op.old_point, op.new_point)
            if not existed:
                failed_deletes += 1
            if verify:
                oracle[op.oid] = op.new_point
        elif isinstance(op, DeleteOp):
            if profile:
                t0 = timed()
                removed = adapter.delete(op.oid, op.point)
                update_latency.record(timed() - t0)
            else:
                removed = adapter.delete(op.oid, op.point)
            if not removed:
                failed_deletes += 1
            if verify:
                oracle.pop(op.oid, None)
        elif isinstance(op, QueryOp):
            if profile:
                t0 = timed()
                answer = adapter.query(op.query)
                search_latency.record(timed() - t0)
            else:
                answer = adapter.query(op.query)
            result_sizes += len(answer)
            if verify:
                region = op.query.region()
                expected = {
                    oid
                    for oid, point in oracle.items()
                    if region_matches_point(region, point)
                }
                got = set(answer)
                if getattr(adapter, "exact_semantics", True):
                    if got != expected:
                        mismatches += 1
                elif not got >= expected:
                    # Indexes of non-expiring trajectories (the TPR-tree)
                    # legitimately return false drops that a filter step
                    # would remove (Section 3); they must still return
                    # every live match.
                    mismatches += 1
        else:  # pragma: no cover - exhaustive over Operation
            raise TypeError(f"unknown operation {op!r}")

    stats = adapter.op_stats
    audit = adapter.audit()
    hits, misses, evictions = adapter.buffer_counters
    result = RunResult(
        adapter=adapter.name,
        workload=workload.name,
        avg_search_io=stats.avg_search_io,
        avg_update_io=stats.avg_update_io,
        avg_update_io_with_aux=stats.avg_update_io_with_auxiliary,
        search_ops=stats.search_ops,
        update_ops=stats.update_ops,
        page_count=adapter.page_count,
        aux_page_count=adapter.aux_page_count,
        leaf_entries=audit.leaf_entries if audit else 0,
        expired_fraction=audit.expired_fraction if audit else 0.0,
        avg_result_size=(
            result_sizes / stats.search_ops if stats.search_ops else 0.0
        ),
        failed_deletes=failed_deletes,
        oracle_mismatches=mismatches if verify else None,
        wall_seconds=_wall.perf_counter() - start,
        prepopulated=prepopulated,
        setup_io=stats.setup_io,
        auxiliary_io=stats.auxiliary_io,
        search_io_p50=stats.search_io_p50,
        search_io_p95=stats.search_io_p95,
        search_io_p99=stats.search_io_p99,
        update_io_p50=stats.update_io_hist.p50,
        update_io_p95=stats.update_io_hist.p95,
        update_io_p99=stats.update_io_hist.p99,
        search_latency_p50=search_latency.p50 if profile else 0.0,
        search_latency_p95=search_latency.p95 if profile else 0.0,
        search_latency_p99=search_latency.p99 if profile else 0.0,
        update_latency_p50=update_latency.p50 if profile else 0.0,
        update_latency_p95=update_latency.p95 if profile else 0.0,
        update_latency_p99=update_latency.p99 if profile else 0.0,
        buffer_hits=hits,
        buffer_misses=misses,
        buffer_evictions=evictions,
        buffer_hit_rate=(
            hits / (hits + misses) if (hits + misses) else 0.0
        ),
        partition_pages=list(
            getattr(adapter, "partition_page_counts", [])
        ),
        params=dict(workload.params),
    )
    if durability is not None:
        adapter.close()
    if registry is not None:
        registry.gauge("runner.buffer_hit_rate").set(result.buffer_hit_rate)
        if search_latency is not None and search_latency.count:
            hist = registry.histogram("runner.search_latency_s", LATENCY_BUCKETS)
            hist.buckets = list(search_latency.buckets)
            hist.count = search_latency.count
            hist.total = search_latency.total
            hist.min = search_latency.min
            hist.max = search_latency.max
        if update_latency is not None and update_latency.count:
            hist = registry.histogram("runner.update_latency_s", LATENCY_BUCKETS)
            hist.buckets = list(update_latency.buckets)
            hist.count = update_latency.count
            hist.total = update_latency.total
            hist.min = update_latency.min
            hist.max = update_latency.max
    return result
