"""Index adapters: a uniform, I/O-accounted interface for the runner.

The paper compares four architectures (Section 5.4): the R^exp-tree,
the TPR-tree, and each of them paired with a scheduled-deletion B-tree.
Adapters wrap the index implementations, attribute page I/O to search or
update operations, and report B-tree I/O separately (the paper's figures
exclude it; we report both).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from ..core.clock import SimulationClock
from ..core.config import TreeConfig
from ..core.forest import ForestConfig, PartitionedMovingObjectForest
from ..core.partition import Partitioner
from ..core.scheduled import ScheduledDeletionIndex
from ..core.tree import MovingObjectTree, TreeAudit
from ..geometry.kinematics import MovingPoint
from ..geometry.queries import SpatioTemporalQuery
from ..storage.stats import OperationStats


class IndexAdapter(ABC):
    """What the experiment runner drives."""

    def __init__(self, name: str):
        self.name = name
        self.op_stats = OperationStats()
        # Cumulative WAL-write counter of a durable backend, or None.
        self._durable_wal = None

    def enable_durability(self, directory: str, fsync: bool = False) -> None:
        """Re-home the index onto a durable page store in ``directory``.

        Must be called before any operation.  Index I/O keeps entering
        the search/update tallies unchanged; write-ahead-log I/O is
        charged as auxiliary I/O, like the deletion queue's B-tree.
        Adapters without a durable backend raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no durable backend"
        )

    def close(self) -> None:
        """Checkpoint and close a durable backend (no-op otherwise)."""

    def _wal_mark(self) -> int:
        """Current cumulative WAL write count (0 when not durable)."""
        return self._durable_wal() if self._durable_wal is not None else 0

    def _charge_wal(self, mark: int) -> None:
        """Charge WAL writes since ``mark`` as auxiliary I/O."""
        if self._durable_wal is not None:
            self.op_stats.record_auxiliary(self._durable_wal() - mark)

    @abstractmethod
    def advance_time(self, t: float) -> None:
        """Move simulation time forward (may trigger scheduled work)."""

    @abstractmethod
    def insert(self, oid: int, point: MovingPoint) -> None:
        """Index a first report."""

    @abstractmethod
    def delete(self, oid: int, point: MovingPoint) -> bool:
        """Remove a report; False if it already expired or was purged."""

    @abstractmethod
    def query(self, query: SpatioTemporalQuery) -> List[int]:
        """Answer a query, charging its I/O to search."""

    def update(self, oid: int, old: MovingPoint, new: MovingPoint) -> bool:
        """An update is a deletion followed by an insertion (Section 5.1)."""
        existed = self.delete(oid, old)
        self.insert(oid, new)
        return existed

    def bulk_load(self, items: Sequence[Tuple[int, MovingPoint]]) -> None:
        """Load an initial population, charging its I/O as setup.

        The default falls back to repeated insertion (still charged as
        setup, not updates); tree-backed adapters override it with STR
        packing.
        """
        stats = self.op_stats
        update_io, update_ops = stats.update_io, stats.update_ops
        for oid, point in items:
            self.insert(oid, point)
        stats.record_setup(stats.update_io - update_io)
        stats.update_io, stats.update_ops = update_io, update_ops

    @property
    @abstractmethod
    def page_count(self) -> int:
        """Primary index size in pages (Figure 15)."""

    @property
    def aux_page_count(self) -> int:
        """Pages held by side structures (the deletion queue)."""
        return 0

    def audit(self) -> Optional[TreeAudit]:
        """Structural census, if the underlying index supports one."""
        return None

    def enable_observability(self, registry=None, tracer=None) -> None:
        """Attach a metrics registry and/or tracer to the wrapped index.

        The base adapter has nothing to instrument; index-backed
        adapters delegate to their tree or forest.
        """

    @property
    def buffer_counters(self) -> Tuple[int, int, int]:
        """``(hits, misses, evictions)`` of the primary index's pool."""
        return (0, 0, 0)


class TreeAdapter(IndexAdapter):
    """A bare moving-object tree (R^exp-tree or TPR-tree)."""

    def __init__(
        self,
        name: str,
        config: TreeConfig,
        clock: Optional[SimulationClock] = None,
    ):
        super().__init__(name)
        self.clock = clock if clock is not None else SimulationClock()
        self.tree = MovingObjectTree(config, self.clock)
        # A tree that discards expiration times answers with false drops
        # that a downstream filter would remove (Section 3).
        self.exact_semantics = config.store_leaf_expiration

    def enable_durability(self, directory: str, fsync: bool = False) -> None:
        """Replace the fresh simulated tree with a durable one."""
        if self.tree.leaf_entry_count:
            raise ValueError(
                "enable_durability requires an adapter that has not "
                "indexed anything yet"
            )
        self.tree = MovingObjectTree.create_durable(
            directory, self.tree.config, self.clock, fsync=fsync
        )
        self._durable_wal = lambda: self.tree.disk.wal.stats.writes

    def close(self) -> None:
        self.tree.close()

    def advance_time(self, t: float) -> None:
        self.clock.advance_to(t)

    def insert(self, oid: int, point: MovingPoint) -> None:
        before = self.tree.stats.snapshot()
        mark = self._wal_mark()
        self.tree.insert(oid, point)
        self.op_stats.record_update(self.tree.stats.since(before).total)
        self._charge_wal(mark)

    def delete(self, oid: int, point: MovingPoint) -> bool:
        before = self.tree.stats.snapshot()
        mark = self._wal_mark()
        removed = self.tree.delete(oid, point)
        self.op_stats.record_update(self.tree.stats.since(before).total)
        self._charge_wal(mark)
        return removed

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        before = self.tree.stats.snapshot()
        mark = self._wal_mark()
        result = self.tree.query(query)
        self.op_stats.record_search(self.tree.stats.since(before).total)
        # Queries lazily purge expired entries, so they too can commit.
        self._charge_wal(mark)
        return result

    def bulk_load(self, items) -> None:
        before = self.tree.stats.snapshot()
        mark = self._wal_mark()
        self.tree.bulk_load([(point, oid) for oid, point in items])
        self.op_stats.record_setup(self.tree.stats.since(before).total)
        self._charge_wal(mark)

    @property
    def page_count(self) -> int:
        return self.tree.page_count

    def audit(self) -> TreeAudit:
        return self.tree.audit()

    def enable_observability(self, registry=None, tracer=None) -> None:
        self.tree.enable_observability(registry, tracer)

    @property
    def buffer_counters(self) -> Tuple[int, int, int]:
        pool = self.tree.buffer
        return (pool.hits, pool.misses, pool.evictions)


class ForestAdapter(IndexAdapter):
    """A velocity-partitioned forest of moving-object trees.

    Accounts exactly like :class:`TreeAdapter` — the forest's aggregated
    I/O enters the search/update tallies — and additionally exposes the
    per-partition breakdown the forest experiments report.
    """

    def __init__(
        self,
        name: str,
        config: ForestConfig,
        clock: Optional[SimulationClock] = None,
        partitioner: Optional[Partitioner] = None,
    ):
        super().__init__(name)
        self.clock = clock if clock is not None else SimulationClock()
        self.forest = PartitionedMovingObjectForest(
            config, self.clock, partitioner
        )
        self.exact_semantics = config.tree.store_leaf_expiration

    def enable_durability(self, directory: str, fsync: bool = False) -> None:
        """Replace the fresh simulated forest with a durable one."""
        if self.forest.leaf_entry_count:
            raise ValueError(
                "enable_durability requires an adapter that has not "
                "indexed anything yet"
            )
        self.forest = PartitionedMovingObjectForest.create_durable(
            directory,
            self.forest.config,
            self.clock,
            self.forest.partitioner,
            fsync=fsync,
        )
        self._durable_wal = lambda: sum(
            tree.disk.wal.stats.writes for tree in self.forest.trees
        )

    def close(self) -> None:
        self.forest.close()

    def advance_time(self, t: float) -> None:
        self.clock.advance_to(t)

    def insert(self, oid: int, point: MovingPoint) -> None:
        before = self.forest.stats.snapshot()
        mark = self._wal_mark()
        self.forest.insert(oid, point)
        self.op_stats.record_update(self.forest.stats.since(before).total)
        self._charge_wal(mark)

    def delete(self, oid: int, point: MovingPoint) -> bool:
        before = self.forest.stats.snapshot()
        mark = self._wal_mark()
        removed = self.forest.delete(oid, point)
        self.op_stats.record_update(self.forest.stats.since(before).total)
        self._charge_wal(mark)
        return removed

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        before = self.forest.stats.snapshot()
        mark = self._wal_mark()
        result = self.forest.query(query)
        self.op_stats.record_search(self.forest.stats.since(before).total)
        # Queries lazily purge expired entries, so they too can commit.
        self._charge_wal(mark)
        return result

    def bulk_load(self, items) -> None:
        before = self.forest.stats.snapshot()
        mark = self._wal_mark()
        self.forest.bulk_load([(point, oid) for oid, point in items])
        self.op_stats.record_setup(self.forest.stats.since(before).total)
        self._charge_wal(mark)

    @property
    def page_count(self) -> int:
        return self.forest.page_count

    @property
    def partition_page_counts(self) -> List[int]:
        return self.forest.partition_page_counts()

    def audit(self) -> TreeAudit:
        return self.forest.audit()

    def enable_observability(self, registry=None, tracer=None) -> None:
        self.forest.enable_observability(registry, tracer)

    @property
    def buffer_counters(self) -> Tuple[int, int, int]:
        pools = [tree.buffer for tree in self.forest.trees]
        return (
            sum(pool.hits for pool in pools),
            sum(pool.misses for pool in pools),
            sum(pool.evictions for pool in pools),
        )


class ScheduledAdapter(IndexAdapter):
    """A moving-object tree plus the scheduled-deletion B-tree.

    Scheduled deletions are charged as update operations against the
    primary index (matching the paper's amortized cost model); all
    B-tree traffic is accounted as auxiliary I/O.
    """

    def __init__(
        self,
        name: str,
        config: TreeConfig,
        clock: Optional[SimulationClock] = None,
        queue_buffer_pages: int = 50,
    ):
        super().__init__(name)
        self.clock = clock if clock is not None else SimulationClock()
        tree = MovingObjectTree(config, self.clock)
        self.index = ScheduledDeletionIndex(
            tree, queue_buffer_pages=queue_buffer_pages
        )
        self.index.on_scheduled_deletion(
            lambda delta: self.op_stats.record_update(delta.total)
        )
        # Even with scheduled deletions, a tree without stored expiration
        # times reports objects that expire before the query time.
        self.exact_semantics = config.store_leaf_expiration

    @property
    def tree(self) -> MovingObjectTree:
        return self.index.tree

    def advance_time(self, t: float) -> None:
        before = self.index.queue.stats.snapshot()
        self.index.advance_time(t)
        self.op_stats.record_auxiliary(
            self.index.queue.stats.since(before).total
        )

    def insert(self, oid: int, point: MovingPoint) -> None:
        tree_before = self.tree.stats.snapshot()
        queue_before = self.index.queue.stats.snapshot()
        self.index.insert(oid, point)
        self.op_stats.record_update(self.tree.stats.since(tree_before).total)
        self.op_stats.record_auxiliary(
            self.index.queue.stats.since(queue_before).total
        )

    def delete(self, oid: int, point: MovingPoint) -> bool:
        tree_before = self.tree.stats.snapshot()
        queue_before = self.index.queue.stats.snapshot()
        removed = self.index.delete(oid, point)
        self.op_stats.record_update(self.tree.stats.since(tree_before).total)
        self.op_stats.record_auxiliary(
            self.index.queue.stats.since(queue_before).total
        )
        return removed

    def query(self, query: SpatioTemporalQuery) -> List[int]:
        before = self.tree.stats.snapshot()
        result = self.index.query(query)
        self.op_stats.record_search(self.tree.stats.since(before).total)
        return result

    def bulk_load(self, items) -> None:
        tree_before = self.tree.stats.snapshot()
        queue_before = self.index.queue.stats.snapshot()
        self.index.bulk_load([(point, oid) for oid, point in items])
        self.op_stats.record_setup(self.tree.stats.since(tree_before).total)
        self.op_stats.record_auxiliary(
            self.index.queue.stats.since(queue_before).total
        )

    @property
    def page_count(self) -> int:
        return self.index.page_count

    @property
    def aux_page_count(self) -> int:
        return self.index.queue_page_count

    def audit(self) -> TreeAudit:
        return self.tree.audit()

    def enable_observability(self, registry=None, tracer=None) -> None:
        self.tree.enable_observability(registry, tracer)

    @property
    def buffer_counters(self) -> Tuple[int, int, int]:
        pool = self.tree.buffer
        return (pool.hits, pool.misses, pool.evictions)
