"""Experiment scales: paper-size and laptop-size reproductions.

The paper runs 100,000-object workloads of one million insertions on a
C++ implementation; a pure-Python replay of the full grid would take
days.  Scaled-down presets keep the quantities that drive the *relative*
I/O behaviour comparable:

* tree height >= 3 (page size shrinks with the population);
* the buffer-to-index-size ratio near the paper's ~8 % (50 pages against
  a ~600-page index), so searches actually pay for misses;
* all *temporal* parameters (UI, ExpT, ExpD, W) exactly as in the paper —
  simulated minutes are free.

Select a scale with the ``REPRO_SCALE`` environment variable
(``tiny`` | ``small`` | ``medium`` | ``paper``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Size knobs for one experiment run."""

    name: str
    target_population: int
    insertions: int
    page_size: int
    buffer_pages: int
    queue_buffer_pages: int = 50

    @property
    def queries(self) -> int:
        """Approximate query count (one per 100 insertions)."""
        return self.insertions // 100


SCALES = {
    "tiny": Scale(
        name="tiny",
        target_population=300,
        insertions=4_000,
        page_size=512,
        buffer_pages=4,
        queue_buffer_pages=8,
    ),
    "small": Scale(
        name="small",
        target_population=1_500,
        insertions=15_000,
        page_size=1024,
        buffer_pages=6,
        queue_buffer_pages=12,
    ),
    "medium": Scale(
        name="medium",
        target_population=8_000,
        insertions=80_000,
        page_size=2048,
        buffer_pages=12,
        queue_buffer_pages=25,
    ),
    "paper": Scale(
        name="paper",
        target_population=100_000,
        insertions=1_000_000,
        page_size=4096,
        buffer_pages=50,
        queue_buffer_pages=50,
    ),
}

DEFAULT_SCALE = "tiny"


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: small)."""
    name = os.environ.get("REPRO_SCALE", DEFAULT_SCALE).strip().lower()
    if name not in SCALES:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; choose from {sorted(SCALES)}"
        )
    return SCALES[name]
