"""Dependency-free ASCII charts of reproduced figures.

The benchmarks print series tables; this module renders the same
:class:`~repro.experiments.figures.FigureResult` as a rough line chart so
the *shape* — crossings, divergence, flatness — is visible in a terminal
without matplotlib.
"""

from __future__ import annotations

from typing import List

from .figures import FigureResult

#: Series glyphs, assigned in insertion order.
_GLYPHS = "ox+*#@%&"


def ascii_chart(
    fig: FigureResult, width: int = 64, height: int = 18
) -> str:
    """Render all series of a figure into one ASCII chart.

    Args:
        fig: a populated figure result.
        width: chart width in characters (x-axis resolution).
        height: chart height in rows (y-axis resolution).

    Returns:
        A multi-line string: chart, axes and legend.
    """
    if not fig.series or not fig.xs:
        return f"{fig.figure_id}: (no data)"
    values = [v for series in fig.series.values() for v in series]
    y_min = min(values)
    y_max = max(values)
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_min, x_max = fig.xs[0], fig.xs[-1]
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((1.0 - (y - y_min) / (y_max - y_min)) * (height - 1))
        current = grid[row][col]
        grid[row][col] = "!" if current not in (" ", glyph) else glyph

    legend = []
    for i, (label, series) in enumerate(fig.series.items()):
        glyph = _GLYPHS[i % len(_GLYPHS)]
        legend.append(f"  {glyph}  {label}")
        # Linear interpolation between sweep points for visible lines.
        for (x0, y0), (x1, y1) in zip(
            zip(fig.xs, series), zip(fig.xs[1:], series[1:])
        ):
            steps = max(2, width // max(1, len(fig.xs) - 1))
            for s in range(steps + 1):
                t = s / steps
                plot(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, glyph)
        if len(fig.xs) == 1:
            plot(fig.xs[0], series[0], glyph)

    lines = [f"{fig.figure_id}: {fig.title}"]
    lines.append(f"{y_max:10.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.2f} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_min:<10g}{fig.x_label:^{max(0, width - 20)}}{x_max:>10g}"
    )
    lines.append(f"({fig.y_label}; '!' marks overlapping series)")
    lines.extend(legend)
    return "\n".join(lines)
