"""Experiment harness: adapters, runner, scales, figure reproductions."""

from .adapters import IndexAdapter, ScheduledAdapter, TreeAdapter
from .figures import (
    ALL_FIGURES,
    FigureResult,
    ablation_buffer_size,
    ablation_lazy_purge,
    ablation_overlap_heuristic,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)
from .plotting import ascii_chart
from .report import ShapeCheck, format_figure, print_figure, shape_checks
from .runner import RunResult, run_workload
from .scale import DEFAULT_SCALE, SCALES, Scale, current_scale

__all__ = [
    "ALL_FIGURES",
    "DEFAULT_SCALE",
    "FigureResult",
    "IndexAdapter",
    "RunResult",
    "SCALES",
    "Scale",
    "ScheduledAdapter",
    "ShapeCheck",
    "TreeAdapter",
    "ablation_buffer_size",
    "ascii_chart",
    "ablation_lazy_purge",
    "ablation_overlap_heuristic",
    "current_scale",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "format_figure",
    "print_figure",
    "run_workload",
    "shape_checks",
]
