"""Textual reporting of reproduced figures, with shape checks.

The reproduction target is the *shape* of each figure — which flavour
wins, by roughly what factor, and how series move along the x-axis — not
the paper's absolute I/O numbers (their substrate is a C++/GiST testbed;
ours is a Python page simulation).  ``shape_checks`` encodes the paper's
qualitative claims per figure so benchmarks can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .figures import FigureResult


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative expectation from the paper."""

    description: str
    passed: bool
    detail: str


def format_figure(fig: FigureResult) -> str:
    """Render a figure's series as an aligned text table."""
    labels = list(fig.series)
    width = max(24, max((len(label) for label in labels), default=24) + 2)
    header = f"{fig.figure_id}: {fig.title}  [scale={fig.scale_name}]"
    lines = [header, "-" * len(header)]
    x_cells = "".join(f"{x:>10g}" for x in fig.xs)
    lines.append(f"{fig.x_label:<{width}}{x_cells}")
    for label in labels:
        cells = "".join(f"{v:>10.2f}" for v in fig.series[label])
        lines.append(f"{label:<{width}}{cells}")
    lines.append(f"(y = {fig.y_label})")
    return "\n".join(lines)


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def shape_checks(fig: FigureResult) -> List[ShapeCheck]:
    """The paper's qualitative claims for one figure."""
    checks: List[ShapeCheck] = []

    def add(description: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(description, passed, detail))

    series = fig.series
    if fig.figure_id in ("fig9", "fig10"):
        best = "BRs w/o exp.t., algs with exp.t."
        add(
            "not recording TPBR expiration times is competitive "
            "(within 20% of the best flavour on average)",
            _mean(series[best]) <= 1.2 * min(_mean(v) for v in series.values()),
            f"mean({best}) = {_mean(series[best]):.2f}",
        )
        best_without = min(
            _mean(v) for k, v in series.items() if "BRs w/o exp.t." in k
        )
        best_with = min(
            _mean(v) for k, v in series.items() if "BRs with exp.t." in k
        )
        add(
            "dropping stored TPBR expiration times costs little search "
            "I/O (<= 25%) while buying internal fan-out",
            best_without <= 1.25 * best_with,
            f"best without {best_without:.2f} vs best with {best_with:.2f}",
        )
    elif fig.figure_id in ("fig11", "fig12"):
        near = _mean(series["Near-optimal"])
        optimal = _mean(series["Optimal"])
        static = _mean(series["Static"])
        add(
            "near-optimal TPBRs are competitive with every other type "
            "(within 25% of the best)",
            near <= 1.25 * min(_mean(v) for v in series.values()),
            f"mean near-optimal = {near:.2f}",
        )
        add(
            "optimal TPBRs do not improve on near-optimal ones "
            "(non-associativity; within 25%)",
            optimal >= 0.75 * near,
            f"optimal {optimal:.2f} vs near-optimal {near:.2f}",
        )
        if fig.figure_id == "fig11":
            last = len(fig.xs) - 1
            add(
                "static TPBRs degrade fastest as ExpT grows and are the "
                "worst type at the largest ExpT",
                series["Static"][last]
                >= max(v[last] for k, v in series.items() if k != "Static"),
                f"static at ExpT={fig.xs[last]:g}: {series['Static'][last]:.2f}",
            )
        else:
            add(
                "static TPBRs are respectable with speed-dependent "
                "expiration (within 2x of near-optimal)",
                static <= 2.0 * near,
                f"static {static:.2f} vs near-optimal {near:.2f}",
            )
    elif fig.figure_id in ("fig13", "fig14"):
        rexp = series["Rexp-tree"]
        tpr = series["TPR-tree"]
        sched = series["Rexp-tree with scheduled deletions"]
        add(
            "the R^exp-tree beats the TPR-tree on search",
            _mean(rexp) < _mean(tpr),
            f"mean Rexp {_mean(rexp):.2f} vs TPR {_mean(tpr):.2f}",
        )
        if fig.figure_id == "fig13":
            add(
                "the advantage is largest at short expiration distances "
                "(>= 1.3x at the smallest ExpD)",
                tpr[0] >= 1.3 * rexp[0],
                f"at ExpD={fig.xs[0]:g}: TPR {tpr[0]:.2f} vs Rexp {rexp[0]:.2f}",
            )
        else:
            add(
                "the TPR-tree degrades as turned-off objects accumulate",
                tpr[-1] > tpr[0],
                f"TPR at NewOb={fig.xs[0]:g}: {tpr[0]:.2f} -> "
                f"NewOb={fig.xs[-1]:g}: {tpr[-1]:.2f}",
            )
        add(
            "lazy purging is only slightly worse than scheduled deletions",
            _mean(rexp) <= 1.5 * _mean(sched),
            f"Rexp {_mean(rexp):.2f} vs scheduled {_mean(sched):.2f}",
        )
    elif fig.figure_id == "fig15":
        rexp = series["Rexp-tree"]
        tpr = series["TPR-tree"]
        sched = series["Rexp-tree with scheduled deletions"]
        add(
            "TPR-tree size grows with the fraction of new objects",
            tpr[-1] > 1.3 * tpr[0],
            f"TPR pages {tpr[0]:.0f} -> {tpr[-1]:.0f}",
        )
        add(
            "R^exp-tree size stays near the scheduled-deletion variant",
            rexp[-1] <= 1.3 * sched[-1],
            f"Rexp {rexp[-1]:.0f} vs scheduled {sched[-1]:.0f} at NewOb=2",
        )
        add(
            "the R^exp-tree stays much smaller than the TPR-tree at NewOb=2",
            rexp[-1] < tpr[-1],
            f"Rexp {rexp[-1]:.0f} vs TPR {tpr[-1]:.0f}",
        )
    elif fig.figure_id == "fig16":
        rexp = series["Rexp-tree"]
        tpr = series["TPR-tree"]
        add(
            "lazy removal does not blow up update cost "
            "(R^exp within 2x of the TPR-tree)",
            _mean(rexp) <= 2.0 * _mean(tpr),
            f"Rexp {_mean(rexp):.2f} vs TPR {_mean(tpr):.2f}",
        )
    elif fig.figure_id == "ablation-lazy":
        values = series["Rexp-tree"]
        add(
            "lazy purging keeps the expired fraction small (< 15%)",
            max(values) < 0.15,
            f"max expired fraction {max(values):.1%}",
        )
    return checks


def format_checks(checks: List[ShapeCheck]) -> str:
    lines = []
    for check in checks:
        flag = "PASS" if check.passed else "MISS"
        lines.append(f"  [{flag}] {check.description} ({check.detail})")
    return "\n".join(lines)


def print_figure(fig: FigureResult, file=None) -> None:
    """Print the reproduced figure and its shape checks.

    Args:
        fig: the figure to report.
        file: output stream (defaults to stdout; the benchmarks pass the
            un-captured stream so reports survive pytest's capture).
    """
    print(file=file)
    print(format_figure(fig), file=file)
    checks = shape_checks(fig)
    if checks:
        print("shape checks:", file=file)
        print(format_checks(checks), file=file)
