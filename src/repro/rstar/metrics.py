"""Metric providers instantiating the generic R* heuristics.

``RectMetrics`` gives the classic R*-tree (plain geometry).
``KineticMetrics`` gives the TPR/R^exp behaviour: every objective is the
time integral of its R*-tree counterpart over the time horizon H
(Equation 1), and bounds are computed by the configured TPBR algorithm.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from ..geometry.bounding import BoundingKind, compute_tpbr
from ..geometry.integrals import (
    area_integral,
    center_distance_sq_integral,
    integration_end,
    margin_integral,
    overlap_integral,
)
from ..geometry.kernels import (
    batch_area_integral,
    batch_center_distance_sq_integral,
    batch_compute_tpbr,
    batch_margin_integral,
    batch_overlap_integral,
)
from ..geometry.kinematics import NEVER, MovingPoint
from ..geometry.rect import Rect
from ..geometry.tpbr import TPBR, Boundable
from .heuristics import Metrics


def as_tpbr(region: Boundable) -> TPBR:
    """View any boundable item (moving point or TPBR) as a TPBR."""
    if isinstance(region, TPBR):
        return region
    return TPBR.from_moving_point(region, region.t_ref)


def strip_expiration(region: Boundable) -> Boundable:
    """A copy of the item that never expires (decision-making only)."""
    if isinstance(region, TPBR):
        return region.without_expiration()
    if math.isinf(region.t_exp):
        return region
    return MovingPoint(region.pos, region.vel, region.t_ref, NEVER)


class RectMetrics(Metrics[Rect]):
    """Plain rectangle geometry — the classic R*-tree objectives."""

    def bound(self, regions: Sequence[Rect]) -> Rect:
        return Rect.union_of(regions)

    def area(self, region: Rect) -> float:
        return region.area

    def margin(self, region: Rect) -> float:
        return region.margin

    def overlap(self, a: Rect, b: Rect) -> float:
        return a.overlap_area(b)

    def center_distance(self, a: Rect, b: Rect) -> float:
        return a.center_distance(b)

    def split_sort_keys(self, region: Rect) -> List[float]:
        return list(region.lo) + list(region.hi)


class KineticMetrics(Metrics[Boundable]):
    """Time-integral objectives over TPBRs (TPR-tree / R^exp-tree).

    Args:
        kind: the bounding-rectangle algorithm used for what-if bounds.
        now: callable returning the current simulation time (the lower
            integration bound).
        horizon: callable returning the time horizon H (Section 4.2.1).
        rng: randomness source for near-optimal dimension ordering.
        ignore_expiration: when set, decision-making treats every region
            as never-expiring (the "algs w/o exp.t." flavour of
            Section 4.2.2) — bounds become conservative and integration
            windows depend only on H.
    """

    def __init__(
        self,
        kind: BoundingKind,
        now: Callable[[], float],
        horizon: Callable[[], float],
        rng: Optional[random.Random] = None,
        ignore_expiration: bool = False,
    ):
        self.kind = kind
        self.now = now
        self.horizon = horizon
        self.rng = rng
        self.ignore_expiration = ignore_expiration

    def _prepared(self, regions: Sequence[Boundable]) -> Sequence[Boundable]:
        if not self.ignore_expiration:
            return list(regions)
        return [strip_expiration(r) for r in regions]

    def _effective_kind(self) -> BoundingKind:
        if self.ignore_expiration and self.kind in (
            BoundingKind.STATIC,
            BoundingKind.UPDATE_MINIMUM,
        ):
            # Without expiration times these degenerate to conservative.
            return BoundingKind.CONSERVATIVE
        return self.kind

    def bound(self, regions: Sequence[Boundable]) -> TPBR:
        regions = self._prepared(regions)
        return compute_tpbr(
            regions,
            self.now(),
            self._effective_kind(),
            horizon=self.horizon(),
            rng=self.rng,
        )

    def _window(self, *regions: Boundable) -> tuple:
        t0 = self.now()
        if self.ignore_expiration:
            t1 = t0 + self.horizon()
        else:
            t1 = integration_end(
                t0, self.horizon(), [r.t_exp for r in regions]
            )
        return t0, t1

    def _windows(
        self, regions: Sequence[Boundable], anchor: Optional[Boundable] = None
    ) -> List[tuple]:
        """Per-region integration windows (``_window``, batched)."""
        t0 = self.now()
        horizon = self.horizon()
        if self.ignore_expiration:
            return [(t0, t0 + horizon)] * len(regions)
        if anchor is None:
            return [
                (t0, integration_end(t0, horizon, [r.t_exp]))
                for r in regions
            ]
        return [
            (t0, integration_end(t0, horizon, [r.t_exp, anchor.t_exp]))
            for r in regions
        ]

    def area(self, region: Boundable) -> float:
        t0, t1 = self._window(region)
        return area_integral(as_tpbr(region), t0, t1)

    def margin(self, region: Boundable) -> float:
        t0, t1 = self._window(region)
        return margin_integral(as_tpbr(region), t0, t1)

    def overlap(self, a: Boundable, b: Boundable) -> float:
        t0, t1 = self._window(a, b)
        return overlap_integral(as_tpbr(a), as_tpbr(b), t0, t1)

    def center_distance(self, a: Boundable, b: Boundable) -> float:
        t0, t1 = self._window(a, b)
        return center_distance_sq_integral(as_tpbr(a), as_tpbr(b), t0, t1)

    # -- batched overrides (vectorized in repro.geometry.kernels) ------------

    def bound_many(
        self, groups: Sequence[Sequence[Boundable]]
    ) -> List[TPBR]:
        prepared = [self._prepared(g) for g in groups]
        return batch_compute_tpbr(
            prepared,
            self.now(),
            self._effective_kind(),
            horizon=self.horizon(),
            rng=self.rng,
        )

    def area_many(self, regions: Sequence[Boundable]) -> List[float]:
        return batch_area_integral(
            [as_tpbr(r) for r in regions], self._windows(regions)
        )

    def margin_many(self, regions: Sequence[Boundable]) -> List[float]:
        return batch_margin_integral(
            [as_tpbr(r) for r in regions], self._windows(regions)
        )

    def overlap_many(
        self, anchor: Boundable, regions: Sequence[Boundable]
    ) -> List[float]:
        return batch_overlap_integral(
            as_tpbr(anchor),
            [as_tpbr(r) for r in regions],
            self._windows(regions, anchor),
        )

    def center_distance_many(
        self, regions: Sequence[Boundable], anchor: Boundable
    ) -> List[float]:
        return batch_center_distance_sq_integral(
            [as_tpbr(r) for r in regions],
            as_tpbr(anchor),
            self._windows(regions, anchor),
        )

    def split_sort_keys(self, region: Boundable) -> List[float]:
        # Positions are compared at the current time, not the (possibly
        # stale) per-rectangle reference times.
        br = as_tpbr(region)
        t = self.now()
        keys: List[float] = []
        for d in range(br.dims):
            keys.append(br.lower_at(d, t))
            keys.append(br.upper_at(d, t))
        for d in range(br.dims):
            keys.append(br.vlo[d])
            keys.append(br.vhi[d])
        return keys
