"""A disk-based R*-tree over static rectangles.

This is the substrate access method the R^exp-tree builds on (Beckmann
et al. [5] in the paper).  It exercises the same generic ChooseSubtree /
Split / forced-reinsert machinery the moving-object trees use, against
plain rectangle geometry, and runs on the simulated paged store so all
of its I/O is accounted.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..geometry.rect import Rect
from ..storage.buffer import BufferPool
from ..storage.disk import DiskManager, PageId
from ..storage.layout import EntryLayout
from ..storage.stats import IOStats
from .heuristics import choose_child, choose_split, reinsert_candidates
from .metrics import RectMetrics
from .node import Node


class RStarTree:
    """Classic R*-tree with forced reinsertion, on simulated disk pages.

    Args:
        page_size: disk page size in bytes (one node per page).
        buffer_pages: LRU buffer pool capacity.
        dims: dimensionality of the indexed rectangles.
        min_fill: minimum node fill fraction (R*-tree default 0.4).
        reinsert_fraction: fraction of entries evicted by forced
            reinsertion on the first overflow per level (default 0.3).
    """

    def __init__(
        self,
        page_size: int = 4096,
        buffer_pages: int = 50,
        dims: int = 2,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ):
        self.dims = dims
        self.min_fill = min_fill
        self.reinsert_fraction = reinsert_fraction
        self.stats = IOStats()
        self.disk = DiskManager(page_size, self.stats)
        self.buffer = BufferPool(self.disk, buffer_pages)
        layout = EntryLayout(
            page_size=page_size,
            dims=dims,
            store_velocities=False,
            store_br_expiration=False,
            store_leaf_expiration=False,
        )
        self.leaf_capacity = layout.leaf_capacity
        self.internal_capacity = layout.internal_capacity
        self.metrics = RectMetrics()
        self._size = 0
        self.root_pid = self._new_node(Node(0))
        self.buffer.pin(self.root_pid)

    # -- public API -----------------------------------------------------------

    def insert(self, rect: Rect, payload: Any) -> None:
        """Insert a rectangle (or point rectangle) with its payload."""
        if rect.dims != self.dims:
            raise ValueError(f"expected {self.dims}-d rectangle, got {rect.dims}-d")
        self._insert_entry((rect, payload), level=0, allow_reinsert=True)
        self._size += 1
        self.buffer.flush_all()

    def delete(self, rect: Rect, payload: Any) -> bool:
        """Delete one entry matching the rectangle and payload exactly.

        Returns:
            True if an entry was found and removed.
        """
        path = self._find_leaf(rect, payload)
        if path is None:
            self.buffer.flush_all()
            return False
        self._remove_at(path, rect, payload)
        self._size -= 1
        self.buffer.flush_all()
        return True

    def search(self, rect: Rect) -> List[Any]:
        """Payloads of all entries whose rectangles intersect ``rect``."""
        results: List[Any] = []
        stack = [self.root_pid]
        while stack:
            node = self._load(stack.pop())
            for region, value in node.entries:
                if region.intersects(rect):
                    if node.is_leaf:
                        results.append(value)
                    else:
                        stack.append(value)
        self.buffer.flush_all()
        return results

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self._load(self.root_pid).level + 1

    @property
    def page_count(self) -> int:
        return self.disk.allocated_pages

    def iter_entries(self) -> Iterator[Tuple[Rect, Any]]:
        """All leaf entries (test/inspection helper; charges I/O)."""
        stack = [self.root_pid]
        while stack:
            node = self._load(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.child_ids())

    # -- node I/O helpers ------------------------------------------------------

    def _new_node(self, node: Node) -> PageId:
        pid = self.disk.allocate()
        self.buffer.put_new(pid, node)
        return pid

    def _load(self, pid: PageId) -> Node:
        return self.buffer.get(pid)

    def _touch(self, pid: PageId, node: Node) -> None:
        node.soa = None  # entries changed; drop the packed-query cache
        self.buffer.mark_dirty(pid, node)

    def _capacity(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.internal_capacity

    def _min_entries(self, node: Node) -> int:
        return max(2, int(self._capacity(node) * self.min_fill))

    # -- insertion -------------------------------------------------------------

    def _insert_entry(
        self, entry: Tuple[Rect, Any], level: int, allow_reinsert: bool
    ) -> None:
        pending: List[Tuple[Tuple[Rect, Any], int]] = [(entry, level)]
        reinserted_levels: set = set() if allow_reinsert else None
        while pending:
            item, item_level = pending.pop()
            split = self._insert_rec(
                self.root_pid, item, item_level, reinserted_levels, pending
            )
            if split is not None:
                self._grow_root(split)

    def _insert_rec(
        self,
        pid: PageId,
        entry: Tuple[Rect, Any],
        target_level: int,
        reinserted_levels: Optional[set],
        pending: List[Tuple[Tuple[Rect, Any], int]],
    ) -> Optional[Tuple[Rect, PageId]]:
        """Insert ``entry`` at ``target_level``; return a new sibling entry
        for the caller to install if this node was split."""
        node = self._load(pid)
        if node.level == target_level:
            node.entries.append(entry)
        else:
            use_overlap = node.level == target_level + 1 and target_level == 0
            idx = choose_child(
                self.metrics, node.regions(), entry[0], use_overlap
            )
            child_pid = node.entries[idx][1]
            split = self._insert_rec(
                child_pid, entry, target_level, reinserted_levels, pending
            )
            child = self._load(child_pid)
            node.entries[idx] = (self.metrics.bound(child.regions()), child_pid)
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > self._capacity(node):
            result = self._overflow(pid, node, reinserted_levels, pending)
            self._touch(pid, node)
            return result
        self._touch(pid, node)
        return None

    def _overflow(
        self,
        pid: PageId,
        node: Node,
        reinserted_levels: Optional[set],
        pending: List[Tuple[Tuple[Rect, Any], int]],
    ) -> Optional[Tuple[Rect, PageId]]:
        is_root = pid == self.root_pid
        can_reinsert = (
            reinserted_levels is not None
            and not is_root
            and node.level not in reinserted_levels
        )
        if can_reinsert:
            reinserted_levels.add(node.level)
            count = max(1, int(len(node.entries) * self.reinsert_fraction))
            evicted = reinsert_candidates(self.metrics, node.regions(), count)
            evicted_set = set(evicted)
            for i in evicted:
                pending.append((node.entries[i], node.level))
            node.entries = [
                e for i, e in enumerate(node.entries) if i not in evicted_set
            ]
            return None
        return self._split(node)

    def _split(self, node: Node) -> Tuple[Rect, PageId]:
        result = choose_split(
            self.metrics, node.regions(), self._min_entries(node)
        )
        entries = node.entries
        node.entries = [entries[i] for i in result.group_a]
        sibling = Node(node.level, [entries[i] for i in result.group_b])
        sibling_pid = self._new_node(sibling)
        return (self.metrics.bound(sibling.regions()), sibling_pid)

    def _grow_root(self, split: Tuple[Rect, PageId]) -> None:
        old_root = self._load(self.root_pid)
        old_entries_bound = self.metrics.bound(old_root.regions())
        moved_pid = self._new_node(Node(old_root.level, old_root.entries))
        new_root = Node(old_root.level + 1, [
            (old_entries_bound, moved_pid),
            split,
        ])
        self._touch(self.root_pid, new_root)

    # -- deletion ---------------------------------------------------------------

    def _find_leaf(
        self, rect: Rect, payload: Any
    ) -> Optional[List[Tuple[PageId, int]]]:
        """DFS for the leaf holding the entry; returns (pid, child index)
        pairs from the root down to the leaf entry."""
        stack: List[List[Tuple[PageId, int]]] = [[(self.root_pid, -1)]]
        while stack:
            path = stack.pop()
            pid = path[-1][0]
            node = self._load(pid)
            for i, (region, value) in enumerate(node.entries):
                if node.is_leaf:
                    if value == payload and region == rect:
                        return path[:-1] + [(pid, i)]
                elif region.contains_rect(rect):
                    stack.append(path[:-1] + [(pid, -1), (value, -1)])
        return None

    def _remove_at(
        self, path: List[Tuple[PageId, int]], rect: Rect, payload: Any
    ) -> None:
        leaf_pid, entry_idx = path[-1]
        leaf = self._load(leaf_pid)
        del leaf.entries[entry_idx]
        self._touch(leaf_pid, leaf)
        orphans: List[Tuple[Tuple[Rect, Any], int]] = []
        # Walk back up, dropping underfull nodes and fixing bounds.
        for depth in range(len(path) - 1, 0, -1):
            pid = path[depth][0]
            parent_pid = path[depth - 1][0]
            node = self._load(pid)
            parent = self._load(parent_pid)
            child_idx = next(
                i for i, (_, v) in enumerate(parent.entries) if v == pid
            )
            if len(node.entries) < self._min_entries(node):
                for entry in node.entries:
                    orphans.append((entry, node.level))
                del parent.entries[child_idx]
                self.buffer.discard(pid)
                self.disk.free(pid)
            else:
                parent.entries[child_idx] = (
                    self.metrics.bound(node.regions()),
                    pid,
                )
            self._touch(parent_pid, parent)
        # Reinsert orphans, highest levels first.
        orphans.sort(key=lambda pair: -pair[1])
        for entry, level in orphans:
            self._insert_entry(entry, level, allow_reinsert=False)
        self._shrink_root()

    def _shrink_root(self) -> None:
        root = self._load(self.root_pid)
        while not root.is_leaf and len(root.entries) == 1:
            child_pid = root.entries[0][1]
            child = self._load(child_pid)
            self._touch(self.root_pid, Node(child.level, child.entries))
            self.buffer.discard(child_pid)
            self.disk.free(child_pid)
            root = self._load(self.root_pid)
