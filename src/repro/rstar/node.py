"""Node representation shared by the disk-based trees."""

from __future__ import annotations

from typing import Any, List, Tuple

from ..storage.disk import PageId


class Node:
    """A tree node stored on one disk page.

    ``level`` 0 is a leaf.  Leaf entries are ``(region, payload)`` pairs;
    internal entries are ``(region, child_page_id)`` pairs.  The region
    type is ``Rect`` for the static R*-tree and ``TPBR`` for the moving
    trees.

    ``soa`` caches the packed structure-of-arrays form of the entry
    regions used by the batched query kernels; it is rebuilt lazily and
    must be dropped (set to ``None``) whenever ``entries`` changes — the
    trees do so in their ``_touch`` dirty-marking helper, which every
    mutation already goes through for write-back.
    """

    __slots__ = ("level", "entries", "soa")

    def __init__(self, level: int, entries: List[Tuple[Any, Any]] = None):
        self.level = level
        self.entries = entries if entries is not None else []
        self.soa = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def regions(self) -> List[Any]:
        return [region for region, _ in self.entries]

    def child_ids(self) -> List[PageId]:
        if self.is_leaf:
            raise ValueError("leaf nodes have no children")
        return [child for _, child in self.entries]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(level={self.level}, entries={len(self.entries)})"
