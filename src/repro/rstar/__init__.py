"""Classic R*-tree substrate and the generic R* heuristics."""

from .heuristics import (
    Metrics,
    SplitResult,
    choose_child,
    choose_split,
    reinsert_candidates,
)
from .metrics import KineticMetrics, RectMetrics
from .node import Node
from .tree import RStarTree

__all__ = [
    "KineticMetrics",
    "Metrics",
    "Node",
    "RStarTree",
    "RectMetrics",
    "SplitResult",
    "choose_child",
    "choose_split",
    "reinsert_candidates",
]
