"""Generic R*-tree insertion heuristics (Beckmann et al., adapted).

The paper states that the ChooseSubtree, Split and RemoveTop algorithms
of the R^exp-tree are *the same* as the TPR-tree's, which in turn are the
R*-tree's with the area/margin/overlap objectives replaced by their time
integrals (Equation 1).  This module therefore implements the heuristics
once, parameterized over a :class:`Metrics` provider:

* plain rectangle geometry  -> the classic R*-tree substrate;
* time-integral geometry    -> the TPR-tree and the R^exp-tree.

One deviation, taken from the paper: the R^exp-tree's ChooseSubtree does
*not* use overlap enlargement ("This simplifies the algorithm, making it
linear instead of quadratic"), so overlap use is a provider/caller flag.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Generic, List, Sequence, Tuple, TypeVar

Region = TypeVar("Region")


class Metrics(ABC, Generic[Region]):
    """Geometry oracle the generic heuristics are written against."""

    @abstractmethod
    def bound(self, regions: Sequence[Region]) -> Region:
        """Bounding region of the given regions."""

    @abstractmethod
    def area(self, region: Region) -> float:
        """Area objective (plain area, or its time integral)."""

    @abstractmethod
    def margin(self, region: Region) -> float:
        """Margin objective (perimeter, or its time integral)."""

    @abstractmethod
    def overlap(self, a: Region, b: Region) -> float:
        """Overlap objective (shared area, or its time integral)."""

    @abstractmethod
    def center_distance(self, a: Region, b: Region) -> float:
        """Distance objective used by forced reinsertion."""

    @abstractmethod
    def split_sort_keys(self, region: Region) -> Sequence[float]:
        """Per-region sort keys, one per candidate split ordering.

        For rectangles: lower and upper value per axis.  For TPBRs the
        TPR-tree additionally sorts by the bound velocities.
        """

    def enlargement(self, region: Region, addition: Region) -> float:
        """Area growth of ``region`` when extended to cover ``addition``."""
        return self.area(self.bound([region, addition])) - self.area(region)

    # -- batch variants ------------------------------------------------------
    #
    # The heuristics below score many candidate groups per call; providers
    # may override these with vectorized kernels.  The defaults loop the
    # scalar methods, so overriding is purely an optimization — results
    # must be identical either way.

    def bound_many(
        self, groups: Sequence[Sequence[Region]]
    ) -> List[Region]:
        """One bounding region per group."""
        return [self.bound(g) for g in groups]

    def area_many(self, regions: Sequence[Region]) -> List[float]:
        """Area objective of each region."""
        return [self.area(r) for r in regions]

    def margin_many(self, regions: Sequence[Region]) -> List[float]:
        """Margin objective of each region."""
        return [self.margin(r) for r in regions]

    def overlap_many(
        self, anchor: Region, regions: Sequence[Region]
    ) -> List[float]:
        """Overlap objective of ``anchor`` with each region."""
        return [self.overlap(anchor, r) for r in regions]

    def center_distance_many(
        self, regions: Sequence[Region], anchor: Region
    ) -> List[float]:
        """Distance objective of each region against ``anchor``."""
        return [self.center_distance(r, anchor) for r in regions]


def choose_child(
    metrics: Metrics[Region],
    child_regions: Sequence[Region],
    new_region: Region,
    use_overlap: bool,
) -> int:
    """Pick the child to descend into (R*-tree ChooseSubtree).

    With ``use_overlap`` (children are leaves, R*/TPR behaviour), the
    child whose extension least increases the summed overlap with its
    siblings wins; ties by area enlargement, then area.  Without it (the
    R^exp-tree's linear variant) area enlargement decides directly.
    """
    if not child_regions:
        raise ValueError("choose_child on empty node")
    extended = metrics.bound_many(
        [[region, new_region] for region in child_regions]
    )
    extended_areas = metrics.area_many(extended)
    areas = metrics.area_many(child_regions)
    best = 0
    best_key: Tuple[float, ...] = ()
    for i, region in enumerate(child_regions):
        enlargement = extended_areas[i] - areas[i]
        if use_overlap:
            overlaps_ext = metrics.overlap_many(extended[i], child_regions)
            overlaps_cur = metrics.overlap_many(region, child_regions)
            overlap_delta = 0.0
            for j in range(len(child_regions)):
                if j == i:
                    continue
                overlap_delta += overlaps_ext[j]
                overlap_delta -= overlaps_cur[j]
            key = (overlap_delta, enlargement, areas[i])
        else:
            key = (enlargement, areas[i])
        if i == 0 or key < best_key:
            best = i
            best_key = key
    return best


@dataclass(frozen=True)
class SplitResult:
    """Index sets of the two groups produced by a node split."""

    group_a: Tuple[int, ...]
    group_b: Tuple[int, ...]


def choose_split(
    metrics: Metrics[Region],
    regions: Sequence[Region],
    min_entries: int,
) -> SplitResult:
    """R*-tree topological split over all candidate sort orderings.

    The ordering (axis/bound/velocity) with the smallest summed margin of
    its candidate distributions is chosen; within it, the distribution
    with the least overlap between the two groups wins, ties broken by
    total area.
    """
    n = len(regions)
    if n < 2 * min_entries:
        raise ValueError(
            f"cannot split {n} entries with min fill {min_entries}"
        )
    key_count = len(metrics.split_sort_keys(regions[0]))
    all_keys = [metrics.split_sort_keys(r) for r in regions]
    split_points = range(min_entries, n - min_entries + 1)

    def distributions(order: Sequence[int]) -> List[List[Region]]:
        groups: List[List[Region]] = []
        for split_at in split_points:
            groups.append([regions[i] for i in order[:split_at]])
            groups.append([regions[i] for i in order[split_at:]])
        return groups

    best_ordering: List[int] = []
    best_margin = float("inf")
    for k in range(key_count):
        order = sorted(range(n), key=lambda i: all_keys[i][k])
        margins = metrics.margin_many(metrics.bound_many(distributions(order)))
        margin_sum = 0.0
        for s in range(len(split_points)):
            margin_sum += margins[2 * s] + margins[2 * s + 1]
        if margin_sum < best_margin:
            best_margin = margin_sum
            best_ordering = order

    bounds = metrics.bound_many(distributions(best_ordering))
    areas = metrics.area_many(bounds)
    best_split = min_entries
    best_key = (float("inf"), float("inf"))
    for s, split_at in enumerate(split_points):
        left, right = bounds[2 * s], bounds[2 * s + 1]
        key = (
            metrics.overlap(left, right),
            areas[2 * s] + areas[2 * s + 1],
        )
        if key < best_key:
            best_key = key
            best_split = split_at
    return SplitResult(
        tuple(best_ordering[:best_split]), tuple(best_ordering[best_split:])
    )


def reinsert_candidates(
    metrics: Metrics[Region],
    regions: Sequence[Region],
    count: int,
) -> List[int]:
    """Indices to evict for forced reinsertion (R*-tree RemoveTop).

    The ``count`` entries whose centers lie farthest from the node
    bound's center are evicted; they are returned farthest-last, i.e. in
    the "close reinsert" order the R*-tree authors found superior.
    """
    if count <= 0:
        return []
    bound = metrics.bound(regions)
    distances = metrics.center_distance_many(regions, bound)
    order = sorted(
        range(len(regions)),
        key=lambda i: distances[i],
        reverse=True,
    )
    evicted = order[:count]
    evicted.reverse()
    return evicted
