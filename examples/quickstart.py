"""Quickstart: index moving objects with expiration times and query them.

Run:  python examples/quickstart.py
"""

from repro import (
    MovingObjectTree,
    MovingPoint,
    MovingQuery,
    Rect,
    SimulationClock,
    TimesliceQuery,
    WindowQuery,
    rexp_config,
)


def main() -> None:
    # A shared simulation clock drives the index; time is in minutes.
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(), clock)

    # Three objects reporting (position, velocity) at t=0.  Each report
    # carries an expiration time: after it, the information is stale and
    # the index ignores (and eventually purges) it.
    tree.insert(1, MovingPoint(pos=(100.0, 100.0), vel=(1.0, 0.0),
                               t_ref=0.0, t_exp=120.0))
    tree.insert(2, MovingPoint(pos=(200.0, 100.0), vel=(-1.0, 0.5),
                               t_ref=0.0, t_exp=60.0))
    tree.insert(3, MovingPoint(pos=(105.0, 95.0), vel=(0.0, 0.0),
                               t_ref=0.0, t_exp=15.0))

    # Type 1, timeslice: who is predicted inside this square at t=10?
    q1 = TimesliceQuery(Rect((90.0, 90.0), (120.0, 110.0)), t=10.0)
    print("timeslice @ t=10:", sorted(tree.query(q1)))

    # Object 3 expires at t=15; the same query at t=20 omits it.
    q2 = TimesliceQuery(Rect((90.0, 90.0), (130.0, 110.0)), t=20.0)
    print("timeslice @ t=20:", sorted(tree.query(q2)))

    # Type 2, window: anyone passing through the square during [0, 50]?
    q3 = WindowQuery(Rect((140.0, 95.0), (160.0, 115.0)), 0.0, 50.0)
    print("window  [0, 50]:", sorted(tree.query(q3)))

    # Type 3, moving: a query region that travels with object 1.
    q4 = MovingQuery(
        Rect((95.0, 95.0), (115.0, 105.0)),
        Rect((115.0, 95.0), (135.0, 105.0)),
        0.0, 20.0,
    )
    print("moving  [0, 20]:", sorted(tree.query(q4)))

    # Objects update by deleting the old report and inserting the new.
    clock.advance_to(30.0)
    old = MovingPoint((100.0, 100.0), (1.0, 0.0), 0.0, 120.0)
    new = MovingPoint((130.0, 100.0), (0.5, 0.5), 30.0, 150.0)
    tree.update(1, old, new)
    print("after update, timeslice @ t=40:",
          sorted(tree.query(TimesliceQuery(Rect((120.0, 95.0), (150.0, 115.0)), 40.0))))

    # The index is disk-based: every figure in the paper measures these.
    print(f"index: {tree.page_count} pages, height {tree.height}, "
          f"{tree.stats.reads} reads / {tree.stats.writes} writes so far")


if __name__ == "__main__":
    main()
