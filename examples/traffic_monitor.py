"""Traffic monitoring over the paper's road-network workload.

Vehicles drive between cities on the Section 5.1 network (accelerating,
cruising, decelerating, reporting as they go).  A control center asks:

* timeslice queries — "which vehicles will be inside this zone in five
  minutes?",
* window queries — "who passes the toll plaza in the next quarter hour?",
* a moving query tracking a convoy.

The example compares the R^exp-tree against a plain TPR-tree on the same
stream to show the cost of carrying expired reports around.

Run:  python examples/traffic_monitor.py
"""

import os
import random

from repro import MovingQuery, Rect, TimesliceQuery, WindowQuery
from repro.core.presets import rexp_config, tpr_config
from repro.experiments.adapters import TreeAdapter
from repro.workloads import (
    FixedDistance,
    NetworkParams,
    QueryOp,
    UpdateOp,
    generate_network_workload,
)


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    params = NetworkParams(
        target_population=80 if fast else 400,
        insertions=1000 if fast else 6000,
        update_interval=30.0,
        seed=63,
    )
    # Reports expire after 120 km of travel: fast vehicles go stale sooner.
    workload = generate_network_workload(params, FixedDistance(120.0))
    print(f"simulating {workload.params['population']} vehicles over "
          f"{workload.ops[-1].time:.0f} minutes "
          f"({workload.insertion_count} reports)")

    # Small pages and a small buffer keep the demo index disk-bound the
    # way the paper's 100k-object index is (see repro.experiments.scale).
    sizing = dict(page_size=512, buffer_pages=4, default_ui=30.0)
    rexp = TreeAdapter("Rexp-tree", rexp_config(**sizing))
    tpr = TreeAdapter("TPR-tree", tpr_config(**sizing))

    last_points = {}
    for op in workload:
        for adapter in (rexp, tpr):
            adapter.advance_time(op.time)
        if isinstance(op, UpdateOp):
            rexp.update(op.oid, op.old_point, op.new_point)
            tpr.update(op.oid, op.old_point, op.new_point)
            last_points[op.oid] = op.new_point
        elif isinstance(op, QueryOp):
            rexp.query(op.query)
            tpr.query(op.query)
        else:  # first report
            rexp.insert(op.oid, op.point)
            tpr.insert(op.oid, op.point)
            last_points[op.oid] = op.point

    now = workload.ops[-1].time
    rng = random.Random(1)

    # Zone check: who is predicted downtown five minutes from now?
    downtown = Rect((400.0, 400.0), (550.0, 550.0))
    q_zone = TimesliceQuery(downtown, now + 5.0)
    print(f"\nvehicles predicted downtown at t+5: "
          f"{len(rexp.query(q_zone))} (Rexp) vs "
          f"{len(tpr.query(q_zone))} (TPR, includes stale reports)")

    # Toll plaza throughput over the next 15 minutes.
    plaza = Rect((700.0, 200.0), (740.0, 240.0))
    q_toll = WindowQuery(plaza, now, now + 15.0)
    print(f"vehicles crossing the toll plaza in [t, t+15]: "
          f"{len(rexp.query(q_toll))}")

    # Track a convoy: a moving query following one live vehicle.
    convoy = last_points[rng.choice(sorted(last_points))]
    c_now = convoy.position_at(now)
    c_later = convoy.position_at(now + 10.0)

    def box(center, r=40.0):
        return Rect(
            (center[0] - r, center[1] - r), (center[0] + r, center[1] + r)
        )

    q_convoy = MovingQuery(box(c_now), box(c_later), now, now + 10.0)
    near_convoy = rexp.query(q_convoy)
    print(f"vehicles travelling near the convoy: {len(near_convoy)}")

    print("\n--- index economics (the paper's metrics) ---")
    for adapter in (rexp, tpr):
        stats = adapter.op_stats
        audit = adapter.audit()
        print(f"{adapter.name:<10} search I/O {stats.avg_search_io:6.2f}/query   "
              f"update I/O {stats.avg_update_io:5.2f}/op   "
              f"{adapter.page_count:4d} pages   "
              f"{audit.expired_leaf_entries} expired entries retained")
    ratio = tpr.op_stats.avg_search_io / max(rexp.op_stats.avg_search_io, 1e-9)
    print(f"\nexpiration-aware indexing answered queries with "
          f"{ratio:.2f}x less I/O than the TPR-tree on this stream")


if __name__ == "__main__":
    main()
