"""Visual tour of the five TPBR types (Figures 3-5 of the paper).

Bounds the same set of one-dimensional expiring trajectories with each
bounding-rectangle algorithm and prints an ASCII space-time diagram plus
the area integral each achieves — the quantity the insertion heuristics
minimize.

Run:  python examples/bounding_rectangles.py
"""

import random

from repro.geometry import (
    BoundingKind,
    MovingPoint,
    area_integral,
    compute_tpbr,
)

HORIZON = 10.0
WIDTH = 64
HEIGHT = 22
X_MAX = 30.0


def trajectories():
    """Four expiring 1-d objects, Figure 3/4 style."""
    return [
        MovingPoint((4.0,), (2.0,), 0.0, 4.0),    # fast riser, expires early
        MovingPoint((10.0,), (0.3,), 0.0, 9.0),   # slow drifter
        MovingPoint((14.0,), (-0.2,), 0.0, 10.0),  # nearly static
        MovingPoint((20.0,), (-1.5,), 0.0, 5.0),  # fast faller, expires mid
    ]


def plot(points, br) -> str:
    grid = [[" "] * WIDTH for _ in range(HEIGHT)]

    def cell(t, x):
        col = int(t / HORIZON * (WIDTH - 1))
        row = int((1.0 - x / X_MAX) * (HEIGHT - 1))
        return row, col

    def put(t, x, ch):
        row, col = cell(t, x)
        if 0 <= row < HEIGHT and 0 <= col < WIDTH:
            grid[row][col] = ch

    steps = WIDTH * 2
    for i in range(steps + 1):
        t = HORIZON * i / steps
        put(t, br.lower_at(0, t), "-")
        put(t, br.upper_at(0, t), "-")
    for p in points:
        for i in range(steps + 1):
            t = HORIZON * i / steps
            if t <= p.t_exp:
                put(t, p.coordinate_at(0, t), "*")
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    points = trajectories()
    rng = random.Random(0)
    print("four expiring trajectories (*) and each bounding interval (-)")
    print(f"x in [0, {X_MAX:g}] vertically, t in [0, {HORIZON:g}] horizontally\n")
    results = []
    for kind in BoundingKind:
        br = compute_tpbr(points, 0.0, kind, horizon=HORIZON, rng=rng)
        integral = area_integral(br, 0.0, HORIZON)
        results.append((kind.value, integral))
        print(f"=== {kind.value} (area integral over [0, {HORIZON:g}] = "
              f"{integral:.1f}) ===")
        print(plot(points, br))
        print()
    results.sort(key=lambda kv: kv[1])
    print("ranking by area integral (smaller = tighter = fewer false "
          "query descents):")
    for name, integral in results:
        print(f"  {name:<16} {integral:8.1f}")


if __name__ == "__main__":
    main()
