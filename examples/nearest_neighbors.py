"""Nearest neighbors: "which couriers will be closest to me at 8:15?"

Builds an index of moving couriers and asks the R^exp-tree for the k
nearest ones at a *future* time — the best-first descent orders
subtrees by a time-parameterized lower bound, prunes expired branches,
and returns exactly what a brute-force scan over the live fleet would,
bit for bit.

Run:  python examples/nearest_neighbors.py
"""

import math
import os
import random

from repro import MovingObjectTree, MovingPoint, rexp_config
from repro.geometry.knn import brute_force_knn


def fleet(rng, n, now=0.0):
    """Couriers roaming a 100 x 100 city; some go off shift soon."""
    for oid in range(n):
        on_shift_until = (
            math.inf if rng.random() < 0.5 else now + rng.uniform(5.0, 40.0)
        )
        yield oid, MovingPoint(
            pos=(rng.uniform(0, 100), rng.uniform(0, 100)),
            vel=(rng.uniform(-2, 2), rng.uniform(-2, 2)),
            t_ref=now,
            t_exp=on_shift_until,
        )


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    count = 60 if fast else 400
    rng = random.Random(42)

    tree = MovingObjectTree(rexp_config(page_size=512, buffer_pages=8))
    couriers = list(fleet(rng, count))
    for oid, point in couriers:
        tree.insert(oid, point)
    print(f"indexed {count} couriers")

    # "Which 5 couriers will be nearest the depot at t=15?"
    depot = (50.0, 50.0)
    nearest = tree.query_knn(depot, t=15.0, k=5)
    print(f"5 nearest to the depot at t=15: {nearest}")

    # The entries variant also reports the squared distances.
    for dist_sq, oid in tree.knn_entries(depot, t=15.0, k=3):
        print(f"  courier {oid} at distance {math.sqrt(dist_sq):.1f}")

    # The answer is bit-identical to a brute-force scan of the fleet —
    # including expiration: couriers off shift by t never appear.
    entries = [(point, oid) for oid, point in couriers]
    assert tree.knn_entries(depot, 15.0, 5) == brute_force_knn(
        entries, depot, 15.0, 5
    )
    print("matches the brute-force oracle exactly")

    # Ask far enough ahead and the short-shift couriers have expired;
    # the descent prunes their subtrees without visiting them.
    late = tree.query_knn(depot, t=60.0, k=count)
    still_on = sum(1 for _, p in couriers if not p.t_exp < 60.0)
    assert len(late) == still_on
    print(f"at t=60 only {len(late)} couriers remain on shift "
          f"(expired ones pruned)")


if __name__ == "__main__":
    main()
