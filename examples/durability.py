"""Durability: survive a crash without losing committed reports.

Builds a durable R^exp-tree backed by a page file and write-ahead log,
simulates a hard crash in the middle of a burst of updates, and then
recovers: the reopened index answers from the last committed state, and
the recovery report shows what the log replay did.

Run:  python examples/durability.py
"""

import os
import shutil
import tempfile

from repro import (
    MovingObjectTree,
    MovingPoint,
    Rect,
    SimulationClock,
    TimesliceQuery,
    rexp_config,
)
from repro.storage.faults import FaultInjector, SimulatedCrash


def fleet(n):
    """A little fleet of couriers, fanned out over a 100 x 100 city."""
    for oid in range(n):
        yield oid, MovingPoint(
            pos=(7.0 * (oid % 13) + 2.0, 11.0 * (oid % 9) + 3.0),
            vel=(0.5 - 0.1 * (oid % 7), 0.1 * (oid % 5) - 0.2),
            t_ref=0.0,
            t_exp=90.0,
        )


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    count = 40 if fast else 200
    directory = tempfile.mkdtemp(prefix="repro-durability-")
    config = rexp_config(page_size=512, buffer_pages=8)

    # 1. Create a durable tree: every operation group-commits through
    #    the write-ahead log before the page file is touched.
    clock = SimulationClock()
    tree = MovingObjectTree.create_durable(directory, config, clock)
    for oid, point in fleet(count):
        tree.insert(oid, point)
    everyone = TimesliceQuery(Rect((0.0, 0.0), (100.0, 100.0)), t=1.0)
    committed = sorted(tree.query(everyone))
    print(f"committed {len(committed)} couriers into {directory}")

    # 2. Crash mid-burst.  A deterministic fault injector kills the
    #    process at a physical log write; everything after the last
    #    commit record is lost by design.
    tree.disk.arm_injector(
        FaultInjector(crash_at_write=3, mode="torn", seed=7)
    )
    clock.advance_to(10.0)
    try:
        for oid in range(count, count + 20):
            tree.insert(oid, MovingPoint((50.0, 50.0), (0.0, 0.0),
                                         10.0, 60.0))
        raise AssertionError("the injector should have crashed the store")
    except SimulatedCrash:
        print("crashed mid-burst (torn log write) -- store abandoned")
    tree.disk.abandon()

    # 3. Recover.  Reopening scans the log, discards the torn tail,
    #    replays committed pages, and restores the clock.
    clock2 = SimulationClock()
    recovered = MovingObjectTree.open_from(directory, config, clock2)
    report = recovered.disk.recovery
    print(f"recovered at clock {clock2.time:g}: "
          f"{report.records_scanned} records scanned, "
          f"{report.commits_applied} commits applied, "
          f"{report.torn_bytes} torn bytes discarded, "
          f"{report.wal_skipped_expired} expired pages skipped")

    answers = sorted(recovered.query(everyone))
    assert answers == committed, "recovery lost committed reports!"
    audit = recovered.audit()
    print(f"reopened index answers identically: {len(answers)} couriers, "
          f"audit {audit.nodes} nodes / {audit.leaf_entries} entries")

    # 4. Checkpoint to truncate the log, then close cleanly.
    recovered.checkpoint()
    recovered.close()
    print("checkpointed and closed -- WAL truncated")
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
