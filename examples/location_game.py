"""A BotFighters-style location game (the paper's motivating scenario).

Players roam a city and can "shoot" other players within range of their
predicted position.  Phones lose coverage or are switched off without
notice, so every position report expires: a player who has not reported
for a while silently drops out of range queries — exactly the implicit
update the R^exp-tree is built for.

Run:  python examples/location_game.py
"""

import random

from repro import (
    MovingObjectTree,
    MovingPoint,
    Rect,
    SimulationClock,
    TimesliceQuery,
    rexp_config,
)

CITY = 1000.0          # city side length, meters-scale units
SHOT_RANGE = 60.0      # players inside this box around you can be shot
REPORT_VALIDITY = 8.0  # minutes until a report expires
N_PLAYERS = 400
ROUNDS = 25


def random_report(rng: random.Random, now: float) -> MovingPoint:
    pos = (rng.uniform(0, CITY), rng.uniform(0, CITY))
    angle_speed = rng.uniform(0.0, 4.0)
    vel = (rng.uniform(-1, 1) * angle_speed, rng.uniform(-1, 1) * angle_speed)
    return MovingPoint(pos, vel, now, now + REPORT_VALIDITY)


def main() -> None:
    rng = random.Random(2002)
    clock = SimulationClock()
    tree = MovingObjectTree(rexp_config(), clock)

    reports = {}
    for player in range(N_PLAYERS):
        reports[player] = random_report(rng, 0.0)
        tree.insert(player, reports[player])

    scores = {p: 0 for p in range(N_PLAYERS)}
    offline = set()

    for round_no in range(1, ROUNDS + 1):
        now = round_no * 1.0
        clock.advance_to(now)

        # A handful of players drop offline without notice each round;
        # nobody tells the index - their reports just expire.
        for _ in range(rng.randrange(0, 8)):
            offline.add(rng.randrange(N_PLAYERS))

        # Online players re-report when their data is about to go stale.
        for player, report in list(reports.items()):
            if player in offline:
                continue
            if report.t_exp - now < 2.0:
                fresh = random_report(rng, now)
                tree.update(player, report, fresh)
                reports[player] = fresh

        # Each round a few players fire: a range query around their own
        # predicted position, answered from the index.
        shooters = rng.sample(sorted(set(reports) - offline), 5)
        for shooter in shooters:
            me = reports[shooter].position_at(now)
            zone = Rect(
                (max(me[0] - SHOT_RANGE, 0.0), max(me[1] - SHOT_RANGE, 0.0)),
                (min(me[0] + SHOT_RANGE, CITY), min(me[1] + SHOT_RANGE, CITY)),
            )
            in_range = [
                p for p in tree.query(TimesliceQuery(zone, now))
                if p != shooter
            ]
            scores[shooter] += len(in_range)
            if in_range:
                print(f"t={now:4.0f}  player {shooter:3d} hits "
                      f"{len(in_range)} target(s): {sorted(in_range)[:6]}"
                      f"{'...' if len(in_range) > 6 else ''}")

    audit = tree.audit()
    top = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
    print("\nfinal leaderboard:", ", ".join(f"p{p}={s}" for p, s in top))
    print(f"{len(offline)} players went dark; the index purged itself down "
          f"to {audit.leaf_entries} stored reports "
          f"({audit.expired_fraction:.1%} awaiting lazy purge) on "
          f"{tree.page_count} pages")


if __name__ == "__main__":
    main()
