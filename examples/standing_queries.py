"""Standing queries: geofence alerts as a stream of add/remove deltas.

Registers continuous range queries ("tell me who is inside this zone")
against a :class:`~repro.serve.SubscriptionIndex`, then streams
position reports through a serving frontend.  Each subscription
receives only the *changes* to its answer — an object entering, one
leaving, one's report expiring — never a re-evaluation.

Run:  python examples/standing_queries.py
"""

import math
import os
import random

from repro import (
    MovingObjectTree,
    MovingPoint,
    Rect,
    TimesliceQuery,
    WindowQuery,
    rexp_config,
)
from repro.serve import FrontendConfig, ServiceFrontend, SubscriptionIndex
from repro.workloads.base import DeleteOp, InsertOp, UpdateOp


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    reports = 150 if fast else 1200
    rng = random.Random(7)

    subs = SubscriptionIndex(space=100.0, cells=8)

    # Two geofences: a downtown window watched for the next while, and
    # an airport snapshot pinned to one future instant.
    downtown = subs.register(
        WindowQuery(Rect((40.0, 40.0), (60.0, 60.0)), 0.0, 500.0)
    )
    airport = subs.register(
        TimesliceQuery(Rect((75.0, 75.0), (95.0, 95.0)), 30.0)
    )
    print("registered 2 geofences (downtown window, airport timeslice)")

    # The frontend notifies the subscription index after every applied
    # write, so the geofences stay in lockstep with the tree.
    tree = MovingObjectTree(rexp_config(page_size=512, buffer_pages=8))
    frontend = ServiceFrontend(tree, FrontendConfig(), subscriptions=subs)

    ops = []
    now = 0.0
    last = {}
    for _ in range(reports):
        now += rng.uniform(0.05, 0.3)
        if rng.random() < 0.7 or not last:
            oid = rng.randrange(40)
            point = MovingPoint(
                (rng.uniform(0, 100), rng.uniform(0, 100)),
                (rng.uniform(-2, 2), rng.uniform(-2, 2)),
                now,
                now + rng.uniform(2.0, 30.0) if rng.random() < 0.7
                else math.inf,
            )
            if oid in last:
                ops.append(UpdateOp(now, oid, last[oid], point))
            else:
                ops.append(InsertOp(now, oid, point))
            last[oid] = point
        else:
            oid = rng.choice(sorted(last))
            ops.append(DeleteOp(now, oid, last.pop(oid)))
    frontend.run(ops)
    print(f"streamed {len(ops)} position reports through the frontend")

    # Each geofence saw only deltas; replaying them reconstructs the
    # exact current answer.
    for name, sid in (("downtown", downtown), ("airport", airport)):
        current = set()
        adds = removes = 0
        for delta in subs.poll(sid):
            current |= set(delta.added)
            current -= set(delta.removed)
            adds += len(delta.added)
            removes += len(delta.removed)
        assert tuple(sorted(current)) == subs.answer(sid)
        print(f"{name}: {adds} adds / {removes} removes replayed to "
              f"{len(current)} objects currently matching")

    stats = subs.stats()
    print(f"delta traffic: {stats['adds']} adds, {stats['removes']} "
          f"removes, {stats['expirations']} expirations, "
          f"{stats['dropped']} dropped")


if __name__ == "__main__":
    main()
